//! Integration test: the paper's Table 1 example reproduced end to end
//! through the public API — generators excepted, this touches every layer
//! used by a scheduling decision (problems, solvers, policies, decision
//! rule).

use bbsched::core::pools::PoolState;
use bbsched::core::problem::{CpuBbProblem, JobDemand, MooProblem};
use bbsched::core::{exhaustive, pareto};
use bbsched::policies::{GaParams, PolicyKind};

fn table1_window() -> Vec<JobDemand> {
    vec![
        JobDemand::cpu_bb(80, 20_000.0),
        JobDemand::cpu_bb(10, 85_000.0),
        JobDemand::cpu_bb(40, 5_000.0),
        JobDemand::cpu_bb(10, 0.0),
        JobDemand::cpu_bb(20, 0.0),
    ]
}

fn ga() -> GaParams {
    GaParams { generations: 500, base_seed: 4, ..GaParams::default() }
}

fn selection_stats(sel: &[usize]) -> (u32, f64) {
    let w = table1_window();
    (
        sel.iter().map(|&i| w[i].nodes).sum(),
        sel.iter().map(|&i| w[i].bb_gb).sum(),
    )
}

#[test]
fn exhaustive_pareto_set_matches_footnote_1() {
    let problem = CpuBbProblem::new(table1_window(), 100, 100_000.0);
    let front = exhaustive::solve(&problem).unwrap();
    let pts: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
    // "the Pareto set contains Solution 2 and 3"
    assert!(pts.contains(&vec![100.0, 20_000.0]));
    assert!(pts.contains(&vec![80.0, 90_000.0]));
    assert!(front.is_mutually_nondominated());
}

#[test]
fn naive_method_selects_j1_per_table_1b() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::Baseline.build(ga()).select(&table1_window(), &avail, 0);
    let (nodes, bb) = selection_stats(&sel);
    // The naive method's own pick is J1 (80/20TB); J4 arrives via EASY
    // backfilling in the simulator, completing the paper's "J1, J4" row.
    assert_eq!(sel, vec![0]);
    assert_eq!((nodes, bb), (80, 20_000.0));
}

#[test]
fn single_objective_methods_reach_solution_2() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    for kind in [PolicyKind::ConstrainedCpu, PolicyKind::WeightedCpu, PolicyKind::BinPacking] {
        let sel = kind.build(ga()).select(&table1_window(), &avail, 0);
        let (nodes, bb) = selection_stats(&sel);
        assert_eq!(nodes, 100, "{}: {:?}", kind.name(), sel);
        assert_eq!(bb, 20_000.0, "{}: {:?}", kind.name(), sel);
    }
}

#[test]
fn bbsched_picks_solution_3() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::BbSched.build(ga()).select(&table1_window(), &avail, 0);
    assert_eq!(sel, vec![1, 2, 3, 4], "BBSched must pick J2..J5");
    let (nodes, bb) = selection_stats(&sel);
    assert_eq!((nodes, bb), (80, 90_000.0));
}

#[test]
fn no_feasible_selection_dominates_the_true_front() {
    let problem = CpuBbProblem::new(table1_window(), 100, 100_000.0);
    let front = exhaustive::solve(&problem).unwrap();
    for mask in 0u64..(1 << 5) {
        let c = bbsched::core::Chromosome::from_mask(mask, 5);
        if problem.is_feasible(&c) {
            let o = problem.evaluate(&c);
            for fp in front.objective_vectors() {
                assert!(!pareto::dominates(o.as_slice(), fp));
            }
        }
    }
}
