//! Integration test: the paper's Table 1 example reproduced end to end
//! through the public API — generators excepted, this touches every layer
//! used by a scheduling decision (problems, solvers, policies, decision
//! rule).

use bbsched::core::pools::PoolState;
use bbsched::core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{exhaustive, pareto};
use bbsched::policies::{GaParams, PolicyKind};

fn table1_window() -> Vec<JobDemand> {
    vec![
        JobDemand::cpu_bb(80, 20_000.0),
        JobDemand::cpu_bb(10, 85_000.0),
        JobDemand::cpu_bb(40, 5_000.0),
        JobDemand::cpu_bb(10, 0.0),
        JobDemand::cpu_bb(20, 0.0),
    ]
}

fn ga() -> GaParams {
    GaParams { generations: 500, base_seed: 4, ..GaParams::default() }
}

fn selection_stats(sel: &[usize]) -> (u32, f64) {
    let w = table1_window();
    (sel.iter().map(|&i| w[i].nodes).sum(), sel.iter().map(|&i| w[i].bb_gb).sum())
}

#[test]
fn exhaustive_pareto_set_matches_footnote_1() {
    let problem = KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
    let front = exhaustive::solve(&problem).unwrap();
    let pts: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
    // "the Pareto set contains Solution 2 and 3"
    assert!(pts.contains(&vec![100.0, 20_000.0]));
    assert!(pts.contains(&vec![80.0, 90_000.0]));
    assert!(front.is_mutually_nondominated());
}

#[test]
fn naive_method_selects_j1_per_table_1b() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::Baseline.build(ga()).select(&table1_window(), &avail, 0);
    let (nodes, bb) = selection_stats(&sel);
    // The naive method's own pick is J1 (80/20TB); J4 arrives via EASY
    // backfilling in the simulator, completing the paper's "J1, J4" row.
    assert_eq!(sel, vec![0]);
    assert_eq!((nodes, bb), (80, 20_000.0));
}

#[test]
fn single_objective_methods_reach_solution_2() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    for kind in [PolicyKind::ConstrainedCpu, PolicyKind::WeightedCpu, PolicyKind::BinPacking] {
        let sel = kind.build(ga()).select(&table1_window(), &avail, 0);
        let (nodes, bb) = selection_stats(&sel);
        assert_eq!(nodes, 100, "{}: {:?}", kind.name(), sel);
        assert_eq!(bb, 20_000.0, "{}: {:?}", kind.name(), sel);
    }
}

#[test]
fn bbsched_picks_solution_3() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::BbSched.build(ga()).select(&table1_window(), &avail, 0);
    assert_eq!(sel, vec![1, 2, 3, 4], "BBSched must pick J2..J5");
    let (nodes, bb) = selection_stats(&sel);
    assert_eq!((nodes, bb), (80, 90_000.0));
}

/// Golden equivalence: at identical GA seeds, the deprecated `CpuBbProblem`
/// wrapper (the pre-refactor §3.2.1 entry point) and the generic
/// `KnapsackMooProblem` drive the solver to byte-identical fronts —
/// same selections in the same order, same objective vectors — and the
/// decision rule picks the same start set from both.
#[test]
#[allow(deprecated)]
fn generic_path_reproduces_wrapper_front_bit_for_bit() {
    use bbsched::core::decision::{choose_preferred, DecisionRule};
    use bbsched::core::{CpuBbProblem, GaConfig, MooGa};
    for seed in [0u64, 4, 0xbb5c_11ed, 0xdead_beef] {
        let cfg = GaConfig { generations: 500, seed, ..GaConfig::default() };
        let wrapper = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let generic =
            KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
        let fw = MooGa::new(cfg.clone()).solve(&wrapper);
        let fg = MooGa::new(cfg).solve(&generic);
        assert_eq!(fw.len(), fg.len(), "front sizes diverged at seed {seed:#x}");
        for (a, b) in fw.solutions().iter().zip(fg.solutions()) {
            assert_eq!(a.chromosome, b.chromosome, "selection diverged at seed {seed:#x}");
            assert_eq!(a.objectives.as_slice(), b.objectives.as_slice());
        }
        let cw = choose_preferred(&fw, wrapper.normalizers().as_slice(), DecisionRule::cpu_bb())
            .expect("non-empty front");
        let cg = choose_preferred(&fg, generic.normalizers().as_slice(), DecisionRule::cpu_bb())
            .expect("non-empty front");
        assert_eq!(cw.chromosome, cg.chromosome, "decision diverged at seed {seed:#x}");
    }
}

/// Bit-exact golden fronts, captured from the solver immediately before
/// the incremental-aggregate kernel landed. A fingerprint encodes every
/// selection bit and the IEEE-754 bits of every objective of the sorted
/// front, so any change to the GA's arithmetic, RNG stream, repair order,
/// or selection ordering diffs here directly instead of shifting
/// downstream schedules silently.
mod golden_fronts {
    use super::*;
    use bbsched::core::decision::{choose_preferred, DecisionRule};
    use bbsched::core::problem::RepairStyle;
    use bbsched::core::{GaConfig, MooGa, ParetoFront, SolveMode};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fingerprint(front: &ParetoFront) -> String {
        let mut f = front.clone();
        f.sort_by_first_objective();
        let mut out = String::new();
        for s in f.solutions() {
            let bits: String = s.chromosome.bits().map(|b| if b { '1' } else { '0' }).collect();
            let objs: Vec<String> =
                s.objectives.as_slice().iter().map(|v| format!("{:016x}", v.to_bits())).collect();
            out.push_str(&format!("{}|{};", bits, objs.join(",")));
        }
        out
    }

    fn random_window(w: usize, seed: u64) -> Vec<JobDemand> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..w)
            .map(|_| {
                JobDemand::cpu_bb(
                    rng.random_range(8..200),
                    if rng.random_bool(0.75) { rng.random_range(100.0..30_000.0) } else { 0.0 },
                )
            })
            .collect()
    }

    #[test]
    fn table1_front_is_bit_stable_across_seeds() {
        for seed in [42u64, 7, 12345] {
            let p = KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
            let front = MooGa::new(GaConfig { seed, ..GaConfig::default() }).solve(&p);
            assert_eq!(
                fingerprint(&front),
                "10001|4059000000000000,40d3880000000000;01111|4054000000000000,40f5f90000000000;",
                "table1 front diverged at seed {seed}"
            );
        }
    }

    #[test]
    fn random_window_fronts_are_bit_stable() {
        let expected = [
            ("01000001110111100100|4089000000000000,40e86dcf99598272;01000000110001101000|4088e00000000000,40ecc2231ac5349c;01001000100001101101|4088000000000000,40ecd13c02639ce2;01000001100001101101|4087700000000000,40ece8a28f6868fc;00000011100001101100|4086180000000000,40ecff3804b9c080;00000001101111100100|4085500000000000,40ed390b9cc00097;00000001101101000101|4082200000000000,40ed4193b2e415f0;", 3u64, 1u64, false),
            ("01111011000111100101|4089000000000000,40ea9315e62d500f;01011011100101000101|4088f80000000000,40ed3d75a13ff100;01000001000111011110|4088880000000000,40ed45af2a05215a;01110100000101100111|4087280000000000,40ed47e941920040;", 3, 1, true),
            ("01001110000000001010|4088e80000000000,40ed4068becd3a0c;00001110000101101001|4087280000000000,40ed4bed54d989f2;", 3, 2, false),
            ("01001101000001001111|4089000000000000,40ec817ce3703c77;01001110000000001010|4088e80000000000,40ed4068becd3a0c;01111100010101100100|4088900000000000,40ed4307a3f7774e;00001110000101101101|4087780000000000,40ed4bed54d989f2;", 3, 2, true),
            ("01010100100000011110|4088d80000000000,40e68c5f1147c596;11010000000010000111|4088900000000000,40ec9c267784c533;01010000110000011110|4087b00000000000,40ed4431861a3519;", 9, 1, false),
            ("11000100000010011001|4089000000000000,40e97e1719cb606a;10000100000010111110|4088f80000000000,40ec2dd739eb43cd;11000000000010110110|4088d00000000000,40ec856c0b4a0e66;10010100110110001100|4088b80000000000,40ed358e327ee499;11110100100000100100|4088400000000000,40ed3adaa34c166b;00010110010110100100|4086900000000000,40ed48b2deecf597;", 9, 1, true),
            ("11100110000000011000|4088f80000000000,40e7e9ef8aa0ba19;00100110000011001100|4088980000000000,40ecc4465a812842;00000111000011000000|4084f80000000000,40ece6fdedd57e04;", 9, 2, false),
            ("11000110000000101110|4089000000000000,40e8dd329dd06fd0;10010110110000110100|4088f80000000000,40eb48946701e845;11110010100000100100|4088f00000000000,40ed3adaa34c166b;11000010110000110100|4086e80000000000,40ed49a3d5a2f3fb;10011100100000010001|4085600000000000,40ed49c21c174f48;", 9, 2, true),
        ];
        for (want, window_seed, seed, saturate) in expected {
            let p = KnapsackMooProblem::new(
                random_window(20, window_seed),
                ResourceModel::cpu_bb(800, 60_000.0),
            );
            let cfg = GaConfig { generations: 200, seed, saturate, ..GaConfig::default() };
            let front = MooGa::new(cfg).solve(&p);
            assert_eq!(
                fingerprint(&front),
                want,
                "front diverged: window seed {window_seed}, GA seed {seed}, saturate {saturate}"
            );
        }
    }

    #[test]
    fn ssd_fronts_are_bit_stable() {
        fn random_ssd_window(w: usize, seed: u64) -> Vec<JobDemand> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..w)
                .map(|_| {
                    JobDemand::cpu_bb_ssd(
                        rng.random_range(1..20),
                        if rng.random_bool(0.5) { rng.random_range(0.0..3_000.0) } else { 0.0 },
                        if rng.random_bool(0.6) { rng.random_range(0.0..256.0) } else { 0.0 },
                    )
                })
                .collect()
        }
        let expected = [
            (5u64, "10010110100100|404e000000000000,40b11e4b61ed34aa,40ba125620aefdc0,c0b2eda9df510240;00010110100001|404b800000000000,40b4841feb762cde,40a8d3f4886f47f9,c0bb9605bbc85c04;10010110100000|404a800000000000,40a8de34aa958c47,40b6d811a6fbcfcd,c0b2a7ee59043033;10010000100001|4049800000000000,40b2d727cabe83f9,40a9145f8cde4243,c0b775d03990dede;10000100100100|4045800000000000,40aee2a6826b1788,40b194b4e789c21a,c0a8d69630ec7bcc;00010110100100|4045800000000000,40b11e4b61ed34aa,40af487d7bd5a3e0,c0a8b782842a5c20;00000010100001|4045800000000000,40b4841feb762cde,409aebd2afbe53a4,c0b5450b54106b17;00010000100101|4044800000000000,40b78658d760f27f,4095597375788d0f,c0b4a9a322a1dcbc;10010100100000|4044000000000000,40a5844469263a7c,40b049d2e646e22d,c0a86c5a33723ba6;10010000100100|4043800000000000,40aee2a6826b1788,40af88e880449e2a,c0a877177fbb61d6;00000000100101|4042800000000000,40b78658d760f27f,408b37d3276ea9e6,c0b299059b122ac3;10000000100100|4041800000000000,40aee2a6826b1788,40abaa238f64021c,c0a855dc709bfde4;00010000100001|4041000000000000,40b2d727cabe83f9,4080e0c31d57aa84,c0b0e3e79c550ab0;00000000100001|403e000000000000,40b2d727cabe83f9,40465af59d53a4b8,c0ada694298ab16d;00000100100100|403a000000000000,40aee2a6826b1788,409c9a7613165925,c0976589ece9a6db;00010100100000|4037000000000000,40a5844469263a7c,40976eee0e0ad974,c0969111f1f5268c;00010000100100|4036000000000000,40aee2a6826b1788,4095597375788d0f,c096a68c8a8772f1;00000000100100|4032000000000000,40aee2a6826b1788,408b37d3276ea9e6,c09664166c48ab0d;00010000100000|402e000000000000,40a5844469263a7c,4080e0c31d57aa84,c0958f9e71542abe;00000000100000|4026000000000000,40a5844469263a7c,40465af59d53a4b8,c0954d28531562da;"),
            (6, "10010000100101|404d000000000000,40b78658d760f27f,40af88e880449e2a,c0bb3b8bbfddb0eb;10000000100101|404b000000000000,40b78658d760f27f,40abaa238f64021c,c0b92aee384dfef2;00010010100101|404b000000000000,40b93350f8189b65,40a7c9373c2621c6,c0bb1b6461ecef1d;10010010000001|404a800000000000,40a383fb6dc61f41,40b2ebb89be96778,c0b6944764169888;10010010100100|404a000000000000,40b11e4b61ed34aa,40b652b300d73cb4,c0b2ad4cff28c34c;10010000100001|4049800000000000,40b2d727cabe83f9,40a9145f8cde4243,c0b775d03990dede;00000010100101|4049000000000000,40b93350f8189b65,40a3ea724b4585b8,c0b90ac6da5d3d24;10110000100100|4047800000000000,40aee2a6826b1788,40b1d6011e465e1a,c0ac53fdc37343cc;00010010100001|4047800000000000,40b4841feb762cde,40a154ae48bfc5e0,c0b755a8dba01d10;10010010100000|4046800000000000,40a8de34aa958c47,40b3186e87240ec1,c0b2679178dbf13f;10010000100100|4043800000000000,40aee2a6826b1788,40af88e880449e2a,c0a877177fbb61d6;10000000100100|4041800000000000,40aee2a6826b1788,40abaa238f64021c,c0a855dc709bfde4;00010010100100|4041800000000000,40b11e4b61ed34aa,40a7c9373c2621c6,c0a836c8c3d9de3a;10010000100000|4040000000000000,40a5844469263a7c,40a9145f8cde4243,c0a7eba07321bdbd;00000010100100|403f000000000000,40b11e4b61ed34aa,40a3ea724b4585b8,c0a8158db4ba7a48;10000000100000|403c000000000000,40a5844469263a7c,40a5359a9bfda635,c0a7ca65640259cb;00010010100000|403c000000000000,40a8de34aa958c47,40a154ae48bfc5e0,c0a7ab51b7403a20;00000010100000|4038000000000000,40a8de34aa958c47,409aebd2afbe53a4,c0a78a16a820d62e;00010000100000|402e000000000000,40a5844469263a7c,4080e0c31d57aa84,c0958f9e71542abe;00000000100000|4026000000000000,40a5844469263a7c,40465af59d53a4b8,c0954d28531562da;"),
        ];
        for (seed, want) in expected {
            let p = KnapsackMooProblem::new(
                random_ssd_window(14, 17),
                ResourceModel::cpu_bb_ssd(30, 30, 20_000.0),
            )
            .with_repair_style(RepairStyle::DropUnconditionally);
            let cfg = GaConfig { generations: 200, seed, ..GaConfig::default() };
            let front = MooGa::new(cfg).solve(&p);
            assert_eq!(fingerprint(&front), want, "SSD front diverged at seed {seed}");
        }
    }

    #[test]
    fn scalar_mode_fronts_are_bit_stable() {
        let expected = [
            (11u64, "00100001101101000100|4088f00000000000,40ecafd599e1f184;"),
            (13, "10110000001010000001|4088c00000000000,40ec9d197fc5e406;"),
        ];
        for (seed, want) in expected {
            let p =
                KnapsackMooProblem::new(random_window(20, 4), ResourceModel::cpu_bb(800, 60_000.0));
            let cfg = GaConfig {
                generations: 200,
                seed,
                mode: SolveMode::Scalar(vec![0.5, 0.5]),
                ..GaConfig::default()
            };
            let front = MooGa::new(cfg).solve(&p);
            assert_eq!(fingerprint(&front), want, "scalar front diverged at seed {seed}");
        }
    }

    #[test]
    fn decision_pick_is_bit_stable() {
        let p = KnapsackMooProblem::new(random_window(30, 8), ResourceModel::cpu_bb(800, 60_000.0));
        let front =
            MooGa::new(GaConfig { generations: 300, seed: 21, ..GaConfig::default() }).solve(&p);
        let norm = p.normalizers();
        let pick = choose_preferred(&front, norm.as_slice(), DecisionRule::cpu_bb()).unwrap();
        let sel: Vec<usize> = pick.chromosome.selected().collect();
        assert_eq!(sel, vec![1, 2, 6, 8, 11, 12]);
    }
}

#[test]
fn no_feasible_selection_dominates_the_true_front() {
    let problem = KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
    let front = exhaustive::solve(&problem).unwrap();
    for mask in 0u64..(1 << 5) {
        let c = bbsched::core::Chromosome::from_mask(mask, 5);
        if problem.is_feasible(&c) {
            let o = problem.evaluate(&c);
            for fp in front.objective_vectors() {
                assert!(!pareto::dominates(o.as_slice(), fp));
            }
        }
    }
}
