//! Integration test: the paper's Table 1 example reproduced end to end
//! through the public API — generators excepted, this touches every layer
//! used by a scheduling decision (problems, solvers, policies, decision
//! rule).

use bbsched::core::pools::PoolState;
use bbsched::core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{exhaustive, pareto};
use bbsched::policies::{GaParams, PolicyKind};

fn table1_window() -> Vec<JobDemand> {
    vec![
        JobDemand::cpu_bb(80, 20_000.0),
        JobDemand::cpu_bb(10, 85_000.0),
        JobDemand::cpu_bb(40, 5_000.0),
        JobDemand::cpu_bb(10, 0.0),
        JobDemand::cpu_bb(20, 0.0),
    ]
}

fn ga() -> GaParams {
    GaParams { generations: 500, base_seed: 4, ..GaParams::default() }
}

fn selection_stats(sel: &[usize]) -> (u32, f64) {
    let w = table1_window();
    (sel.iter().map(|&i| w[i].nodes).sum(), sel.iter().map(|&i| w[i].bb_gb).sum())
}

#[test]
fn exhaustive_pareto_set_matches_footnote_1() {
    let problem = KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
    let front = exhaustive::solve(&problem).unwrap();
    let pts: Vec<Vec<f64>> = front.objective_vectors().map(|v| v.to_vec()).collect();
    // "the Pareto set contains Solution 2 and 3"
    assert!(pts.contains(&vec![100.0, 20_000.0]));
    assert!(pts.contains(&vec![80.0, 90_000.0]));
    assert!(front.is_mutually_nondominated());
}

#[test]
fn naive_method_selects_j1_per_table_1b() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::Baseline.build(ga()).select(&table1_window(), &avail, 0);
    let (nodes, bb) = selection_stats(&sel);
    // The naive method's own pick is J1 (80/20TB); J4 arrives via EASY
    // backfilling in the simulator, completing the paper's "J1, J4" row.
    assert_eq!(sel, vec![0]);
    assert_eq!((nodes, bb), (80, 20_000.0));
}

#[test]
fn single_objective_methods_reach_solution_2() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    for kind in [PolicyKind::ConstrainedCpu, PolicyKind::WeightedCpu, PolicyKind::BinPacking] {
        let sel = kind.build(ga()).select(&table1_window(), &avail, 0);
        let (nodes, bb) = selection_stats(&sel);
        assert_eq!(nodes, 100, "{}: {:?}", kind.name(), sel);
        assert_eq!(bb, 20_000.0, "{}: {:?}", kind.name(), sel);
    }
}

#[test]
fn bbsched_picks_solution_3() {
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let sel = PolicyKind::BbSched.build(ga()).select(&table1_window(), &avail, 0);
    assert_eq!(sel, vec![1, 2, 3, 4], "BBSched must pick J2..J5");
    let (nodes, bb) = selection_stats(&sel);
    assert_eq!((nodes, bb), (80, 90_000.0));
}

/// Golden equivalence: at identical GA seeds, the deprecated `CpuBbProblem`
/// wrapper (the pre-refactor §3.2.1 entry point) and the generic
/// `KnapsackMooProblem` drive the solver to byte-identical fronts —
/// same selections in the same order, same objective vectors — and the
/// decision rule picks the same start set from both.
#[test]
#[allow(deprecated)]
fn generic_path_reproduces_wrapper_front_bit_for_bit() {
    use bbsched::core::decision::{choose_preferred, DecisionRule};
    use bbsched::core::{CpuBbProblem, GaConfig, MooGa};
    for seed in [0u64, 4, 0xbb5c_11ed, 0xdead_beef] {
        let cfg = GaConfig { generations: 500, seed, ..GaConfig::default() };
        let wrapper = CpuBbProblem::new(table1_window(), 100, 100_000.0);
        let generic =
            KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
        let fw = MooGa::new(cfg.clone()).solve(&wrapper);
        let fg = MooGa::new(cfg).solve(&generic);
        assert_eq!(fw.len(), fg.len(), "front sizes diverged at seed {seed:#x}");
        for (a, b) in fw.solutions().iter().zip(fg.solutions()) {
            assert_eq!(a.chromosome, b.chromosome, "selection diverged at seed {seed:#x}");
            assert_eq!(a.objectives.as_slice(), b.objectives.as_slice());
        }
        let cw = choose_preferred(&fw, wrapper.normalizers().as_slice(), DecisionRule::cpu_bb())
            .expect("non-empty front");
        let cg = choose_preferred(&fg, generic.normalizers().as_slice(), DecisionRule::cpu_bb())
            .expect("non-empty front");
        assert_eq!(cw.chromosome, cg.chromosome, "decision diverged at seed {seed:#x}");
    }
}

#[test]
fn no_feasible_selection_dominates_the_true_front() {
    let problem = KnapsackMooProblem::new(table1_window(), ResourceModel::cpu_bb(100, 100_000.0));
    let front = exhaustive::solve(&problem).unwrap();
    for mask in 0u64..(1 << 5) {
        let c = bbsched::core::Chromosome::from_mask(mask, 5);
        if problem.is_feasible(&c) {
            let o = problem.evaluate(&c);
            for fp in front.objective_vectors() {
                assert!(!pareto::dominates(o.as_slice(), fp));
            }
        }
    }
}
