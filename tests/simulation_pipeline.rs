//! Integration tests of the full simulation pipeline: generated trace ->
//! synthetic transform -> discrete-event simulation -> metrics, with
//! cross-cutting invariants every policy must satisfy.

use bbsched::metrics::{MeasurementWindow, MethodSummary};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BaseScheduler, JobRecord, SimConfig, SimResult, Simulator};
use bbsched::workloads::{generate, GeneratorConfig, MachineProfile, Workload};

fn run(kind: PolicyKind, workload: Workload, n_jobs: usize) -> SimResult {
    let factor = 0.02;
    let profile = MachineProfile::theta().scaled(factor);
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs, seed: 77, load_factor: 1.1, ..GeneratorConfig::default() },
    );
    let trace = workload.apply_scaled(&base, 77, factor);
    let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
    let ga = GaParams { generations: 60, base_seed: 77, ..GaParams::default() };
    Simulator::new(&profile.system, &trace, cfg).unwrap().run(kind.build(ga))
}

/// Sweep the records and assert node/burst-buffer capacity is never
/// exceeded at any instant.
fn assert_capacity_respected(result: &SimResult) {
    let mut events: Vec<(f64, i64, f64)> = Vec::new(); // (time, +-nodes, +-bb)
    for r in &result.records {
        events.push((r.start, i64::from(r.nodes), r.bb_gb));
        events.push((r.end, -i64::from(r.nodes), -r.bb_gb));
    }
    // Frees sort before allocations at the same instant.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut nodes = 0i64;
    let mut bb = 0.0f64;
    for (t, dn, dbb) in events {
        nodes += dn;
        bb += dbb;
        assert!(
            nodes <= i64::from(result.system.nodes),
            "node capacity exceeded at t={t}: {nodes} > {}",
            result.system.nodes
        );
        assert!(bb <= result.system.bb_usable_gb() + 1e-6, "burst buffer exceeded at t={t}: {bb}");
    }
}

fn assert_records_sane(result: &SimResult, n: usize) {
    assert_eq!(result.records.len(), n, "every job runs exactly once");
    let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "no duplicated starts");
    for r in &result.records {
        assert!(r.start >= r.submit, "job {} started before submission", r.id);
        assert!((r.end - r.start - r.runtime).abs() < 1e-9);
        assert!(r.wait() >= 0.0);
        assert!(r.slowdown() >= 1.0 - 1e-12);
    }
}

#[test]
fn every_policy_satisfies_capacity_invariants() {
    for kind in PolicyKind::main_roster() {
        let result = run(kind, Workload::S2, 150);
        assert_records_sane(&result, 150);
        assert_capacity_respected(&result);
    }
}

#[test]
fn heavier_bb_workloads_wait_longer_under_baseline() {
    let original = run(PolicyKind::Baseline, Workload::Original, 300);
    let s4 = run(PolicyKind::Baseline, Workload::S4, 300);
    let avg =
        |r: &SimResult| r.records.iter().map(JobRecord::wait).sum::<f64>() / r.records.len() as f64;
    assert!(
        avg(&s4) > avg(&original),
        "S4 ({}) should wait longer than Original ({})",
        avg(&s4),
        avg(&original)
    );
}

#[test]
fn bb_stress_raises_bb_usage() {
    let original = run(PolicyKind::Baseline, Workload::Original, 300);
    let s4 = run(PolicyKind::Baseline, Workload::S4, 300);
    let usage =
        |r: &SimResult| MethodSummary::from_result(r, MeasurementWindow::default()).bb_usage();
    assert!(usage(&s4) > usage(&original) + 0.05);
}

#[test]
fn fcfs_baseline_respects_submission_order_without_bb() {
    // With a single resource, no BB, and naive selection, FCFS + EASY may
    // backfill, but the *head* job of the queue is never overtaken by a
    // job that delays it: starts of equal-size jobs follow submit order.
    let profile = MachineProfile::cori().scaled(0.02);
    let jobs: Vec<bbsched::workloads::Job> = (0..50)
        .map(|i| bbsched::workloads::Job::new(i, i as f64 * 10.0, 10, 500.0, 600.0))
        .collect();
    let trace = bbsched::workloads::Trace::from_jobs(jobs).unwrap();
    let cfg = SimConfig::default();
    let result = Simulator::new(&profile.system, &trace, cfg)
        .unwrap()
        .run(PolicyKind::Baseline.build(GaParams::default()));
    let mut by_id: Vec<&JobRecord> = result.records.iter().collect();
    by_id.sort_by_key(|r| r.id);
    for pair in by_id.windows(2) {
        assert!(
            pair[0].start <= pair[1].start + 1e-9,
            "equal jobs must start in FCFS order: {} vs {}",
            pair[0].id,
            pair[1].id
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    let a = run(PolicyKind::BbSched, Workload::S3, 120);
    let b = run(PolicyKind::BbSched, Workload::S3, 120);
    assert_eq!(a.records, b.records);
    assert_eq!(a.invocations, b.invocations);
}

#[test]
fn summaries_are_well_formed_for_all_policies() {
    for kind in PolicyKind::main_roster() {
        let result = run(kind, Workload::S1, 150);
        let m = MethodSummary::from_result(&result, MeasurementWindow::default());
        assert!((0.0..=1.0 + 1e-9).contains(&m.node_usage()), "{}", kind.name());
        assert!((0.0..=1.0 + 1e-9).contains(&m.bb_usage()), "{}", kind.name());
        assert!(m.avg_wait >= 0.0);
        assert!(m.avg_slowdown >= 0.0);
        assert!(m.measured_jobs > 0);
    }
}
