//! Property-based integration tests (proptest) over the core invariants:
//! Pareto-front laws, repair feasibility, GA-vs-exhaustive consistency,
//! and simulator conservation on random traces.

use bbsched::core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{exhaustive, pareto, Chromosome, GaConfig, MooGa};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{SimConfig, Simulator};
use bbsched::workloads::{Job, Trace};
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = JobDemand> {
    (1u32..120, 0.0f64..5_000.0)
        .prop_map(|(nodes, bb)| JobDemand::cpu_bb(nodes, if bb < 500.0 { 0.0 } else { bb }))
}

fn window_strategy(max: usize) -> impl Strategy<Value = Vec<JobDemand>> {
    proptest::collection::vec(demand_strategy(), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Repair always produces a feasible chromosome and never selects a
    /// job that was not already selected.
    #[test]
    fn repair_is_sound(window in window_strategy(24), mask in any::<u64>()) {
        let w = window.len();
        let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(150, 6_000.0));
        let before = Chromosome::from_mask(mask, w);
        let mut after = before.clone();
        problem.repair(&mut after);
        prop_assert!(problem.is_feasible(&after));
        for i in 0..w {
            prop_assert!(!after.get(i) || before.get(i), "repair selected job {i}");
        }
    }

    /// The exhaustive front is mutually non-dominated and no feasible
    /// selection dominates any front point.
    #[test]
    fn exhaustive_front_is_exact(window in window_strategy(10)) {
        let w = window.len();
        let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(150, 6_000.0));
        let front = exhaustive::solve(&problem).unwrap();
        prop_assert!(front.is_mutually_nondominated());
        for mask in 0u64..(1 << w) {
            let c = Chromosome::from_mask(mask, w);
            if problem.is_feasible(&c) {
                let o = problem.evaluate(&c);
                for fp in front.objective_vectors() {
                    prop_assert!(!pareto::dominates(o.as_slice(), fp));
                }
            }
        }
    }

    /// Every GA front point is feasible, mutually non-dominated, and never
    /// dominates a true (exhaustive) Pareto point.
    #[test]
    fn ga_front_is_feasible_and_bounded_by_truth(
        window in window_strategy(12),
        seed in any::<u64>(),
    ) {
        let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(150, 6_000.0));
        let cfg = GaConfig { generations: 60, seed, ..GaConfig::default() };
        let front = MooGa::new(cfg).solve(&problem);
        prop_assert!(front.is_mutually_nondominated());
        let truth = exhaustive::solve(&problem).unwrap();
        for s in front.solutions() {
            prop_assert!(problem.is_feasible(&s.chromosome));
            for t in truth.objective_vectors() {
                prop_assert!(
                    !pareto::dominates(s.objectives.as_slice(), t),
                    "GA point {:?} dominates true point {:?}",
                    s.objectives.as_slice(),
                    t
                );
            }
        }
    }

    /// Policy selections fit the free pool for arbitrary windows.
    #[test]
    fn policies_always_return_feasible_selections(
        window in window_strategy(16),
        nodes in 50u32..300,
        bb in 1_000.0f64..20_000.0,
        inv in 0u64..4,
    ) {
        let avail = bbsched::core::PoolState::cpu_bb(nodes, bb);
        let ga = GaParams { generations: 30, ..GaParams::default() };
        for kind in PolicyKind::main_roster() {
            let sel = kind.build(ga).select(&window, &avail, inv);
            prop_assert!(
                bbsched::policies::selection_is_feasible(&window, &avail, &sel),
                "{} returned {:?}",
                kind.name(),
                sel
            );
        }
    }
}

fn job_strategy(max_id: u64) -> impl Strategy<Value = (f64, u32, f64, f64, f64)> {
    let _ = max_id;
    (
        0.0f64..5_000.0,  // submit
        1u32..40,         // nodes
        10.0f64..2_000.0, // runtime
        1.0f64..2.5,      // walltime factor
        0.0f64..3_000.0,  // bb
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traces: every job runs exactly once, capacity is never
    /// violated, and nothing starts before submission.
    #[test]
    fn simulator_conserves_resources(
        raw in proptest::collection::vec(job_strategy(0), 1..40)
    ) {
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (submit, nodes, runtime, wt, bb))| {
                Job::new(i as u64, submit, nodes, runtime, runtime * wt)
                    .with_bb(if bb < 300.0 { 0.0 } else { bb })
            })
            .collect();
        let n = jobs.len();
        let trace = Trace::from_jobs(jobs).unwrap();
        let system = bbsched::workloads::SystemConfig {
            name: "prop".into(),
            nodes: 64,
            bb_gb: 4_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        };
        let ga = GaParams { generations: 20, ..GaParams::default() };
        let result = Simulator::new(&system, &trace, SimConfig::default())
            .unwrap()
            .run(PolicyKind::BbSched.build(ga));
        prop_assert_eq!(result.records.len(), n);

        let mut events: Vec<(f64, i64, f64)> = Vec::new();
        for r in &result.records {
            prop_assert!(r.start >= r.submit);
            events.push((r.start, i64::from(r.nodes), r.bb_gb));
            events.push((r.end, -i64::from(r.nodes), -r.bb_gb));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used_nodes = 0i64;
        let mut used_bb = 0.0f64;
        for (_, dn, dbb) in events {
            used_nodes += dn;
            used_bb += dbb;
            prop_assert!(used_nodes <= 64);
            prop_assert!(used_bb <= 4_000.0 + 1e-6);
        }
    }
}
