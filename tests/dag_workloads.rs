//! Integration: dependency-carrying (campaign/DAG) workloads through the
//! full simulator — §3.1's rule that "jobs with dependencies are allowed
//! to enter the window only if all the dependencies have been completed".

use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{SimConfig, SimResult, Simulator};
use bbsched::workloads::{
    dag::{dependent_fraction, weave_campaigns},
    generate, DagConfig, GeneratorConfig, MachineProfile,
};
use std::collections::HashMap;

fn run_woven(campaign_fraction: f64, kind: PolicyKind) -> SimResult {
    let profile = MachineProfile::cori().scaled(0.02);
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs: 250, seed: 31, load_factor: 1.05, ..Default::default() },
    );
    let cfg = DagConfig { campaign_fraction, ..DagConfig::default() };
    let trace = weave_campaigns(&base, &cfg, 31);
    let ga = GaParams { generations: 40, base_seed: 31, ..GaParams::default() };
    Simulator::new(&profile.system, &trace, SimConfig::default()).unwrap().run(kind.build(ga))
}

#[test]
fn no_job_starts_before_its_dependencies_complete() {
    let profile = MachineProfile::cori().scaled(0.02);
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs: 300, seed: 13, load_factor: 1.05, ..Default::default() },
    );
    let cfg = DagConfig { campaign_fraction: 0.6, ..DagConfig::default() };
    let trace = weave_campaigns(&base, &cfg, 13);
    assert!(dependent_fraction(&trace) > 0.2, "weaving must create dependencies");

    let ga = GaParams { generations: 40, base_seed: 13, ..GaParams::default() };
    let result = Simulator::new(&profile.system, &trace, SimConfig::default())
        .unwrap()
        .run(PolicyKind::BbSched.build(ga));
    assert_eq!(result.records.len(), trace.len());

    let end_by_id: HashMap<u64, f64> = result.records.iter().map(|r| (r.id, r.end)).collect();
    for (job, rec) in trace.jobs().iter().zip({
        let mut by_id: Vec<_> = result.records.clone();
        by_id.sort_by_key(|r| r.id);
        by_id
    }) {
        assert_eq!(job.id, rec.id);
        for dep in &job.deps {
            assert!(
                end_by_id[dep] <= rec.start + 1e-9,
                "job {} started at {} before dependency {} ended at {}",
                rec.id,
                rec.start,
                dep,
                end_by_id[dep]
            );
        }
    }
}

#[test]
fn every_policy_completes_dag_workloads() {
    for kind in [PolicyKind::Baseline, PolicyKind::BinPacking, PolicyKind::BbSched] {
        let result = run_woven(0.5, kind);
        assert_eq!(result.records.len(), 250, "{}", kind.name());
    }
}

#[test]
fn campaigns_lengthen_critical_paths() {
    // Chained jobs cannot overlap, so heavier weaving should not *shorten*
    // the makespan relative to the independent version of the same jobs.
    let independent = run_woven(0.0, PolicyKind::Baseline);
    let chained = run_woven(0.9, PolicyKind::Baseline);
    assert!(
        chained.makespan >= independent.makespan - 1e-6,
        "chained {} vs independent {}",
        chained.makespan,
        independent.makespan
    );
}
