//! Integration: walltime-estimate models and their effect on EASY
//! backfilling through the full simulator.

use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BaseScheduler, SimConfig, SimResult, Simulator};
use bbsched::workloads::{
    estimates::mean_overestimation, generate, EstimateModel, GeneratorConfig, MachineProfile,
    Trace, Workload,
};

fn contended_trace() -> (MachineProfile, Trace) {
    let factor = 0.02;
    let profile = MachineProfile::theta().scaled(factor);
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs: 300, seed: 17, load_factor: 1.15, ..Default::default() },
    );
    (profile.clone(), Workload::S2.apply_scaled(&base, 17, factor))
}

fn run(profile: &MachineProfile, trace: &Trace) -> SimResult {
    let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
    let ga = GaParams { generations: 30, base_seed: 17, ..GaParams::default() };
    Simulator::new(&profile.system, trace, cfg).unwrap().run(PolicyKind::Baseline.build(ga))
}

#[test]
fn estimate_models_keep_walltime_above_runtime() {
    let (_, trace) = contended_trace();
    for model in [
        EstimateModel::Exact,
        EstimateModel::Multiplicative { factor: 4.0, cap: 50_000.0 },
        EstimateModel::Bucketed { bucket: 3_600.0, cap: 86_400.0 },
        EstimateModel::SiteMax { limit: 43_200.0 },
    ] {
        let t = model.apply(&trace, 5);
        for j in t.jobs() {
            assert!(j.walltime >= j.runtime, "{model:?}");
        }
    }
}

#[test]
fn worse_estimates_do_not_improve_backfilling() {
    let (profile, trace) = contended_trace();
    let exact = run(&profile, &EstimateModel::Exact.apply(&trace, 5));
    let sitemax = run(&profile, &EstimateModel::SiteMax { limit: 86_400.0 }.apply(&trace, 5));
    // Oracle estimates expose every ends-before-shadow opportunity;
    // everyone-requests-the-limit hides them all.
    assert!(
        exact.backfilled >= sitemax.backfilled,
        "exact {} vs sitemax {}",
        exact.backfilled,
        sitemax.backfilled
    );
}

#[test]
fn overestimation_diagnostic_orders_models() {
    let (_, trace) = contended_trace();
    let exact = mean_overestimation(&EstimateModel::Exact.apply(&trace, 5));
    let x2 = mean_overestimation(
        &EstimateModel::Multiplicative { factor: 2.0, cap: f64::INFINITY }.apply(&trace, 5),
    );
    let x5 = mean_overestimation(
        &EstimateModel::Multiplicative { factor: 5.0, cap: f64::INFINITY }.apply(&trace, 5),
    );
    assert!((exact - 1.0).abs() < 1e-12);
    assert!(exact < x2 && x2 < x5, "{exact} {x2} {x5}");
}

#[test]
fn all_jobs_complete_under_every_model() {
    let (profile, trace) = contended_trace();
    for model in [
        EstimateModel::Exact,
        EstimateModel::Multiplicative { factor: 3.0, cap: 86_400.0 },
        EstimateModel::SiteMax { limit: 86_400.0 },
    ] {
        let result = run(&profile, &model.apply(&trace, 7));
        assert_eq!(result.records.len(), 300, "{model:?}");
        for r in &result.records {
            assert!(r.start >= r.submit);
        }
    }
}
