//! Integration tests of the §5 local-SSD case study: four-objective MOO,
//! heterogeneous 128/256 GB node pools, S5–S7 workloads, and the seven-
//! method roster.

use bbsched::metrics::{MeasurementWindow, MethodSummary};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BaseScheduler, SimConfig, SimResult, Simulator};
use bbsched::workloads::{generate, GeneratorConfig, MachineProfile, Workload};

fn run_ssd(kind: PolicyKind, workload: Workload, n_jobs: usize) -> SimResult {
    let factor = 0.02;
    let mut profile = MachineProfile::theta().scaled(factor);
    profile.system = profile.system.with_ssd_split();
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs, seed: 55, load_factor: 1.1, ..GeneratorConfig::default() },
    );
    let trace = workload.apply_scaled(&base, 55, factor);
    let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
    let ga = GaParams { generations: 60, base_seed: 55, ..GaParams::default() };
    Simulator::new(&profile.system, &trace, cfg).unwrap().run(kind.build(ga))
}

#[test]
fn all_seven_methods_run_the_case_study() {
    for kind in PolicyKind::ssd_roster() {
        let result = run_ssd(kind, Workload::S6, 120);
        assert_eq!(result.records.len(), 120, "{}", kind.name());
        assert!(result.system.has_local_ssd());
    }
}

#[test]
fn large_ssd_requests_run_only_on_256_nodes() {
    let result = run_ssd(PolicyKind::Baseline, Workload::S7, 150);
    for r in &result.records {
        if r.ssd_gb_per_node > 128.0 {
            assert_eq!(
                r.assignment.n128(),
                0,
                "job {} with {} GB/node must avoid 128-GB nodes",
                r.id,
                r.ssd_gb_per_node
            );
        }
        assert_eq!(r.assignment.total(), r.nodes);
    }
}

#[test]
fn ssd_pools_never_oversubscribed() {
    let result = run_ssd(PolicyKind::BbSched, Workload::S7, 150);
    // Sweep starts/ends tracking per-pool occupancy.
    let mut events: Vec<(f64, i64, i64)> = Vec::new();
    for r in &result.records {
        events.push((r.start, i64::from(r.assignment.n128()), i64::from(r.assignment.n256())));
        events.push((r.end, -i64::from(r.assignment.n128()), -i64::from(r.assignment.n256())));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut used_128, mut used_256) = (0i64, 0i64);
    for (t, d128, d256) in events {
        used_128 += d128;
        used_256 += d256;
        assert!(used_128 <= i64::from(result.system.nodes_128), "128-pool over at {t}");
        assert!(used_256 <= i64::from(result.system.nodes_256), "256-pool over at {t}");
        assert!(used_128 >= 0 && used_256 >= 0);
    }
}

#[test]
fn waste_accounting_matches_assignments() {
    let result = run_ssd(PolicyKind::Weighted, Workload::S5, 120);
    for r in &result.records {
        let cap = f64::from(r.assignment.n128()) * 128.0 + f64::from(r.assignment.n256()) * 256.0;
        let expected = (cap - r.ssd_gb_per_node * f64::from(r.nodes)).max(0.0);
        assert!(
            (r.wasted_ssd_gb - expected).abs() < 1e-6,
            "job {}: waste {} != expected {}",
            r.id,
            r.wasted_ssd_gb,
            expected
        );
    }
}

#[test]
fn heavier_ssd_mixes_increase_waste_pressure() {
    // S7 (80% large requests) must put more load on the 256-GB pool than
    // S5 (20% large): measure the share of node-seconds on 256-GB nodes.
    let share_256 = |r: &SimResult| {
        let total: f64 =
            r.records.iter().map(|x| f64::from(x.assignment.total()) * x.runtime).sum();
        let on_256: f64 =
            r.records.iter().map(|x| f64::from(x.assignment.n256()) * x.runtime).sum();
        on_256 / total
    };
    let s5 = run_ssd(PolicyKind::Baseline, Workload::S5, 200);
    let s7 = run_ssd(PolicyKind::Baseline, Workload::S7, 200);
    assert!(
        share_256(&s7) > share_256(&s5),
        "S7 share {} should exceed S5 share {}",
        share_256(&s7),
        share_256(&s5)
    );
}

#[test]
fn ssd_summaries_populate_ssd_metrics() {
    let result = run_ssd(PolicyKind::BbSched, Workload::S6, 120);
    let m = MethodSummary::from_result(&result, MeasurementWindow::full());
    assert!(m.ssd_usage() > 0.0, "SSD usage must be measured");
    assert!(m.ssd_wasted() >= 0.0);
    assert!(m.ssd_usage() + m.ssd_wasted() <= 1.0 + 1e-9, "used + wasted <= capacity");
}

/// Golden equivalence for the §5 four-objective problem: at identical GA
/// seeds, the deprecated `CpuBbSsdProblem` wrapper (the pre-refactor SSD
/// entry point, including its unconditional-drop repair) and the generic
/// `KnapsackMooProblem` over `ResourceModel::cpu_bb_ssd` produce
/// byte-identical fronts, and the 4x decision rule starts the same jobs.
#[test]
#[allow(deprecated)]
fn generic_path_reproduces_ssd_wrapper_front_bit_for_bit() {
    use bbsched::core::decision::{choose_preferred, DecisionRule};
    use bbsched::core::problem::{Available, JobDemand, MooProblem};
    use bbsched::core::resource::ResourceModel;
    use bbsched::core::{CpuBbSsdProblem, GaConfig, KnapsackMooProblem, MooGa, RepairStyle};

    let window = vec![
        JobDemand::cpu_bb_ssd(6, 8_000.0, 200.0),
        JobDemand::cpu_bb_ssd(4, 0.0, 64.0),
        JobDemand::cpu_bb_ssd(8, 12_000.0, 100.0),
        JobDemand::cpu_bb_ssd(2, 0.0, 250.0),
        JobDemand::cpu_bb_ssd(4, 2_000.0, 0.0),
        JobDemand::cpu_bb_ssd(3, 500.0, 128.0),
    ];
    for seed in [0u64, 55, 0xbb5c_11ed] {
        let cfg = GaConfig { generations: 500, seed, ..GaConfig::default() };
        let wrapper = CpuBbSsdProblem::new(window.clone(), Available::with_ssd(8, 8, 20_000.0));
        let generic =
            KnapsackMooProblem::new(window.clone(), ResourceModel::cpu_bb_ssd(8, 8, 20_000.0))
                .with_repair_style(RepairStyle::DropUnconditionally);
        let fw = MooGa::new(cfg.clone()).solve(&wrapper);
        let fg = MooGa::new(cfg).solve(&generic);
        assert_eq!(fw.len(), fg.len(), "front sizes diverged at seed {seed:#x}");
        for (a, b) in fw.solutions().iter().zip(fg.solutions()) {
            assert_eq!(a.chromosome, b.chromosome, "selection diverged at seed {seed:#x}");
            assert_eq!(a.objectives.as_slice(), b.objectives.as_slice());
        }
        let cw =
            choose_preferred(&fw, wrapper.normalizers().as_slice(), DecisionRule::multi_resource())
                .expect("non-empty front");
        let cg =
            choose_preferred(&fg, generic.normalizers().as_slice(), DecisionRule::multi_resource())
                .expect("non-empty front");
        assert_eq!(cw.chromosome, cg.chromosome, "decision diverged at seed {seed:#x}");
    }
}
