//! The paper's Table 1 example, end to end: five jobs, five methods.
//!
//! Shows how the naive, constrained, weighted, and bin-packing methods all
//! land on CPU-biased selections while BBSched surfaces — and picks — the
//! high-burst-buffer trade-off the others overlook.
//!
//! Run: `cargo run --release --example illustrative_example`

use bbsched::core::pools::PoolState;
use bbsched::core::problem::JobDemand;
use bbsched::policies::{GaParams, PolicyKind, SelectionPolicy};

fn main() {
    // Table 1(a): a 100-node system with 100 TB of burst buffer.
    let window = vec![
        JobDemand::cpu_bb(80, 20_000.0), // J1
        JobDemand::cpu_bb(10, 85_000.0), // J2
        JobDemand::cpu_bb(40, 5_000.0),  // J3
        JobDemand::cpu_bb(10, 0.0),      // J4
        JobDemand::cpu_bb(20, 0.0),      // J5
    ];
    let avail = PoolState::cpu_bb(100, 100_000.0);
    let ga = GaParams { generations: 500, base_seed: 4, ..GaParams::default() };

    println!("{:<18} {:<18} {:>10} {:>10}", "Method", "Selected", "Nodes", "BB (TB)");
    for kind in [
        PolicyKind::Baseline,
        PolicyKind::ConstrainedCpu,
        PolicyKind::ConstrainedBb,
        PolicyKind::Weighted,
        PolicyKind::WeightedCpu,
        PolicyKind::WeightedBb,
        PolicyKind::BinPacking,
        PolicyKind::BbSched,
    ] {
        let mut policy: Box<dyn SelectionPolicy> = kind.build(ga);
        let sel = policy.select(&window, &avail, 0);
        let names: Vec<String> = sel.iter().map(|&i| format!("J{}", i + 1)).collect();
        let nodes: u32 = sel.iter().map(|&i| window[i].nodes).sum();
        let bb: f64 = sel.iter().map(|&i| window[i].bb_gb).sum();
        println!(
            "{:<18} {:<18} {:>10} {:>10.0}",
            kind.name(),
            names.join(","),
            nodes,
            bb / 1_000.0
        );
    }
    println!(
        "\nBBSched should select J2,J3,J4,J5 (80 nodes, 90 TB): giving up 20% of the nodes\n\
         buys 70% more burst-buffer utilization — more than the 2x the decision rule demands."
    );
}
