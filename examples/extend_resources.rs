//! §5 case study: extending BBSched beyond two resources.
//!
//! Half the nodes carry 128 GB local SSDs, half 256 GB; jobs request
//! nodes, shared burst buffer, *and* per-node SSD. The MOO formulation
//! grows to four objectives (§5): node utilization, burst-buffer
//! utilization, SSD utilization, and minus wasted SSD; the decision rule
//! becomes the 4x variant.
//!
//! Run: `cargo run --release --example extend_resources`

use bbsched::core::decision::{choose_preferred, DecisionRule};
use bbsched::core::pools::PoolState;
use bbsched::core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{GaConfig, MooGa};
use bbsched::policies::{GaParams, PolicyKind, SelectionPolicy};

fn main() {
    // 16 free nodes: 8 with 128 GB SSDs, 8 with 256 GB; 20 TB free BB.
    let model = ResourceModel::cpu_bb_ssd(8, 8, 20_000.0);

    let window = vec![
        JobDemand::cpu_bb_ssd(6, 8_000.0, 200.0), // needs 256-GB nodes
        JobDemand::cpu_bb_ssd(4, 0.0, 64.0),      // happy on 128-GB nodes
        JobDemand::cpu_bb_ssd(8, 12_000.0, 100.0), // big BB + modest SSD
        JobDemand::cpu_bb_ssd(2, 0.0, 250.0),     // needs 256-GB nodes
        JobDemand::cpu_bb_ssd(4, 2_000.0, 0.0),   // no SSD at all
    ];

    // --- the raw four-objective machinery ---
    let problem = KnapsackMooProblem::new(window.clone(), model);
    let front = MooGa::new(GaConfig::default()).solve(&problem);
    println!("Four-objective Pareto set ({} points):", front.len());
    println!(
        "{:>8} {:>10} {:>10} {:>12}  selection",
        "nodes", "bb (GB)", "ssd (GB)", "wasted (GB)"
    );
    for s in front.solutions() {
        let sel: Vec<String> = s.chromosome.selected().map(|i| format!("J{}", i + 1)).collect();
        println!(
            "{:>8.0} {:>10.0} {:>10.0} {:>12.0}  [{}]",
            s.objectives[0],
            s.objectives[1],
            s.objectives[2],
            -s.objectives[3],
            sel.join(", ")
        );
    }

    let chosen =
        choose_preferred(&front, problem.normalizers().as_slice(), DecisionRule::multi_resource())
            .expect("non-empty front");
    let sel: Vec<String> = chosen.chromosome.selected().map(|i| format!("J{}", i + 1)).collect();
    println!("\n4x decision rule starts: [{}]", sel.join(", "));

    // --- the same thing through the policy interface ---
    let pool = PoolState::with_ssd(8, 8, 20_000.0);
    println!("\nPolicy-level comparison on the same window:");
    let ga = GaParams { generations: 500, ..GaParams::default() };
    for kind in [
        PolicyKind::Baseline,
        PolicyKind::ConstrainedSsd,
        PolicyKind::Weighted,
        PolicyKind::BbSched,
    ] {
        let mut p: Box<dyn SelectionPolicy> = kind.build(ga);
        let chosen = p.select(&window, &pool, 0);
        let names: Vec<String> = chosen.iter().map(|&i| format!("J{}", i + 1)).collect();
        println!("  {:<16} -> [{}]", kind.name(), names.join(", "));
    }
}
