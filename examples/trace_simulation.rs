//! End-to-end trace-driven simulation: a Theta-S4-style workload under
//! heavy burst-buffer pressure, comparing the Baseline, Bin_Packing, and
//! BBSched methods on all four §4.2 metrics.
//!
//! This is the full pipeline the paper's evaluation uses: calibrated
//! trace generation -> synthetic stress transform -> discrete-event
//! simulation with WFP base scheduling and EASY backfilling -> metric
//! summaries with warm-up/cool-down trimming.
//!
//! Run: `cargo run --release --example trace_simulation`

use bbsched::metrics::{MeasurementWindow, MethodSummary};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BaseScheduler, SimConfig, Simulator};
use bbsched::workloads::{generate, GeneratorConfig, MachineProfile, Workload};

fn main() {
    // A 5% replica of Theta keeps the run to seconds.
    let factor = 0.05;
    let profile = MachineProfile::theta().scaled(factor);
    let base = generate(
        &profile,
        &GeneratorConfig {
            n_jobs: 1_000,
            seed: 42,
            load_factor: 1.15,
            ..GeneratorConfig::default()
        },
    );
    // S4: 75% of jobs request burst buffer, drawn from the large-request
    // pool — the paper's most contended scenario.
    let trace = Workload::S4.apply_scaled(&base, 42, factor);
    let stats = trace.stats();
    println!(
        "workload: {} jobs, {:.1}% requesting BB, {:.1} TB aggregate demand\n",
        stats.n_jobs,
        stats.bb_fraction() * 100.0,
        stats.total_bb_gb / 1000.0
    );

    let ga = GaParams { generations: 200, base_seed: 42, ..GaParams::default() };
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10}",
        "Method", "Node use", "BB use", "Avg wait", "Slowdown"
    );
    for kind in [PolicyKind::Baseline, PolicyKind::BinPacking, PolicyKind::BbSched] {
        let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
        let result =
            Simulator::new(&profile.system, &trace, cfg).expect("valid setup").run(kind.build(ga));
        let m = MethodSummary::from_result(&result, MeasurementWindow::default());
        println!(
            "{:<14} {:>9.1}% {:>9.1}% {:>11.2}h {:>10.2}",
            kind.name(),
            m.node_usage() * 100.0,
            m.bb_usage() * 100.0,
            m.avg_wait / 3600.0,
            m.avg_slowdown
        );
    }
    println!(
        "\nExpected: BBSched sustains the highest joint node+BB usage and the lowest\n\
         wait/slowdown — the paper reports up to 41% wait-time reduction on Theta."
    );
}
