//! Tuning the MOO solver: generational distance vs G and P (Fig. 4 style).
//!
//! Builds a 20-job window, computes the *true* Pareto set exhaustively,
//! then measures how close the GA front gets as generations and
//! population grow — the §3.2.3 methodology for choosing G=500, P=20.
//!
//! Run: `cargo run --release --example parameter_tuning`

use bbsched::core::problem::{JobDemand, KnapsackMooProblem};
use bbsched::core::quality::{generational_distance_scaled, hypervolume_2d};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{exhaustive, GaConfig, MooGa};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // A synthetic 20-job window against 500 free nodes / 100 TB free BB.
    let mut rng = SmallRng::seed_from_u64(2024);
    let window: Vec<JobDemand> = (0..20)
        .map(|_| {
            JobDemand::cpu_bb(
                rng.random_range(8..200),
                if rng.random_bool(0.6) { rng.random_range(100.0..40_000.0) } else { 0.0 },
            )
        })
        .collect();
    let problem = KnapsackMooProblem::new(window, ResourceModel::cpu_bb(500, 100_000.0));

    let t = Instant::now();
    let truth = exhaustive::solve(&problem).expect("w=20 fits the cap");
    println!(
        "true Pareto set: {} points (exhaustive enumeration of 2^20 selections, {:.0} ms)\n",
        truth.len(),
        t.elapsed().as_secs_f64() * 1000.0
    );

    let scale = [500.0, 100_000.0];
    let hv_truth = hypervolume_2d(&truth, 0.0, 0.0);
    println!("{:>4} {:>6} {:>14} {:>12} {:>10}", "P", "G", "GD (norm.)", "HV ratio", "time (ms)");
    for population in [10usize, 20, 50] {
        for generations in [50usize, 200, 500, 2000] {
            let cfg = GaConfig { population, generations, seed: 99, ..GaConfig::default() };
            let t = Instant::now();
            let front = MooGa::new(cfg).solve(&problem);
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            let gd = generational_distance_scaled(&front, &truth, &scale);
            let hv = hypervolume_2d(&front, 0.0, 0.0) / hv_truth;
            println!("{population:>4} {generations:>6} {gd:>14.5} {hv:>12.4} {ms:>10.2}");
        }
    }
    println!(
        "\nGD should shrink (and the hypervolume ratio approach 1) as G and P grow,\n\
         with diminishing returns past G=500 — the paper's chosen operating point."
    );
}
