//! Registering a *new* schedulable resource — the paper's extensibility
//! claim ("BBSched can be easily extended to schedule other schedulable
//! resources") exercised end to end.
//!
//! A Theta-like system gains a third pooled resource: a cluster-wide GPU
//! bank. No core, policy, or simulator code changes are needed — the GPU
//! pool is one more row in the system's resource table:
//!
//! * `SystemConfig::with_extra_resource("gpus", n)` registers the pool;
//! * jobs request it through `Job::with_extra(0, amount)`;
//! * every GA policy picks the problem up from the pool's `ResourceModel`
//!   (three objectives: nodes, burst buffer, GPUs), and BBSched switches
//!   to its multi-resource trade-off rule automatically;
//! * metrics report a `gpus` usage series like any other resource.
//!
//! Run: `cargo run --release --example custom_resource`

use bbsched::metrics::{MeasurementWindow, MethodSummary};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BaseScheduler, SimConfig, Simulator};
use bbsched::workloads::{generate, GeneratorConfig, MachineProfile, Workload};

fn main() {
    // A 2% replica of Theta, with a 96-GPU shared bank bolted on.
    let factor = 0.02;
    let mut profile = MachineProfile::theta().scaled(factor);
    profile.system = profile.system.with_extra_resource("gpus", 96.0);
    println!(
        "system: {} ({} nodes, {:.0} GB BB, 96 GPUs)",
        profile.system.name, profile.system.nodes, profile.system.bb_gb
    );
    let model = profile.system.resource_model();
    let names: Vec<&str> = model.specs().iter().map(|s| s.name.as_str()).collect();
    println!("resource model: {} -> {} objectives\n", names.join(" + "), model.num_objectives());

    // S2-style burst-buffer pressure, then a GPU mix: every third job is a
    // GPU job asking for two GPUs per requested node (deterministic, so the
    // run is reproducible).
    let base = generate(
        &profile,
        &GeneratorConfig { n_jobs: 400, seed: 7, load_factor: 1.1, ..GeneratorConfig::default() },
    );
    let trace = Workload::S2
        .apply_scaled(&base, 7, factor)
        .map_jobs(|j| {
            if j.id % 3 == 0 {
                let gpus = f64::from(j.nodes) * 2.0;
                j.with_extra(0, gpus)
            } else {
                j
            }
        })
        .expect("GPU demands are valid");
    let gpu_jobs = trace.jobs().iter().filter(|j| j.extra_demand(0) > 0.0).count();
    println!("workload: {} jobs, {} requesting GPUs\n", trace.len(), gpu_jobs);

    let ga = GaParams { generations: 100, base_seed: 7, ..GaParams::default() };
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "Method", "Node use", "BB use", "GPU use", "Avg wait", "Slowdown"
    );
    for kind in [PolicyKind::Baseline, PolicyKind::BinPacking, PolicyKind::BbSched] {
        let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
        let result =
            Simulator::new(&profile.system, &trace, cfg).expect("valid setup").run(kind.build(ga));
        let m = MethodSummary::from_result(&result, MeasurementWindow::default());
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.2}h {:>10.2}",
            kind.name(),
            m.node_usage() * 100.0,
            m.bb_usage() * 100.0,
            m.usage_of("gpus") * 100.0,
            m.avg_wait / 3600.0,
            m.avg_slowdown
        );
    }
    println!(
        "\nThe GPU bank is a first-class third objective: BBSched trades node,\n\
         BB, and GPU utilization on one Pareto front, with zero solver changes."
    );
}
