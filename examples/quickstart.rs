//! Quickstart: solve one multi-resource scheduling decision with BBSched.
//!
//! A small cluster has some free nodes and burst buffer; six jobs wait at
//! the front of the queue. We formulate the §3.2.1 MOO problem, run the
//! genetic solver, inspect the Pareto set, and let the §3.2.4 decision
//! rule pick the jobs to start.
//!
//! Run: `cargo run --release --example quickstart`

use bbsched::core::decision::{choose_preferred, DecisionRule};
use bbsched::core::problem::{JobDemand, KnapsackMooProblem, MooProblem};
use bbsched::core::resource::ResourceModel;
use bbsched::core::{GaConfig, MooGa};

fn main() {
    // Free capacity at this scheduling invocation: 256 nodes, 50 TB BB.
    let free_nodes = 256;
    let free_bb_gb = 50_000.0;

    // The scheduling window (job demands: nodes, burst buffer GB).
    let window = vec![
        JobDemand::cpu_bb(128, 2_000.0),
        JobDemand::cpu_bb(64, 30_000.0),
        JobDemand::cpu_bb(100, 0.0),
        JobDemand::cpu_bb(32, 18_000.0),
        JobDemand::cpu_bb(16, 0.0),
        JobDemand::cpu_bb(200, 45_000.0),
    ];

    let problem =
        KnapsackMooProblem::new(window.clone(), ResourceModel::cpu_bb(free_nodes, free_bb_gb));

    // Paper defaults: P=20, G=500, p_m=0.05%.
    let solver = MooGa::new(GaConfig::default());
    let mut front = solver.solve(&problem);
    front.sort_by_first_objective();

    println!("Pareto set ({} trade-off points):", front.len());
    for s in front.solutions() {
        let jobs: Vec<String> = s.chromosome.selected().map(|i| format!("J{}", i + 1)).collect();
        println!(
            "  nodes {:>5.0} / {free_nodes}   bb {:>8.0} / {free_bb_gb} GB   [{}]",
            s.objectives[0],
            s.objectives[1],
            jobs.join(", ")
        );
    }

    // The decision maker trades node utilization for burst buffer at 2x.
    let chosen = choose_preferred(&front, problem.normalizers().as_slice(), DecisionRule::cpu_bb())
        .expect("non-empty front");
    let jobs: Vec<String> = chosen.chromosome.selected().map(|i| format!("J{}", i + 1)).collect();
    println!("\nDecision rule starts: {}", jobs.join(", "));
    println!(
        "  -> node utilization {:.1}%, burst-buffer utilization {:.1}%",
        chosen.objectives[0] / f64::from(free_nodes) * 100.0,
        chosen.objectives[1] / free_bb_gb * 100.0
    );
}
