//! Backfilling disciplines compared: EASY (the paper's choice) vs
//! conservative reservations, under the same BBSched selection.
//!
//! EASY protects only the first blocked job and backfills aggressively;
//! conservative protects everyone and backfills cautiously. The classic
//! trade-off — utilization vs predictability — shows up directly in the
//! metrics.
//!
//! Run: `cargo run --release --example backfill_disciplines`

use bbsched::metrics::{DistributionStats, MeasurementWindow, MethodSummary};
use bbsched::policies::{GaParams, PolicyKind};
use bbsched::sim::{BackfillAlgorithm, BaseScheduler, SimConfig, Simulator};
use bbsched::workloads::{generate, GeneratorConfig, MachineProfile, Workload};

fn main() {
    let factor = 0.05;
    let profile = MachineProfile::theta().scaled(factor);
    let base = generate(
        &profile,
        &GeneratorConfig {
            n_jobs: 1_500,
            seed: 99,
            load_factor: 1.15,
            ..GeneratorConfig::default()
        },
    );
    let trace = Workload::S2.apply_scaled(&base, 99, factor);
    let ga = GaParams { generations: 200, base_seed: 99, ..GaParams::default() };

    println!(
        "{:<14} {:>10} {:>10} {:>11} {:>11} {:>12}",
        "Backfill", "Node use", "BB use", "Avg wait", "P99 wait", "Backfilled"
    );
    for (label, alg) in
        [("EASY", BackfillAlgorithm::Easy), ("Conservative", BackfillAlgorithm::Conservative)]
    {
        let cfg =
            SimConfig { base: BaseScheduler::Wfp, backfill_algorithm: alg, ..SimConfig::default() };
        let result = Simulator::new(&profile.system, &trace, cfg)
            .expect("valid setup")
            .run(PolicyKind::BbSched.build(ga));
        let m = MethodSummary::from_result(&result, MeasurementWindow::default());
        let waits = DistributionStats::of_waits(&result.records);
        println!(
            "{:<14} {:>9.1}% {:>9.1}% {:>10.2}h {:>10.2}h {:>12}",
            label,
            m.node_usage() * 100.0,
            m.bb_usage() * 100.0,
            m.avg_wait / 3600.0,
            waits.p99 / 3600.0,
            result.backfilled,
        );
    }
    println!(
        "\nExpected: EASY backfills more and posts higher utilization and lower waits;\n\
         conservative trades that throughput for predictability — every queued job's\n\
         reserved start can only move earlier, never later. Under sustained overload\n\
         (as here) that predictability costs both average and tail wait, which is\n\
         exactly why EASY is the production default the paper builds on."
    );
}
