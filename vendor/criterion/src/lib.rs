//! Offline stand-in for `criterion`.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! with a straightforward wall-clock measurement loop. For each benchmark
//! it prints the median per-iteration time together with the min/max
//! sample, in a format close to upstream criterion's
//! `name  time: [low mid high]` line.
//!
//! No statistical regression analysis, plotting, or baseline storage is
//! performed; numbers are for relative comparison within one machine.

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, collecting per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(120) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 100_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Aim for ~2 ms per sample so cheap routines are timed in batches.
        let batch = ((0.002 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

fn run_and_report(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    s.sort_by(f64::total_cmp);
    let low = s[0];
    let high = s[s.len() - 1];
    let mid = s[s.len() / 2];
    println!(
        "{label:<40} time:   [{} {} {}]",
        format_time(low),
        format_time(mid),
        format_time(high)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_and_report(&label, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_and_report(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream requires it; here it is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Upstream parses CLI flags here; this stand-in accepts and ignores
    /// them so `cargo bench -- <filter>` invocations still run.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_and_report(name, 20, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
