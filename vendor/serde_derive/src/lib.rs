//! Offline stand-in for `serde_derive`.
//!
//! Generates [`serde::Serialize`]/[`serde::Deserialize`] impls against the
//! vendored value-tree `serde` crate. Because the build environment has no
//! registry access, this macro parses the item's `TokenStream` by hand
//! instead of using `syn`/`quote`. Supported shapes — the full set used by
//! this workspace:
//!
//! * structs with named fields, honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]`;
//! * enums whose variants are unit-like, newtype (single tuple field), or
//!   carry named fields (externally tagged, matching serde's default
//!   representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum FieldDefault {
    /// Field is required; missing is an error.
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum VariantShape {
    Unit,
    /// Single unnamed field, e.g. `Extra(u8)`.
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("serde_derive produced invalid Rust"),
        Err(msg) => format!("compile_error!({:?});", msg).parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

/// Consumes leading attributes, returning any `#[serde(...)]` payload
/// groups encountered.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<TokenStream> {
    let mut serde_payloads = Vec::new();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        serde_payloads.push(args.stream());
                    }
                }
                *i += 1;
            }
        }
    }
    serde_payloads
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Interprets a `#[serde(...)]` payload on a field.
fn field_default_from_attrs(payloads: &[TokenStream]) -> Result<FieldDefault, String> {
    for p in payloads {
        let toks: Vec<TokenTree> = p.clone().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = toks.first() {
            if id.to_string() == "default" {
                return match toks.get(2) {
                    None => Ok(FieldDefault::Std),
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        let path = s.trim_matches('"').to_string();
                        Ok(FieldDefault::Path(path))
                    }
                    _ => Err("unsupported #[serde(default = ...)] form".into()),
                };
            }
        }
        return Err(format!("unsupported serde attribute: {}", p));
    }
    Ok(FieldDefault::Required)
}

/// Parses the named fields inside a brace group.
fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let payloads = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {:?}", other)),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {:?}", other)),
        }
        // Skip the type, tracking `<...>` nesting so commas inside
        // generics don't end the field early.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default: field_default_from_attrs(&payloads)? });
    }
    Ok(fields)
}

/// Parses the variants inside an enum's brace group.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {:?}", other)),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Only single-field (newtype) tuple variants are supported:
                // a top-level comma followed by more tokens means a second
                // field. Angle-bracket nesting keeps generics transparent.
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut angle = 0i32;
                for (j, tok) in toks.iter().enumerate() {
                    if let TokenTree::Punct(p) = tok {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 && j + 1 < toks.len() => {
                                return Err(format!(
                                    "multi-field tuple variant `{name}` is not supported"
                                ));
                            }
                            _ => {}
                        }
                    }
                }
                i += 1;
                VariantShape::Newtype
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {:?}", other)),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {:?}", other)),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the vendored derive"));
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "m.push((String::from({n:?}), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(m)\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(String::from({v:?})),\n",
                        v = v.name
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{v}(x) => ::serde::Value::Map(vec![(String::from({v:?}), ::serde::Serialize::to_value(x))]),\n",
                        v = v.name
                    )),
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "m.push((String::from({n:?}), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(vec![(String::from({v:?}), ::serde::Value::Map(m))])\n\
                             }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Emits the struct-literal field initializers for deserializing `fields`
/// out of a map bound to `m`, with `ctx` naming the containing type in
/// error messages.
fn gen_field_inits(fields: &[Field], ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fallback = match &f.default {
            FieldDefault::Required => format!(
                "return ::core::result::Result::Err(::serde::Error::missing({:?}, {:?}))",
                f.name, ctx
            ),
            FieldDefault::Std => "::core::default::Default::default()".to_string(),
            FieldDefault::Path(path) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{n}: match ::serde::__private::get(m, {n:?}) {{\n\
             ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::core::option::Option::None => {fallback},\n\
             }},\n",
            n = f.name
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits = gen_field_inits(fields, name);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let m = match v.as_map() {{\n\
                 ::core::option::Option::Some(m) => m,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(::serde::Error::ty(\"map\", {name:?}, v)),\n\
                 }};\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantShape::Newtype => struct_arms.push_str(&format!(
                        "{v:?} => ::core::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Struct(fields) => {
                        let ctx = format!("{name}::{}", v.name);
                        let inits = gen_field_inits(fields, &ctx);
                        struct_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let m = match inner.as_map() {{\n\
                             ::core::option::Option::Some(m) => m,\n\
                             ::core::option::Option::None => return ::core::result::Result::Err(::serde::Error::ty(\"map\", {ctx:?}, inner)),\n\
                             }};\n\
                             ::core::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\n\
                 format!(\"unknown variant `{{}}` of {name}\", other))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {struct_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\n\
                 format!(\"unknown variant `{{}}` of {name}\", other))),\n\
                 }}\n\
                 }},\n\
                 other => ::core::result::Result::Err(::serde::Error::ty(\n\
                 \"string or single-entry map\", {name:?}, other)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}
