//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! range / tuple / array / [`collection::vec`] / [`prop_map`] strategies,
//! [`any`], and [`ProptestConfig::with_cases`]. Case generation is
//! deterministic (fixed seed per test body) and there is no shrinking:
//! a failure reports the exact failing input instead.
//!
//! [`prop_map`]: strategy::Strategy::prop_map
//! [`any`]: arbitrary::any
//! [`ProptestConfig::with_cases`]: test_runner::ProptestConfig::with_cases

pub mod strategy {
    //! Strategies: composable generators of test inputs.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn pick(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn pick(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn pick(&self, rng: &mut SmallRng) -> Self::Value {
            std::array::from_fn(|i| self[i].pick(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn pick(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }

    /// Marker for [`super::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn pick(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use super::strategy::Any;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            // Finite, sign-balanced, wide dynamic range; avoids NaN/inf
            // so arithmetic properties stay meaningful.
            rng.random_range(-1.0e9..1.0e9)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind [`crate::proptest!`].

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Test-execution configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runs a property over deterministically generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed: failures reproduce exactly
        /// on re-run.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config, rng: SmallRng::seed_from_u64(0x9e37_79b9_7f4a_7c15) }
        }

        /// Runs `test` once per generated case, panicking (with the
        /// failing input) on the first failure.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.pick(&mut self.rng);
                let repr = format!("{value:?}");
                if let Err(TestCaseError::Fail(msg)) = test(value) {
                    panic!(
                        "proptest case {}/{} failed: {}\ninput: {}",
                        case + 1,
                        self.config.cases,
                        msg,
                        repr
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)*);
            runner.run(&strategy, |($($arg,)*)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_body!($cfg; $($rest)*);
    };
    ($cfg:expr;) => {};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn map_applies(n in (1u32..4).prop_map(|x| x * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30, "n={}", n);
        }

        #[test]
        fn arrays_and_tuples(a in [0.0f64..1.0, 0.0f64..1.0], t in (0u8..3, any::<bool>())) {
            prop_assert!(a[0] < 1.0 && a[1] < 1.0);
            prop_assert!(t.0 < 3);
            prop_assert_eq!(t.1, t.1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(&(0u32..4,), |(_x,)| Err(TestCaseError::fail("boom")));
    }
}
