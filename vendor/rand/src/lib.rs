//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`SmallRng`] (xoshiro256++,
//! the same generator family rand 0.9 uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`] (SplitMix64 expansion, as upstream), and
//! the [`Rng::random_range`] / [`Rng::random_bool`] sampling methods.
//!
//! Streams are deterministic for a given seed but are not guaranteed to be
//! bit-identical to upstream `rand`; everything in this workspace that
//! depends on exact streams (golden tests, figures) was generated with this
//! implementation.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a raw word to a float in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// This is the algorithm family upstream `rand` 0.9 uses for
    /// `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as in upstream rand.
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_vals: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.0..1.5);
            assert!((0.0..1.5).contains(&f));
            let i: usize = rng.random_range(0..=4);
            assert!(i <= 4);
            let s: i32 = rng.random_range(-10..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }
}
