//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree as JSON and parses it back.
//! Floats are printed with Rust's shortest round-trip formatting (with a
//! `.0` suffix for integral values, matching upstream), so
//! serialize → deserialize round-trips are bit-exact — the property the
//! workspace's `float_roundtrip` feature selection relies on.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Alias with the error type defaulted, as in upstream `serde_json`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json writes non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{:.1}", f);
    } else {
        let _ = write!(out, "{}", f);
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind);
        }),
        Value::Map(entries) => write_block(out, indent, '{', '}', entries.len(), |out, i, ind| {
            write_escaped(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, ind);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed (2-space indented) JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out.into_bytes())
}

/// Serializes compact JSON into an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e =
                        *self.bytes.get(self.pos).ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let piece =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(piece);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let v = self.value()?;
                    entries.push((key, v));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a [`Value`] tree out of JSON bytes.
pub fn value_from_slice(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    Ok(T::from_value(&value_from_slice(bytes)?)?)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&20_000.0f64).unwrap(), "20000.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123_456.789, f64::MAX, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he said \"hi\"\nline2\ttab \\ done é漢";
        let js = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&js).unwrap();
        assert_eq!(back, s);
        let unicode: String = from_str(r#""Aé""#).unwrap();
        assert_eq!(unicode, "Aé");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let js = to_string(&v).unwrap();
        assert_eq!(js, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&js).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        let bytes = to_vec_pretty(&v).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
