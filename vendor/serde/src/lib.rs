//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a compact value-tree serialization framework under the same
//! crate name. Types implement [`Serialize`]/[`Deserialize`] by converting
//! to and from a [`Value`] tree; `serde_json` (also vendored) renders that
//! tree as JSON. The derive macros are re-exported from `serde_derive` and
//! support named-field structs and enums with unit or struct variants,
//! plus the `#[serde(default)]` / `#[serde(default = "path")]` field
//! attributes — exactly the surface this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value tree (the data model).
///
/// Maps preserve insertion order so that serialized output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key/value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn ty(expected: &str, context: &str, found: &Value) -> Self {
        Self::custom(format!(
            "expected {expected} while deserializing {context}, found {}",
            found.kind()
        ))
    }

    /// A required field was absent.
    pub fn missing(field: &str, context: &str) -> Self {
        Self::custom(format!("missing field `{field}` in {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::ty("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::ty("string", "String", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::ty("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))?,
                    other => return Err(Error::ty("integer", stringify!($t), other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for isize")))
        })
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::ty("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::ty("sequence", "Vec", other)),
        }
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::ty(
                        concat!("sequence of length ", $len), "tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Helpers used by the generated derive code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::Value;

    /// Looks up a key in an order-preserving map.
    pub fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<(f64, f64)> = Some((1.0, 2.0));
        assert_eq!(Option::<(f64, f64)>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn integers_from_floats_rejected() {
        assert!(u64::from_value(&Value::F64(1.0)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
