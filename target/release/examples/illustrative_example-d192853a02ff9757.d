/root/repo/target/release/examples/illustrative_example-d192853a02ff9757.d: examples/illustrative_example.rs

/root/repo/target/release/examples/illustrative_example-d192853a02ff9757: examples/illustrative_example.rs

examples/illustrative_example.rs:
