/root/repo/target/release/examples/extend_resources-4a694de02e41d303.d: examples/extend_resources.rs

/root/repo/target/release/examples/extend_resources-4a694de02e41d303: examples/extend_resources.rs

examples/extend_resources.rs:
