/root/repo/target/release/examples/quickstart-10606751f2f1e5b7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-10606751f2f1e5b7: examples/quickstart.rs

examples/quickstart.rs:
