/root/repo/target/release/examples/custom_resource-8791df38ca9bcc6f.d: examples/custom_resource.rs

/root/repo/target/release/examples/custom_resource-8791df38ca9bcc6f: examples/custom_resource.rs

examples/custom_resource.rs:
