/root/repo/target/release/examples/parameter_tuning-e303625711526fb3.d: examples/parameter_tuning.rs

/root/repo/target/release/examples/parameter_tuning-e303625711526fb3: examples/parameter_tuning.rs

examples/parameter_tuning.rs:
