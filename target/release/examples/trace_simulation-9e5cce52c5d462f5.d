/root/repo/target/release/examples/trace_simulation-9e5cce52c5d462f5.d: examples/trace_simulation.rs

/root/repo/target/release/examples/trace_simulation-9e5cce52c5d462f5: examples/trace_simulation.rs

examples/trace_simulation.rs:
