/root/repo/target/release/examples/backfill_disciplines-0df328bcccb875be.d: examples/backfill_disciplines.rs

/root/repo/target/release/examples/backfill_disciplines-0df328bcccb875be: examples/backfill_disciplines.rs

examples/backfill_disciplines.rs:
