/root/repo/target/release/deps/property_invariants-e4a791098f85c91f.d: tests/property_invariants.rs

/root/repo/target/release/deps/property_invariants-e4a791098f85c91f: tests/property_invariants.rs

tests/property_invariants.rs:
