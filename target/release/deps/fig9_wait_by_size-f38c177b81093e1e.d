/root/repo/target/release/deps/fig9_wait_by_size-f38c177b81093e1e.d: crates/bench/src/bin/fig9_wait_by_size.rs

/root/repo/target/release/deps/fig9_wait_by_size-f38c177b81093e1e: crates/bench/src/bin/fig9_wait_by_size.rs

crates/bench/src/bin/fig9_wait_by_size.rs:
