/root/repo/target/release/deps/ablation_estimates-df8a1c7c34043433.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/release/deps/ablation_estimates-df8a1c7c34043433: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
