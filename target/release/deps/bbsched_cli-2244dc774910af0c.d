/root/repo/target/release/deps/bbsched_cli-2244dc774910af0c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libbbsched_cli-2244dc774910af0c.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libbbsched_cli-2244dc774910af0c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
