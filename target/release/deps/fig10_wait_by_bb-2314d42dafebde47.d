/root/repo/target/release/deps/fig10_wait_by_bb-2314d42dafebde47.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/release/deps/fig10_wait_by_bb-2314d42dafebde47: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
