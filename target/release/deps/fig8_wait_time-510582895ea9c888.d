/root/repo/target/release/deps/fig8_wait_time-510582895ea9c888.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/release/deps/fig8_wait_time-510582895ea9c888: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
