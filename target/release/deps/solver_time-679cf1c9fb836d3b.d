/root/repo/target/release/deps/solver_time-679cf1c9fb836d3b.d: crates/bench/benches/solver_time.rs

/root/repo/target/release/deps/solver_time-679cf1c9fb836d3b: crates/bench/benches/solver_time.rs

crates/bench/benches/solver_time.rs:
