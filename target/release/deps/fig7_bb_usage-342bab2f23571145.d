/root/repo/target/release/deps/fig7_bb_usage-342bab2f23571145.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/release/deps/fig7_bb_usage-342bab2f23571145: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
