/root/repo/target/release/deps/table1-e156066315167c29.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e156066315167c29: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
