/root/repo/target/release/deps/bbsched_core-c0a9a075bbca80e3.d: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs

/root/repo/target/release/deps/bbsched_core-c0a9a075bbca80e3: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/chromosome.rs:
crates/core/src/decision.rs:
crates/core/src/exhaustive.rs:
crates/core/src/ga.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/pools.rs:
crates/core/src/problem.rs:
crates/core/src/quality.rs:
crates/core/src/resource.rs:
crates/core/src/window.rs:
