/root/repo/target/release/deps/bbsched_cli-6227ac74607caaf4.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/bbsched_cli-6227ac74607caaf4: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
