/root/repo/target/release/deps/proptest-940694bf9c96ba6b.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-940694bf9c96ba6b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-940694bf9c96ba6b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
