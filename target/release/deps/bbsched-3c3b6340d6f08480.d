/root/repo/target/release/deps/bbsched-3c3b6340d6f08480.d: crates/cli/src/main.rs

/root/repo/target/release/deps/bbsched-3c3b6340d6f08480: crates/cli/src/main.rs

crates/cli/src/main.rs:
