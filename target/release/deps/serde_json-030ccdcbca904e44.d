/root/repo/target/release/deps/serde_json-030ccdcbca904e44.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-030ccdcbca904e44.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-030ccdcbca904e44.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
