/root/repo/target/release/deps/ssd_case_study-240102aa4981b242.d: tests/ssd_case_study.rs

/root/repo/target/release/deps/ssd_case_study-240102aa4981b242: tests/ssd_case_study.rs

tests/ssd_case_study.rs:
