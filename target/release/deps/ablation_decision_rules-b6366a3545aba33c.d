/root/repo/target/release/deps/ablation_decision_rules-b6366a3545aba33c.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/release/deps/ablation_decision_rules-b6366a3545aba33c: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
