/root/repo/target/release/deps/bbsched_metrics-c743b4ed31179d99.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/release/deps/bbsched_metrics-c743b4ed31179d99: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/live.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
