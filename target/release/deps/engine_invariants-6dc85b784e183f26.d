/root/repo/target/release/deps/engine_invariants-6dc85b784e183f26.d: crates/sim/tests/engine_invariants.rs

/root/repo/target/release/deps/engine_invariants-6dc85b784e183f26: crates/sim/tests/engine_invariants.rs

crates/sim/tests/engine_invariants.rs:
