/root/repo/target/release/deps/fig6_node_usage-136597191a695dbc.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/release/deps/fig6_node_usage-136597191a695dbc: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
