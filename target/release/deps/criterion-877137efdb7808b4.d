/root/repo/target/release/deps/criterion-877137efdb7808b4.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-877137efdb7808b4.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-877137efdb7808b4.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
