/root/repo/target/release/deps/bench_sim-fe99463df1b36745.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/release/deps/bench_sim-fe99463df1b36745: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
