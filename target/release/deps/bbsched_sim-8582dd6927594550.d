/root/repo/target/release/deps/bbsched_sim-8582dd6927594550.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/bbsched_sim-8582dd6927594550: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backfill.rs:
crates/sim/src/base_sched.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/observer.rs:
crates/sim/src/profile.rs:
crates/sim/src/queue.rs:
crates/sim/src/record.rs:
crates/sim/src/simulator.rs:
