/root/repo/target/release/deps/fig2_window_time-02dd0567f28c4bfa.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/release/deps/fig2_window_time-02dd0567f28c4bfa: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
