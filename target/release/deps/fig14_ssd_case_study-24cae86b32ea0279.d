/root/repo/target/release/deps/fig14_ssd_case_study-24cae86b32ea0279.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/release/deps/fig14_ssd_case_study-24cae86b32ea0279: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
