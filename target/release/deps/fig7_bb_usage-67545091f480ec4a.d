/root/repo/target/release/deps/fig7_bb_usage-67545091f480ec4a.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/release/deps/fig7_bb_usage-67545091f480ec4a: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
