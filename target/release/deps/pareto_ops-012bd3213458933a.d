/root/repo/target/release/deps/pareto_ops-012bd3213458933a.d: crates/bench/benches/pareto_ops.rs

/root/repo/target/release/deps/pareto_ops-012bd3213458933a: crates/bench/benches/pareto_ops.rs

crates/bench/benches/pareto_ops.rs:
