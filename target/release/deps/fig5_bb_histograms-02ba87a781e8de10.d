/root/repo/target/release/deps/fig5_bb_histograms-02ba87a781e8de10.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/release/deps/fig5_bb_histograms-02ba87a781e8de10: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
