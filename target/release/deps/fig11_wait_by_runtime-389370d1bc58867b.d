/root/repo/target/release/deps/fig11_wait_by_runtime-389370d1bc58867b.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/release/deps/fig11_wait_by_runtime-389370d1bc58867b: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
