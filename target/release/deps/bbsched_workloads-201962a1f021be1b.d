/root/repo/target/release/deps/bbsched_workloads-201962a1f021be1b.d: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libbbsched_workloads-201962a1f021be1b.rlib: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/libbbsched_workloads-201962a1f021be1b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dag.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/estimates.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/job.rs:
crates/workloads/src/swf.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/system.rs:
crates/workloads/src/trace.rs:
