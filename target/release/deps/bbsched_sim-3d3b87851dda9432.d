/root/repo/target/release/deps/bbsched_sim-3d3b87851dda9432.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/libbbsched_sim-3d3b87851dda9432.rlib: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

/root/repo/target/release/deps/libbbsched_sim-3d3b87851dda9432.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backfill.rs:
crates/sim/src/base_sched.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/observer.rs:
crates/sim/src/profile.rs:
crates/sim/src/queue.rs:
crates/sim/src/record.rs:
crates/sim/src/simulator.rs:
