/root/repo/target/release/deps/estimate_models-3012ecdbb96996fc.d: tests/estimate_models.rs

/root/repo/target/release/deps/estimate_models-3012ecdbb96996fc: tests/estimate_models.rs

tests/estimate_models.rs:
