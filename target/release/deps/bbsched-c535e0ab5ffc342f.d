/root/repo/target/release/deps/bbsched-c535e0ab5ffc342f.d: crates/cli/src/main.rs

/root/repo/target/release/deps/bbsched-c535e0ab5ffc342f: crates/cli/src/main.rs

crates/cli/src/main.rs:
