/root/repo/target/release/deps/bbsched_workloads-d0cc23c480273a59.d: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

/root/repo/target/release/deps/bbsched_workloads-d0cc23c480273a59: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dag.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/estimates.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/job.rs:
crates/workloads/src/swf.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/system.rs:
crates/workloads/src/trace.rs:
