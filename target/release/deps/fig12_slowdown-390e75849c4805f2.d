/root/repo/target/release/deps/fig12_slowdown-390e75849c4805f2.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/release/deps/fig12_slowdown-390e75849c4805f2: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
