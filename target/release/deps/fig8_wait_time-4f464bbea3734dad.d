/root/repo/target/release/deps/fig8_wait_time-4f464bbea3734dad.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/release/deps/fig8_wait_time-4f464bbea3734dad: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
