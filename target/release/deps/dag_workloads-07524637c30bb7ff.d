/root/repo/target/release/deps/dag_workloads-07524637c30bb7ff.d: tests/dag_workloads.rs

/root/repo/target/release/deps/dag_workloads-07524637c30bb7ff: tests/dag_workloads.rs

tests/dag_workloads.rs:
