/root/repo/target/release/deps/fig13_kiviat-47974919507c52ae.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/release/deps/fig13_kiviat-47974919507c52ae: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
