/root/repo/target/release/deps/table2_workloads-6e7f1a3c46944503.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/release/deps/table2_workloads-6e7f1a3c46944503: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
