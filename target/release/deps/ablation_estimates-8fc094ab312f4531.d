/root/repo/target/release/deps/ablation_estimates-8fc094ab312f4531.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/release/deps/ablation_estimates-8fc094ab312f4531: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
