/root/repo/target/release/deps/bbsched_bench-2c8a1df351e349c4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbbsched_bench-2c8a1df351e349c4.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbbsched_bench-2c8a1df351e349c4.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
