/root/repo/target/release/deps/table3_window_sensitivity-609bc0479d43444d.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/release/deps/table3_window_sensitivity-609bc0479d43444d: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
