/root/repo/target/release/deps/proptest_workloads-3d33dfb0a4331981.d: crates/workloads/tests/proptest_workloads.rs

/root/repo/target/release/deps/proptest_workloads-3d33dfb0a4331981: crates/workloads/tests/proptest_workloads.rs

crates/workloads/tests/proptest_workloads.rs:
