/root/repo/target/release/deps/fig14_ssd_case_study-2090cc2df6b2f64c.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/release/deps/fig14_ssd_case_study-2090cc2df6b2f64c: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
