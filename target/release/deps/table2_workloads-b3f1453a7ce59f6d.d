/root/repo/target/release/deps/table2_workloads-b3f1453a7ce59f6d.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/release/deps/table2_workloads-b3f1453a7ce59f6d: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
