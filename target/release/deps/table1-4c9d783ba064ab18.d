/root/repo/target/release/deps/table1-4c9d783ba064ab18.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4c9d783ba064ab18: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
