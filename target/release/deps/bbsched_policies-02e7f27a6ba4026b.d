/root/repo/target/release/deps/bbsched_policies-02e7f27a6ba4026b.d: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

/root/repo/target/release/deps/bbsched_policies-02e7f27a6ba4026b: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

crates/policies/src/lib.rs:
crates/policies/src/adaptive.rs:
crates/policies/src/bbsched.rs:
crates/policies/src/bin_packing.rs:
crates/policies/src/constrained.rs:
crates/policies/src/kind.rs:
crates/policies/src/naive.rs:
crates/policies/src/weighted.rs:
