/root/repo/target/release/deps/fig2_window_time-66bc37b45b43dbd0.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/release/deps/fig2_window_time-66bc37b45b43dbd0: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
