/root/repo/target/release/deps/bbsched_metrics-db3256e893aefeda.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/release/deps/libbbsched_metrics-db3256e893aefeda.rlib: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/release/deps/libbbsched_metrics-db3256e893aefeda.rmeta: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/live.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
