/root/repo/target/release/deps/fig9_wait_by_size-bae2f9b915786b1a.d: crates/bench/src/bin/fig9_wait_by_size.rs

/root/repo/target/release/deps/fig9_wait_by_size-bae2f9b915786b1a: crates/bench/src/bin/fig9_wait_by_size.rs

crates/bench/src/bin/fig9_wait_by_size.rs:
