/root/repo/target/release/deps/fig4_g_p_sweep-0281cdd24b537e54.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/release/deps/fig4_g_p_sweep-0281cdd24b537e54: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
