/root/repo/target/release/deps/bbsched_policies-f38d2e7224a213b0.d: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

/root/repo/target/release/deps/libbbsched_policies-f38d2e7224a213b0.rlib: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

/root/repo/target/release/deps/libbbsched_policies-f38d2e7224a213b0.rmeta: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

crates/policies/src/lib.rs:
crates/policies/src/adaptive.rs:
crates/policies/src/bbsched.rs:
crates/policies/src/bin_packing.rs:
crates/policies/src/constrained.rs:
crates/policies/src/kind.rs:
crates/policies/src/naive.rs:
crates/policies/src/weighted.rs:
