/root/repo/target/release/deps/fig5_bb_histograms-6237d5f0829370f2.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/release/deps/fig5_bb_histograms-6237d5f0829370f2: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
