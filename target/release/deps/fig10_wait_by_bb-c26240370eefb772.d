/root/repo/target/release/deps/fig10_wait_by_bb-c26240370eefb772.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/release/deps/fig10_wait_by_bb-c26240370eefb772: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
