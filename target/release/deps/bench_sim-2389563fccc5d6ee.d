/root/repo/target/release/deps/bench_sim-2389563fccc5d6ee.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/release/deps/bench_sim-2389563fccc5d6ee: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
