/root/repo/target/release/deps/proptest_core-62e607893bce7f03.d: crates/core/tests/proptest_core.rs

/root/repo/target/release/deps/proptest_core-62e607893bce7f03: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
