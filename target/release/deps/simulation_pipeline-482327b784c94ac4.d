/root/repo/target/release/deps/simulation_pipeline-482327b784c94ac4.d: tests/simulation_pipeline.rs

/root/repo/target/release/deps/simulation_pipeline-482327b784c94ac4: tests/simulation_pipeline.rs

tests/simulation_pipeline.rs:
