/root/repo/target/release/deps/ablation_seed_stability-33bcf33e082901ad.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/release/deps/ablation_seed_stability-33bcf33e082901ad: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
