/root/repo/target/release/deps/golden_equivalence-ddcce25272838715.d: crates/sim/tests/golden_equivalence.rs

/root/repo/target/release/deps/golden_equivalence-ddcce25272838715: crates/sim/tests/golden_equivalence.rs

crates/sim/tests/golden_equivalence.rs:
