/root/repo/target/release/deps/ablation_seed_stability-ac9f6a78b25b0142.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/release/deps/ablation_seed_stability-ac9f6a78b25b0142: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
