/root/repo/target/release/deps/ablation_decision_rules-057329b138b2e07c.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/release/deps/ablation_decision_rules-057329b138b2e07c: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
