/root/repo/target/release/deps/fig11_wait_by_runtime-346a4a8554d5fa59.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/release/deps/fig11_wait_by_runtime-346a4a8554d5fa59: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
