/root/repo/target/release/deps/fig12_slowdown-5319f4778db9e38e.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/release/deps/fig12_slowdown-5319f4778db9e38e: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
