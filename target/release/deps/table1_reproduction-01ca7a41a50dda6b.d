/root/repo/target/release/deps/table1_reproduction-01ca7a41a50dda6b.d: tests/table1_reproduction.rs

/root/repo/target/release/deps/table1_reproduction-01ca7a41a50dda6b: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
