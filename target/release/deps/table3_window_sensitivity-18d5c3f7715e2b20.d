/root/repo/target/release/deps/table3_window_sensitivity-18d5c3f7715e2b20.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/release/deps/table3_window_sensitivity-18d5c3f7715e2b20: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
