/root/repo/target/release/deps/bbsched-92b001cbb8334151.d: src/lib.rs

/root/repo/target/release/deps/bbsched-92b001cbb8334151: src/lib.rs

src/lib.rs:
