/root/repo/target/release/deps/fig4_g_p_sweep-adaceb42546cd8af.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/release/deps/fig4_g_p_sweep-adaceb42546cd8af: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
