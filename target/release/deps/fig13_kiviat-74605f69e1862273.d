/root/repo/target/release/deps/fig13_kiviat-74605f69e1862273.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/release/deps/fig13_kiviat-74605f69e1862273: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
