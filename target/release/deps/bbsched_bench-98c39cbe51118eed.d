/root/repo/target/release/deps/bbsched_bench-98c39cbe51118eed.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/release/deps/bbsched_bench-98c39cbe51118eed: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
