/root/repo/target/release/deps/bbsched-1a0b0a9b9948eabe.d: src/lib.rs

/root/repo/target/release/deps/libbbsched-1a0b0a9b9948eabe.rlib: src/lib.rs

/root/repo/target/release/deps/libbbsched-1a0b0a9b9948eabe.rmeta: src/lib.rs

src/lib.rs:
