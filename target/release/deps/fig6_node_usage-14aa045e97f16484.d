/root/repo/target/release/deps/fig6_node_usage-14aa045e97f16484.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/release/deps/fig6_node_usage-14aa045e97f16484: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
