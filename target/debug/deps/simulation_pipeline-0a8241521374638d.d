/root/repo/target/debug/deps/simulation_pipeline-0a8241521374638d.d: tests/simulation_pipeline.rs

/root/repo/target/debug/deps/libsimulation_pipeline-0a8241521374638d.rmeta: tests/simulation_pipeline.rs

tests/simulation_pipeline.rs:
