/root/repo/target/debug/deps/proptest_core-0853efd32b5858b8.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/proptest_core-0853efd32b5858b8: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
