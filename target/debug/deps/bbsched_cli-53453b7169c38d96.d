/root/repo/target/debug/deps/bbsched_cli-53453b7169c38d96.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/bbsched_cli-53453b7169c38d96: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
