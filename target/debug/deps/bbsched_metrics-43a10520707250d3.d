/root/repo/target/debug/deps/bbsched_metrics-43a10520707250d3.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/debug/deps/libbbsched_metrics-43a10520707250d3.rmeta: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
