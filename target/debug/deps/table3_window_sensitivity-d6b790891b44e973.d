/root/repo/target/debug/deps/table3_window_sensitivity-d6b790891b44e973.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/debug/deps/table3_window_sensitivity-d6b790891b44e973: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
