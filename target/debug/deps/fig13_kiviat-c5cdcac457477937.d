/root/repo/target/debug/deps/fig13_kiviat-c5cdcac457477937.d: crates/bench/src/bin/fig13_kiviat.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_kiviat-c5cdcac457477937.rmeta: crates/bench/src/bin/fig13_kiviat.rs Cargo.toml

crates/bench/src/bin/fig13_kiviat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
