/root/repo/target/debug/deps/fig11_wait_by_runtime-af3ba141599a5475.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/debug/deps/libfig11_wait_by_runtime-af3ba141599a5475.rmeta: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
