/root/repo/target/debug/deps/solver_time-46fef01ef0b04d10.d: crates/bench/benches/solver_time.rs

/root/repo/target/debug/deps/libsolver_time-46fef01ef0b04d10.rmeta: crates/bench/benches/solver_time.rs

crates/bench/benches/solver_time.rs:
