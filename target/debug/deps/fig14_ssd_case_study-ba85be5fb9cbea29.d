/root/repo/target/debug/deps/fig14_ssd_case_study-ba85be5fb9cbea29.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/debug/deps/libfig14_ssd_case_study-ba85be5fb9cbea29.rmeta: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
