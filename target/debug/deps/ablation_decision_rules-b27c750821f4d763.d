/root/repo/target/debug/deps/ablation_decision_rules-b27c750821f4d763.d: crates/bench/src/bin/ablation_decision_rules.rs Cargo.toml

/root/repo/target/debug/deps/libablation_decision_rules-b27c750821f4d763.rmeta: crates/bench/src/bin/ablation_decision_rules.rs Cargo.toml

crates/bench/src/bin/ablation_decision_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
