/root/repo/target/debug/deps/bench_sim-5922efce209cd4c3.d: crates/bench/src/bin/bench_sim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim-5922efce209cd4c3.rmeta: crates/bench/src/bin/bench_sim.rs Cargo.toml

crates/bench/src/bin/bench_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
