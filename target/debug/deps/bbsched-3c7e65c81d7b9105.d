/root/repo/target/debug/deps/bbsched-3c7e65c81d7b9105.d: src/lib.rs

/root/repo/target/debug/deps/libbbsched-3c7e65c81d7b9105.rmeta: src/lib.rs

src/lib.rs:
