/root/repo/target/debug/deps/ablation_seed_stability-c78e1aea388228be.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/debug/deps/ablation_seed_stability-c78e1aea388228be: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
