/root/repo/target/debug/deps/dag_workloads-6dc8757b9f5189b0.d: tests/dag_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libdag_workloads-6dc8757b9f5189b0.rmeta: tests/dag_workloads.rs Cargo.toml

tests/dag_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
