/root/repo/target/debug/deps/fig12_slowdown-742aecbbb1cff4a1.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/debug/deps/libfig12_slowdown-742aecbbb1cff4a1.rmeta: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
