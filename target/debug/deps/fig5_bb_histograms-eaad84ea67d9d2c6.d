/root/repo/target/debug/deps/fig5_bb_histograms-eaad84ea67d9d2c6.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/debug/deps/libfig5_bb_histograms-eaad84ea67d9d2c6.rmeta: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
