/root/repo/target/debug/deps/bbsched_bench-c51e828610524a4c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbbsched_bench-c51e828610524a4c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbbsched_bench-c51e828610524a4c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
