/root/repo/target/debug/deps/fig8_wait_time-024f814d7d6979a0.d: crates/bench/src/bin/fig8_wait_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_wait_time-024f814d7d6979a0.rmeta: crates/bench/src/bin/fig8_wait_time.rs Cargo.toml

crates/bench/src/bin/fig8_wait_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
