/root/repo/target/debug/deps/table2_workloads-93e2bbe91e94e44f.d: crates/bench/src/bin/table2_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_workloads-93e2bbe91e94e44f.rmeta: crates/bench/src/bin/table2_workloads.rs Cargo.toml

crates/bench/src/bin/table2_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
