/root/repo/target/debug/deps/fig13_kiviat-08e2f010dfadc11b.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/debug/deps/fig13_kiviat-08e2f010dfadc11b: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
