/root/repo/target/debug/deps/ablation_estimates-02bcd1bdaced99be.d: crates/bench/src/bin/ablation_estimates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_estimates-02bcd1bdaced99be.rmeta: crates/bench/src/bin/ablation_estimates.rs Cargo.toml

crates/bench/src/bin/ablation_estimates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
