/root/repo/target/debug/deps/fig10_wait_by_bb-e9765452de36275d.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/debug/deps/libfig10_wait_by_bb-e9765452de36275d.rmeta: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
