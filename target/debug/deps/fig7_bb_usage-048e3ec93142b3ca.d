/root/repo/target/debug/deps/fig7_bb_usage-048e3ec93142b3ca.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/debug/deps/libfig7_bb_usage-048e3ec93142b3ca.rmeta: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
