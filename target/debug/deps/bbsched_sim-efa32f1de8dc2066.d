/root/repo/target/debug/deps/bbsched_sim-efa32f1de8dc2066.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_sim-efa32f1de8dc2066.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backfill.rs crates/sim/src/base_sched.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/observer.rs crates/sim/src/profile.rs crates/sim/src/queue.rs crates/sim/src/record.rs crates/sim/src/simulator.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backfill.rs:
crates/sim/src/base_sched.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/observer.rs:
crates/sim/src/profile.rs:
crates/sim/src/queue.rs:
crates/sim/src/record.rs:
crates/sim/src/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
