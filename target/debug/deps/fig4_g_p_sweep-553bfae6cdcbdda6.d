/root/repo/target/debug/deps/fig4_g_p_sweep-553bfae6cdcbdda6.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/debug/deps/fig4_g_p_sweep-553bfae6cdcbdda6: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
