/root/repo/target/debug/deps/golden_equivalence-0f823cff6e66867c.d: crates/sim/tests/golden_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_equivalence-0f823cff6e66867c.rmeta: crates/sim/tests/golden_equivalence.rs Cargo.toml

crates/sim/tests/golden_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
