/root/repo/target/debug/deps/property_invariants-28d1793e2311beae.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-28d1793e2311beae: tests/property_invariants.rs

tests/property_invariants.rs:
