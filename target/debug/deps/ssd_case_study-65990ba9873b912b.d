/root/repo/target/debug/deps/ssd_case_study-65990ba9873b912b.d: tests/ssd_case_study.rs

/root/repo/target/debug/deps/ssd_case_study-65990ba9873b912b: tests/ssd_case_study.rs

tests/ssd_case_study.rs:
