/root/repo/target/debug/deps/engine_invariants-725c0c8a0b35598a.d: crates/sim/tests/engine_invariants.rs

/root/repo/target/debug/deps/engine_invariants-725c0c8a0b35598a: crates/sim/tests/engine_invariants.rs

crates/sim/tests/engine_invariants.rs:
