/root/repo/target/debug/deps/fig5_bb_histograms-6982f40c5bf1d06d.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/debug/deps/fig5_bb_histograms-6982f40c5bf1d06d: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
