/root/repo/target/debug/deps/bbsched_cli-8826e69666020553.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libbbsched_cli-8826e69666020553.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
