/root/repo/target/debug/deps/fig10_wait_by_bb-0b6e8b69aa434eac.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/debug/deps/fig10_wait_by_bb-0b6e8b69aa434eac: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
