/root/repo/target/debug/deps/bbsched_metrics-b66d11023f8bb050.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/debug/deps/bbsched_metrics-b66d11023f8bb050: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
