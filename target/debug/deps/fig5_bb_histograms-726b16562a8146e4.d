/root/repo/target/debug/deps/fig5_bb_histograms-726b16562a8146e4.d: crates/bench/src/bin/fig5_bb_histograms.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bb_histograms-726b16562a8146e4.rmeta: crates/bench/src/bin/fig5_bb_histograms.rs Cargo.toml

crates/bench/src/bin/fig5_bb_histograms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
