/root/repo/target/debug/deps/bbsched-43f96ef54870e6b6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libbbsched-43f96ef54870e6b6.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
