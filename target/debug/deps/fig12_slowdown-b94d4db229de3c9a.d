/root/repo/target/debug/deps/fig12_slowdown-b94d4db229de3c9a.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/debug/deps/libfig12_slowdown-b94d4db229de3c9a.rmeta: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
