/root/repo/target/debug/deps/pareto_ops-20f7d1bb3f7c350c.d: crates/bench/benches/pareto_ops.rs

/root/repo/target/debug/deps/libpareto_ops-20f7d1bb3f7c350c.rmeta: crates/bench/benches/pareto_ops.rs

crates/bench/benches/pareto_ops.rs:
