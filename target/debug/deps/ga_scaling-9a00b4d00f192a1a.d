/root/repo/target/debug/deps/ga_scaling-9a00b4d00f192a1a.d: crates/bench/benches/ga_scaling.rs

/root/repo/target/debug/deps/libga_scaling-9a00b4d00f192a1a.rmeta: crates/bench/benches/ga_scaling.rs

crates/bench/benches/ga_scaling.rs:
