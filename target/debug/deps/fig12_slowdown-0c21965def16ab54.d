/root/repo/target/debug/deps/fig12_slowdown-0c21965def16ab54.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/debug/deps/fig12_slowdown-0c21965def16ab54: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
