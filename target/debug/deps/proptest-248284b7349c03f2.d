/root/repo/target/debug/deps/proptest-248284b7349c03f2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-248284b7349c03f2.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-248284b7349c03f2.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
