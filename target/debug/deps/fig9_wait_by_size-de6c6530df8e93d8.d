/root/repo/target/debug/deps/fig9_wait_by_size-de6c6530df8e93d8.d: crates/bench/src/bin/fig9_wait_by_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_wait_by_size-de6c6530df8e93d8.rmeta: crates/bench/src/bin/fig9_wait_by_size.rs Cargo.toml

crates/bench/src/bin/fig9_wait_by_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
