/root/repo/target/debug/deps/serde_json-e2aa8a7fd8f3b6f9.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e2aa8a7fd8f3b6f9.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e2aa8a7fd8f3b6f9.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
