/root/repo/target/debug/deps/fig4_g_p_sweep-269382f23bebb068.d: crates/bench/src/bin/fig4_g_p_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_g_p_sweep-269382f23bebb068.rmeta: crates/bench/src/bin/fig4_g_p_sweep.rs Cargo.toml

crates/bench/src/bin/fig4_g_p_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
