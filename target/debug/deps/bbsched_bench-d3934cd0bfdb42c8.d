/root/repo/target/debug/deps/bbsched_bench-d3934cd0bfdb42c8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbbsched_bench-d3934cd0bfdb42c8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
