/root/repo/target/debug/deps/fig14_ssd_case_study-4be0f492fbe1b9a9.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/debug/deps/libfig14_ssd_case_study-4be0f492fbe1b9a9.rmeta: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
