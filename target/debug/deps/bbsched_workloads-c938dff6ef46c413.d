/root/repo/target/debug/deps/bbsched_workloads-c938dff6ef46c413.d: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_workloads-c938dff6ef46c413.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/dag.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/estimates.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/job.rs:
crates/workloads/src/swf.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/system.rs:
crates/workloads/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
