/root/repo/target/debug/deps/fig11_wait_by_runtime-393ada145a375357.d: crates/bench/src/bin/fig11_wait_by_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_wait_by_runtime-393ada145a375357.rmeta: crates/bench/src/bin/fig11_wait_by_runtime.rs Cargo.toml

crates/bench/src/bin/fig11_wait_by_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
