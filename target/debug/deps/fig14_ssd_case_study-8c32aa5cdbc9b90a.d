/root/repo/target/debug/deps/fig14_ssd_case_study-8c32aa5cdbc9b90a.d: crates/bench/src/bin/fig14_ssd_case_study.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_ssd_case_study-8c32aa5cdbc9b90a.rmeta: crates/bench/src/bin/fig14_ssd_case_study.rs Cargo.toml

crates/bench/src/bin/fig14_ssd_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
