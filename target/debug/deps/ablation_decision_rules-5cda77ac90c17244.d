/root/repo/target/debug/deps/ablation_decision_rules-5cda77ac90c17244.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/debug/deps/libablation_decision_rules-5cda77ac90c17244.rmeta: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
