/root/repo/target/debug/deps/fig8_wait_time-234693b7ed74d098.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/debug/deps/libfig8_wait_time-234693b7ed74d098.rmeta: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
