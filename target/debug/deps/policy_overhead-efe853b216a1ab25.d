/root/repo/target/debug/deps/policy_overhead-efe853b216a1ab25.d: crates/bench/benches/policy_overhead.rs

/root/repo/target/debug/deps/policy_overhead-efe853b216a1ab25: crates/bench/benches/policy_overhead.rs

crates/bench/benches/policy_overhead.rs:
