/root/repo/target/debug/deps/solver_time-52bee449ea772bac.d: crates/bench/benches/solver_time.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_time-52bee449ea772bac.rmeta: crates/bench/benches/solver_time.rs Cargo.toml

crates/bench/benches/solver_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
