/root/repo/target/debug/deps/fig4_g_p_sweep-1b13de133229704f.d: crates/bench/src/bin/fig4_g_p_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_g_p_sweep-1b13de133229704f.rmeta: crates/bench/src/bin/fig4_g_p_sweep.rs Cargo.toml

crates/bench/src/bin/fig4_g_p_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
