/root/repo/target/debug/deps/table1_reproduction-3e23d8f956ea3c9a.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/libtable1_reproduction-3e23d8f956ea3c9a.rmeta: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
