/root/repo/target/debug/deps/ga_scaling-31df352d6555ed73.d: crates/bench/benches/ga_scaling.rs

/root/repo/target/debug/deps/ga_scaling-31df352d6555ed73: crates/bench/benches/ga_scaling.rs

crates/bench/benches/ga_scaling.rs:
