/root/repo/target/debug/deps/bbsched_workloads-8034e0395ddf2c9d.d: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libbbsched_workloads-8034e0395ddf2c9d.rlib: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

/root/repo/target/debug/deps/libbbsched_workloads-8034e0395ddf2c9d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dag.rs crates/workloads/src/dist.rs crates/workloads/src/estimates.rs crates/workloads/src/generator.rs crates/workloads/src/job.rs crates/workloads/src/swf.rs crates/workloads/src/synthetic.rs crates/workloads/src/system.rs crates/workloads/src/trace.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dag.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/estimates.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/job.rs:
crates/workloads/src/swf.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/system.rs:
crates/workloads/src/trace.rs:
