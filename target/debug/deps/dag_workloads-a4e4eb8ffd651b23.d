/root/repo/target/debug/deps/dag_workloads-a4e4eb8ffd651b23.d: tests/dag_workloads.rs

/root/repo/target/debug/deps/libdag_workloads-a4e4eb8ffd651b23.rmeta: tests/dag_workloads.rs

tests/dag_workloads.rs:
