/root/repo/target/debug/deps/proptest_core-acc71bf41f5c32db.d: crates/core/tests/proptest_core.rs

/root/repo/target/debug/deps/libproptest_core-acc71bf41f5c32db.rmeta: crates/core/tests/proptest_core.rs

crates/core/tests/proptest_core.rs:
