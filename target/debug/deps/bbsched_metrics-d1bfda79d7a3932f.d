/root/repo/target/debug/deps/bbsched_metrics-d1bfda79d7a3932f.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/debug/deps/bbsched_metrics-d1bfda79d7a3932f: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/live.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
