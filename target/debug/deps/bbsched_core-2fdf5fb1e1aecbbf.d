/root/repo/target/debug/deps/bbsched_core-2fdf5fb1e1aecbbf.d: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/window.rs

/root/repo/target/debug/deps/libbbsched_core-2fdf5fb1e1aecbbf.rmeta: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/chromosome.rs:
crates/core/src/decision.rs:
crates/core/src/exhaustive.rs:
crates/core/src/ga.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/pools.rs:
crates/core/src/problem.rs:
crates/core/src/quality.rs:
crates/core/src/window.rs:
