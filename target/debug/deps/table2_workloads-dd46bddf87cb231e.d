/root/repo/target/debug/deps/table2_workloads-dd46bddf87cb231e.d: crates/bench/src/bin/table2_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_workloads-dd46bddf87cb231e.rmeta: crates/bench/src/bin/table2_workloads.rs Cargo.toml

crates/bench/src/bin/table2_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
