/root/repo/target/debug/deps/fig12_slowdown-80b9d9e01225a440.d: crates/bench/src/bin/fig12_slowdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_slowdown-80b9d9e01225a440.rmeta: crates/bench/src/bin/fig12_slowdown.rs Cargo.toml

crates/bench/src/bin/fig12_slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
