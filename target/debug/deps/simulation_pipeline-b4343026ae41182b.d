/root/repo/target/debug/deps/simulation_pipeline-b4343026ae41182b.d: tests/simulation_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_pipeline-b4343026ae41182b.rmeta: tests/simulation_pipeline.rs Cargo.toml

tests/simulation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
