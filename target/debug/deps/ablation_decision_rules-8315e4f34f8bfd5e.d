/root/repo/target/debug/deps/ablation_decision_rules-8315e4f34f8bfd5e.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/debug/deps/ablation_decision_rules-8315e4f34f8bfd5e: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
