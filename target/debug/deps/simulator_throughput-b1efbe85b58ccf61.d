/root/repo/target/debug/deps/simulator_throughput-b1efbe85b58ccf61.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/debug/deps/simulator_throughput-b1efbe85b58ccf61: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
