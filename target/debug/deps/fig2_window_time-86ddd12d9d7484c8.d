/root/repo/target/debug/deps/fig2_window_time-86ddd12d9d7484c8.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/debug/deps/fig2_window_time-86ddd12d9d7484c8: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
