/root/repo/target/debug/deps/table1-574d58ba377f0cc3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-574d58ba377f0cc3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
