/root/repo/target/debug/deps/simulator_throughput-d4b3d27267dbfc04.d: crates/bench/benches/simulator_throughput.rs

/root/repo/target/debug/deps/libsimulator_throughput-d4b3d27267dbfc04.rmeta: crates/bench/benches/simulator_throughput.rs

crates/bench/benches/simulator_throughput.rs:
