/root/repo/target/debug/deps/rand-a998070fa7b0b263.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a998070fa7b0b263.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
