/root/repo/target/debug/deps/fig10_wait_by_bb-9b0d6d8b52cdcea7.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/debug/deps/fig10_wait_by_bb-9b0d6d8b52cdcea7: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
