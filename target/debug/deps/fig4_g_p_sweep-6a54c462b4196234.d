/root/repo/target/debug/deps/fig4_g_p_sweep-6a54c462b4196234.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/debug/deps/libfig4_g_p_sweep-6a54c462b4196234.rmeta: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
