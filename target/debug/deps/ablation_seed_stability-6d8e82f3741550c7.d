/root/repo/target/debug/deps/ablation_seed_stability-6d8e82f3741550c7.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/debug/deps/libablation_seed_stability-6d8e82f3741550c7.rmeta: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
