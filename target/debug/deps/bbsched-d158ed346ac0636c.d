/root/repo/target/debug/deps/bbsched-d158ed346ac0636c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched-d158ed346ac0636c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
