/root/repo/target/debug/deps/fig2_window_time-1da24a84f1de6c54.d: crates/bench/src/bin/fig2_window_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_window_time-1da24a84f1de6c54.rmeta: crates/bench/src/bin/fig2_window_time.rs Cargo.toml

crates/bench/src/bin/fig2_window_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
