/root/repo/target/debug/deps/fig9_wait_by_size-aaeffee16fb8e0e3.d: crates/bench/src/bin/fig9_wait_by_size.rs

/root/repo/target/debug/deps/fig9_wait_by_size-aaeffee16fb8e0e3: crates/bench/src/bin/fig9_wait_by_size.rs

crates/bench/src/bin/fig9_wait_by_size.rs:
