/root/repo/target/debug/deps/fig7_bb_usage-ed906e3cef001104.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/debug/deps/fig7_bb_usage-ed906e3cef001104: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
