/root/repo/target/debug/deps/bbsched-a8aecae78555e8ef.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched-a8aecae78555e8ef.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
