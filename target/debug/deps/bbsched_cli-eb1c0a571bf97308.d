/root/repo/target/debug/deps/bbsched_cli-eb1c0a571bf97308.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libbbsched_cli-eb1c0a571bf97308.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libbbsched_cli-eb1c0a571bf97308.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
