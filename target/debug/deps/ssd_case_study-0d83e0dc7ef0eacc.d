/root/repo/target/debug/deps/ssd_case_study-0d83e0dc7ef0eacc.d: tests/ssd_case_study.rs Cargo.toml

/root/repo/target/debug/deps/libssd_case_study-0d83e0dc7ef0eacc.rmeta: tests/ssd_case_study.rs Cargo.toml

tests/ssd_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
