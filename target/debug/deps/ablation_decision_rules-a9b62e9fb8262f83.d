/root/repo/target/debug/deps/ablation_decision_rules-a9b62e9fb8262f83.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/debug/deps/libablation_decision_rules-a9b62e9fb8262f83.rmeta: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
