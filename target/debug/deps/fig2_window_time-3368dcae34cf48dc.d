/root/repo/target/debug/deps/fig2_window_time-3368dcae34cf48dc.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/debug/deps/libfig2_window_time-3368dcae34cf48dc.rmeta: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
