/root/repo/target/debug/deps/proptest_workloads-26a62bc007019847.d: crates/workloads/tests/proptest_workloads.rs

/root/repo/target/debug/deps/proptest_workloads-26a62bc007019847: crates/workloads/tests/proptest_workloads.rs

crates/workloads/tests/proptest_workloads.rs:
