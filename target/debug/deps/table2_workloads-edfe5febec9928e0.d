/root/repo/target/debug/deps/table2_workloads-edfe5febec9928e0.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/libtable2_workloads-edfe5febec9928e0.rmeta: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
