/root/repo/target/debug/deps/estimate_models-1df856665ae91623.d: tests/estimate_models.rs

/root/repo/target/debug/deps/estimate_models-1df856665ae91623: tests/estimate_models.rs

tests/estimate_models.rs:
