/root/repo/target/debug/deps/fig7_bb_usage-c0a51d258022e8a5.d: crates/bench/src/bin/fig7_bb_usage.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_bb_usage-c0a51d258022e8a5.rmeta: crates/bench/src/bin/fig7_bb_usage.rs Cargo.toml

crates/bench/src/bin/fig7_bb_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
