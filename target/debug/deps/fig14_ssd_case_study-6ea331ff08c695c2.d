/root/repo/target/debug/deps/fig14_ssd_case_study-6ea331ff08c695c2.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/debug/deps/fig14_ssd_case_study-6ea331ff08c695c2: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
