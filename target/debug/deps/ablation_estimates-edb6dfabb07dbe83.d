/root/repo/target/debug/deps/ablation_estimates-edb6dfabb07dbe83.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/debug/deps/ablation_estimates-edb6dfabb07dbe83: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
