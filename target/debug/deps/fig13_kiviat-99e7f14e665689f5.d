/root/repo/target/debug/deps/fig13_kiviat-99e7f14e665689f5.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/debug/deps/libfig13_kiviat-99e7f14e665689f5.rmeta: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
