/root/repo/target/debug/deps/fig8_wait_time-bf32a0e0a07a12e2.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/debug/deps/libfig8_wait_time-bf32a0e0a07a12e2.rmeta: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
