/root/repo/target/debug/deps/table2_workloads-06dc8a74612d6f2c.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/libtable2_workloads-06dc8a74612d6f2c.rmeta: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
