/root/repo/target/debug/deps/bbsched-42268d2bbd4fd92f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/bbsched-42268d2bbd4fd92f: crates/cli/src/main.rs

crates/cli/src/main.rs:
