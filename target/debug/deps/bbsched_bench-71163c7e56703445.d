/root/repo/target/debug/deps/bbsched_bench-71163c7e56703445.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/bbsched_bench-71163c7e56703445: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
