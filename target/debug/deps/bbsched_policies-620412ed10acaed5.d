/root/repo/target/debug/deps/bbsched_policies-620412ed10acaed5.d: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

/root/repo/target/debug/deps/libbbsched_policies-620412ed10acaed5.rmeta: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs

crates/policies/src/lib.rs:
crates/policies/src/adaptive.rs:
crates/policies/src/bbsched.rs:
crates/policies/src/bin_packing.rs:
crates/policies/src/constrained.rs:
crates/policies/src/kind.rs:
crates/policies/src/naive.rs:
crates/policies/src/weighted.rs:
