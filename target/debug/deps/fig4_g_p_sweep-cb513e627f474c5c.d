/root/repo/target/debug/deps/fig4_g_p_sweep-cb513e627f474c5c.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/debug/deps/libfig4_g_p_sweep-cb513e627f474c5c.rmeta: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
