/root/repo/target/debug/deps/bbsched-a2d4d2e57b8a1d13.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched-a2d4d2e57b8a1d13.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
