/root/repo/target/debug/deps/fig6_node_usage-e6b9cc0c5bd9c07f.d: crates/bench/src/bin/fig6_node_usage.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_node_usage-e6b9cc0c5bd9c07f.rmeta: crates/bench/src/bin/fig6_node_usage.rs Cargo.toml

crates/bench/src/bin/fig6_node_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
