/root/repo/target/debug/deps/table2_workloads-20179ebb804757ee.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/table2_workloads-20179ebb804757ee: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
