/root/repo/target/debug/deps/ablation_seed_stability-7634e08f7e02f2ff.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/debug/deps/libablation_seed_stability-7634e08f7e02f2ff.rmeta: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
