/root/repo/target/debug/deps/fig11_wait_by_runtime-2304f996af67a894.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/debug/deps/libfig11_wait_by_runtime-2304f996af67a894.rmeta: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
