/root/repo/target/debug/deps/policy_overhead-534c3a16335e584c.d: crates/bench/benches/policy_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_overhead-534c3a16335e584c.rmeta: crates/bench/benches/policy_overhead.rs Cargo.toml

crates/bench/benches/policy_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
