/root/repo/target/debug/deps/ablation_estimates-13d60eba36f4e89b.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/debug/deps/libablation_estimates-13d60eba36f4e89b.rmeta: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
