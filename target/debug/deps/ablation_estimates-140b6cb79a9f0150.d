/root/repo/target/debug/deps/ablation_estimates-140b6cb79a9f0150.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/debug/deps/ablation_estimates-140b6cb79a9f0150: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
