/root/repo/target/debug/deps/proptest_workloads-95c53e41551a1820.d: crates/workloads/tests/proptest_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_workloads-95c53e41551a1820.rmeta: crates/workloads/tests/proptest_workloads.rs Cargo.toml

crates/workloads/tests/proptest_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
