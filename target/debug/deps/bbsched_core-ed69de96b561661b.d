/root/repo/target/debug/deps/bbsched_core-ed69de96b561661b.d: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_core-ed69de96b561661b.rmeta: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chromosome.rs:
crates/core/src/decision.rs:
crates/core/src/exhaustive.rs:
crates/core/src/ga.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/pools.rs:
crates/core/src/problem.rs:
crates/core/src/quality.rs:
crates/core/src/resource.rs:
crates/core/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
