/root/repo/target/debug/deps/engine_invariants-9f70a62f66779265.d: crates/sim/tests/engine_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libengine_invariants-9f70a62f66779265.rmeta: crates/sim/tests/engine_invariants.rs Cargo.toml

crates/sim/tests/engine_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
