/root/repo/target/debug/deps/fig8_wait_time-13e7d185f8c3610e.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/debug/deps/fig8_wait_time-13e7d185f8c3610e: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
