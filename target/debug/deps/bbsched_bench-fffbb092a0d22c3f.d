/root/repo/target/debug/deps/bbsched_bench-fffbb092a0d22c3f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbbsched_bench-fffbb092a0d22c3f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
