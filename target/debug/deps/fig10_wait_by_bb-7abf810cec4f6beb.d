/root/repo/target/debug/deps/fig10_wait_by_bb-7abf810cec4f6beb.d: crates/bench/src/bin/fig10_wait_by_bb.rs

/root/repo/target/debug/deps/libfig10_wait_by_bb-7abf810cec4f6beb.rmeta: crates/bench/src/bin/fig10_wait_by_bb.rs

crates/bench/src/bin/fig10_wait_by_bb.rs:
