/root/repo/target/debug/deps/fig6_node_usage-982329b7195964e0.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/debug/deps/libfig6_node_usage-982329b7195964e0.rmeta: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
