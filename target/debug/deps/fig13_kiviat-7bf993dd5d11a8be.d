/root/repo/target/debug/deps/fig13_kiviat-7bf993dd5d11a8be.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/debug/deps/fig13_kiviat-7bf993dd5d11a8be: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
