/root/repo/target/debug/deps/bbsched_policies-8b8e2771e79092e2.d: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_policies-8b8e2771e79092e2.rmeta: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs Cargo.toml

crates/policies/src/lib.rs:
crates/policies/src/adaptive.rs:
crates/policies/src/bbsched.rs:
crates/policies/src/bin_packing.rs:
crates/policies/src/constrained.rs:
crates/policies/src/kind.rs:
crates/policies/src/naive.rs:
crates/policies/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
