/root/repo/target/debug/deps/fig4_g_p_sweep-f77bcd419496f230.d: crates/bench/src/bin/fig4_g_p_sweep.rs

/root/repo/target/debug/deps/fig4_g_p_sweep-f77bcd419496f230: crates/bench/src/bin/fig4_g_p_sweep.rs

crates/bench/src/bin/fig4_g_p_sweep.rs:
