/root/repo/target/debug/deps/estimate_models-096faa3b217c4e53.d: tests/estimate_models.rs

/root/repo/target/debug/deps/libestimate_models-096faa3b217c4e53.rmeta: tests/estimate_models.rs

tests/estimate_models.rs:
