/root/repo/target/debug/deps/ablation_decision_rules-f12bd53c21cb3a2b.d: crates/bench/src/bin/ablation_decision_rules.rs Cargo.toml

/root/repo/target/debug/deps/libablation_decision_rules-f12bd53c21cb3a2b.rmeta: crates/bench/src/bin/ablation_decision_rules.rs Cargo.toml

crates/bench/src/bin/ablation_decision_rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
