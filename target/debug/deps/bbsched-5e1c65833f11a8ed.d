/root/repo/target/debug/deps/bbsched-5e1c65833f11a8ed.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libbbsched-5e1c65833f11a8ed.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
