/root/repo/target/debug/deps/bbsched_bench-73c276c7c12b5e67.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_bench-73c276c7c12b5e67.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/figures.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/figures.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
