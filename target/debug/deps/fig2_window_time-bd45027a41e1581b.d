/root/repo/target/debug/deps/fig2_window_time-bd45027a41e1581b.d: crates/bench/src/bin/fig2_window_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_window_time-bd45027a41e1581b.rmeta: crates/bench/src/bin/fig2_window_time.rs Cargo.toml

crates/bench/src/bin/fig2_window_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
