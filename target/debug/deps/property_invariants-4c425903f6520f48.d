/root/repo/target/debug/deps/property_invariants-4c425903f6520f48.d: tests/property_invariants.rs

/root/repo/target/debug/deps/libproperty_invariants-4c425903f6520f48.rmeta: tests/property_invariants.rs

tests/property_invariants.rs:
