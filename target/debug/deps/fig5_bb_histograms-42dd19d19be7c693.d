/root/repo/target/debug/deps/fig5_bb_histograms-42dd19d19be7c693.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/debug/deps/libfig5_bb_histograms-42dd19d19be7c693.rmeta: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
