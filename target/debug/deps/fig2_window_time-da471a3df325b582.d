/root/repo/target/debug/deps/fig2_window_time-da471a3df325b582.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/debug/deps/libfig2_window_time-da471a3df325b582.rmeta: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
