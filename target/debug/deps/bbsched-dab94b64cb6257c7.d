/root/repo/target/debug/deps/bbsched-dab94b64cb6257c7.d: src/lib.rs

/root/repo/target/debug/deps/bbsched-dab94b64cb6257c7: src/lib.rs

src/lib.rs:
