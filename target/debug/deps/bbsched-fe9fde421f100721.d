/root/repo/target/debug/deps/bbsched-fe9fde421f100721.d: src/lib.rs

/root/repo/target/debug/deps/libbbsched-fe9fde421f100721.rmeta: src/lib.rs

src/lib.rs:
