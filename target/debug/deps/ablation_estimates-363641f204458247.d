/root/repo/target/debug/deps/ablation_estimates-363641f204458247.d: crates/bench/src/bin/ablation_estimates.rs

/root/repo/target/debug/deps/libablation_estimates-363641f204458247.rmeta: crates/bench/src/bin/ablation_estimates.rs

crates/bench/src/bin/ablation_estimates.rs:
