/root/repo/target/debug/deps/fig10_wait_by_bb-67649a1bd110c93f.d: crates/bench/src/bin/fig10_wait_by_bb.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_wait_by_bb-67649a1bd110c93f.rmeta: crates/bench/src/bin/fig10_wait_by_bb.rs Cargo.toml

crates/bench/src/bin/fig10_wait_by_bb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
