/root/repo/target/debug/deps/bbsched-66c96c42c3d1d887.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/bbsched-66c96c42c3d1d887: crates/cli/src/main.rs

crates/cli/src/main.rs:
