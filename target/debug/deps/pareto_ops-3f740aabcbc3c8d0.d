/root/repo/target/debug/deps/pareto_ops-3f740aabcbc3c8d0.d: crates/bench/benches/pareto_ops.rs Cargo.toml

/root/repo/target/debug/deps/libpareto_ops-3f740aabcbc3c8d0.rmeta: crates/bench/benches/pareto_ops.rs Cargo.toml

crates/bench/benches/pareto_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
