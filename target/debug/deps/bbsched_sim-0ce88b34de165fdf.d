/root/repo/target/debug/deps/bbsched_sim-0ce88b34de165fdf.d: crates/sim/src/lib.rs crates/sim/src/base_sched.rs crates/sim/src/profile.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

/root/repo/target/debug/deps/libbbsched_sim-0ce88b34de165fdf.rmeta: crates/sim/src/lib.rs crates/sim/src/base_sched.rs crates/sim/src/profile.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/base_sched.rs:
crates/sim/src/profile.rs:
crates/sim/src/record.rs:
crates/sim/src/simulator.rs:
