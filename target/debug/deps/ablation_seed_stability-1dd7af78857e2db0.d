/root/repo/target/debug/deps/ablation_seed_stability-1dd7af78857e2db0.d: crates/bench/src/bin/ablation_seed_stability.rs Cargo.toml

/root/repo/target/debug/deps/libablation_seed_stability-1dd7af78857e2db0.rmeta: crates/bench/src/bin/ablation_seed_stability.rs Cargo.toml

crates/bench/src/bin/ablation_seed_stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
