/root/repo/target/debug/deps/bbsched_metrics-5c3b471f5fba8513.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/debug/deps/libbbsched_metrics-5c3b471f5fba8513.rlib: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

/root/repo/target/debug/deps/libbbsched_metrics-5c3b471f5fba8513.rmeta: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/live.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
