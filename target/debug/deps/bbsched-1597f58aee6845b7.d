/root/repo/target/debug/deps/bbsched-1597f58aee6845b7.d: src/lib.rs

/root/repo/target/debug/deps/libbbsched-1597f58aee6845b7.rlib: src/lib.rs

/root/repo/target/debug/deps/libbbsched-1597f58aee6845b7.rmeta: src/lib.rs

src/lib.rs:
