/root/repo/target/debug/deps/fig11_wait_by_runtime-451a0c0ae64e0d27.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/debug/deps/fig11_wait_by_runtime-451a0c0ae64e0d27: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
