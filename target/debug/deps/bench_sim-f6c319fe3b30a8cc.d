/root/repo/target/debug/deps/bench_sim-f6c319fe3b30a8cc.d: crates/bench/src/bin/bench_sim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sim-f6c319fe3b30a8cc.rmeta: crates/bench/src/bin/bench_sim.rs Cargo.toml

crates/bench/src/bin/bench_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
