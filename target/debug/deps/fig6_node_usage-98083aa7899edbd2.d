/root/repo/target/debug/deps/fig6_node_usage-98083aa7899edbd2.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/debug/deps/fig6_node_usage-98083aa7899edbd2: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
