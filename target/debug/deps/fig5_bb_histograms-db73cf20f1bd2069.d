/root/repo/target/debug/deps/fig5_bb_histograms-db73cf20f1bd2069.d: crates/bench/src/bin/fig5_bb_histograms.rs

/root/repo/target/debug/deps/fig5_bb_histograms-db73cf20f1bd2069: crates/bench/src/bin/fig5_bb_histograms.rs

crates/bench/src/bin/fig5_bb_histograms.rs:
