/root/repo/target/debug/deps/table3_window_sensitivity-8df23b5382af4992.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/debug/deps/libtable3_window_sensitivity-8df23b5382af4992.rmeta: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
