/root/repo/target/debug/deps/fig13_kiviat-13855fbbf06fdf3b.d: crates/bench/src/bin/fig13_kiviat.rs

/root/repo/target/debug/deps/libfig13_kiviat-13855fbbf06fdf3b.rmeta: crates/bench/src/bin/fig13_kiviat.rs

crates/bench/src/bin/fig13_kiviat.rs:
