/root/repo/target/debug/deps/table1-5d7b83140c886e6f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5d7b83140c886e6f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
