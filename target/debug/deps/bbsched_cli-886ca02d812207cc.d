/root/repo/target/debug/deps/bbsched_cli-886ca02d812207cc.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libbbsched_cli-886ca02d812207cc.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
