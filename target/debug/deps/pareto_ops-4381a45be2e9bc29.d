/root/repo/target/debug/deps/pareto_ops-4381a45be2e9bc29.d: crates/bench/benches/pareto_ops.rs

/root/repo/target/debug/deps/pareto_ops-4381a45be2e9bc29: crates/bench/benches/pareto_ops.rs

crates/bench/benches/pareto_ops.rs:
