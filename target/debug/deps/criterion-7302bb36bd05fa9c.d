/root/repo/target/debug/deps/criterion-7302bb36bd05fa9c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7302bb36bd05fa9c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
