/root/repo/target/debug/deps/fig7_bb_usage-e38074905d7e99a9.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/debug/deps/fig7_bb_usage-e38074905d7e99a9: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
