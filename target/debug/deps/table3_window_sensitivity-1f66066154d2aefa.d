/root/repo/target/debug/deps/table3_window_sensitivity-1f66066154d2aefa.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/debug/deps/table3_window_sensitivity-1f66066154d2aefa: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
