/root/repo/target/debug/deps/estimate_models-f075beb17e298838.d: tests/estimate_models.rs Cargo.toml

/root/repo/target/debug/deps/libestimate_models-f075beb17e298838.rmeta: tests/estimate_models.rs Cargo.toml

tests/estimate_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
