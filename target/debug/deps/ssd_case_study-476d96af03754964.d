/root/repo/target/debug/deps/ssd_case_study-476d96af03754964.d: tests/ssd_case_study.rs

/root/repo/target/debug/deps/libssd_case_study-476d96af03754964.rmeta: tests/ssd_case_study.rs

tests/ssd_case_study.rs:
