/root/repo/target/debug/deps/fig6_node_usage-41c609479402b89d.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/debug/deps/libfig6_node_usage-41c609479402b89d.rmeta: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
