/root/repo/target/debug/deps/table2_workloads-e4e8f675b6d2d913.d: crates/bench/src/bin/table2_workloads.rs

/root/repo/target/debug/deps/table2_workloads-e4e8f675b6d2d913: crates/bench/src/bin/table2_workloads.rs

crates/bench/src/bin/table2_workloads.rs:
