/root/repo/target/debug/deps/fig9_wait_by_size-a42f83ae893cdcb0.d: crates/bench/src/bin/fig9_wait_by_size.rs

/root/repo/target/debug/deps/fig9_wait_by_size-a42f83ae893cdcb0: crates/bench/src/bin/fig9_wait_by_size.rs

crates/bench/src/bin/fig9_wait_by_size.rs:
