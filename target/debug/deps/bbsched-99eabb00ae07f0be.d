/root/repo/target/debug/deps/bbsched-99eabb00ae07f0be.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched-99eabb00ae07f0be.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
