/root/repo/target/debug/deps/ablation_decision_rules-141f4af43358feba.d: crates/bench/src/bin/ablation_decision_rules.rs

/root/repo/target/debug/deps/ablation_decision_rules-141f4af43358feba: crates/bench/src/bin/ablation_decision_rules.rs

crates/bench/src/bin/ablation_decision_rules.rs:
