/root/repo/target/debug/deps/bbsched_core-dd616e9a05846c4b.d: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs

/root/repo/target/debug/deps/bbsched_core-dd616e9a05846c4b: crates/core/src/lib.rs crates/core/src/chromosome.rs crates/core/src/decision.rs crates/core/src/exhaustive.rs crates/core/src/ga.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/pools.rs crates/core/src/problem.rs crates/core/src/quality.rs crates/core/src/resource.rs crates/core/src/window.rs

crates/core/src/lib.rs:
crates/core/src/chromosome.rs:
crates/core/src/decision.rs:
crates/core/src/exhaustive.rs:
crates/core/src/ga.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/pools.rs:
crates/core/src/problem.rs:
crates/core/src/quality.rs:
crates/core/src/resource.rs:
crates/core/src/window.rs:
