/root/repo/target/debug/deps/table3_window_sensitivity-3c0fc66fb2716aa5.d: crates/bench/src/bin/table3_window_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_window_sensitivity-3c0fc66fb2716aa5.rmeta: crates/bench/src/bin/table3_window_sensitivity.rs Cargo.toml

crates/bench/src/bin/table3_window_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
