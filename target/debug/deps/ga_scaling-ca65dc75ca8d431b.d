/root/repo/target/debug/deps/ga_scaling-ca65dc75ca8d431b.d: crates/bench/benches/ga_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libga_scaling-ca65dc75ca8d431b.rmeta: crates/bench/benches/ga_scaling.rs Cargo.toml

crates/bench/benches/ga_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
