/root/repo/target/debug/deps/fig11_wait_by_runtime-527e9295dcba765c.d: crates/bench/src/bin/fig11_wait_by_runtime.rs

/root/repo/target/debug/deps/fig11_wait_by_runtime-527e9295dcba765c: crates/bench/src/bin/fig11_wait_by_runtime.rs

crates/bench/src/bin/fig11_wait_by_runtime.rs:
