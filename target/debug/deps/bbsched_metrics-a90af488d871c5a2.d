/root/repo/target/debug/deps/bbsched_metrics-a90af488d871c5a2.d: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_metrics-a90af488d871c5a2.rmeta: crates/metrics/src/lib.rs crates/metrics/src/breakdown.rs crates/metrics/src/kiviat.rs crates/metrics/src/live.rs crates/metrics/src/stats.rs crates/metrics/src/summary.rs crates/metrics/src/usage.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/breakdown.rs:
crates/metrics/src/kiviat.rs:
crates/metrics/src/live.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
