/root/repo/target/debug/deps/table1-4c5b8f6faf0195e7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4c5b8f6faf0195e7.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
