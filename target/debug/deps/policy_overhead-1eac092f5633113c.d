/root/repo/target/debug/deps/policy_overhead-1eac092f5633113c.d: crates/bench/benches/policy_overhead.rs

/root/repo/target/debug/deps/libpolicy_overhead-1eac092f5633113c.rmeta: crates/bench/benches/policy_overhead.rs

crates/bench/benches/policy_overhead.rs:
