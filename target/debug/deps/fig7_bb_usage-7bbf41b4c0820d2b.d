/root/repo/target/debug/deps/fig7_bb_usage-7bbf41b4c0820d2b.d: crates/bench/src/bin/fig7_bb_usage.rs

/root/repo/target/debug/deps/libfig7_bb_usage-7bbf41b4c0820d2b.rmeta: crates/bench/src/bin/fig7_bb_usage.rs

crates/bench/src/bin/fig7_bb_usage.rs:
