/root/repo/target/debug/deps/bbsched_cli-53696f81fca4ccec.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_cli-53696f81fca4ccec.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
