/root/repo/target/debug/deps/fig12_slowdown-c6174b02783fd0da.d: crates/bench/src/bin/fig12_slowdown.rs

/root/repo/target/debug/deps/fig12_slowdown-c6174b02783fd0da: crates/bench/src/bin/fig12_slowdown.rs

crates/bench/src/bin/fig12_slowdown.rs:
