/root/repo/target/debug/deps/fig14_ssd_case_study-fcca50815014917b.d: crates/bench/src/bin/fig14_ssd_case_study.rs

/root/repo/target/debug/deps/fig14_ssd_case_study-fcca50815014917b: crates/bench/src/bin/fig14_ssd_case_study.rs

crates/bench/src/bin/fig14_ssd_case_study.rs:
