/root/repo/target/debug/deps/bench_sim-c568c571aa6ff822.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/debug/deps/bench_sim-c568c571aa6ff822: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
