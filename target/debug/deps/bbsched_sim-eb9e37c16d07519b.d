/root/repo/target/debug/deps/bbsched_sim-eb9e37c16d07519b.d: crates/sim/src/lib.rs crates/sim/src/base_sched.rs crates/sim/src/profile.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

/root/repo/target/debug/deps/libbbsched_sim-eb9e37c16d07519b.rmeta: crates/sim/src/lib.rs crates/sim/src/base_sched.rs crates/sim/src/profile.rs crates/sim/src/record.rs crates/sim/src/simulator.rs

crates/sim/src/lib.rs:
crates/sim/src/base_sched.rs:
crates/sim/src/profile.rs:
crates/sim/src/record.rs:
crates/sim/src/simulator.rs:
