/root/repo/target/debug/deps/table3_window_sensitivity-9176834a84d62230.d: crates/bench/src/bin/table3_window_sensitivity.rs

/root/repo/target/debug/deps/libtable3_window_sensitivity-9176834a84d62230.rmeta: crates/bench/src/bin/table3_window_sensitivity.rs

crates/bench/src/bin/table3_window_sensitivity.rs:
