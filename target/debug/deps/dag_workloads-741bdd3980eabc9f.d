/root/repo/target/debug/deps/dag_workloads-741bdd3980eabc9f.d: tests/dag_workloads.rs

/root/repo/target/debug/deps/dag_workloads-741bdd3980eabc9f: tests/dag_workloads.rs

tests/dag_workloads.rs:
