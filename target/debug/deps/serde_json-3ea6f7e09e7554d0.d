/root/repo/target/debug/deps/serde_json-3ea6f7e09e7554d0.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3ea6f7e09e7554d0.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
