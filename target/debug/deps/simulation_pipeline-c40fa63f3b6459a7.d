/root/repo/target/debug/deps/simulation_pipeline-c40fa63f3b6459a7.d: tests/simulation_pipeline.rs

/root/repo/target/debug/deps/simulation_pipeline-c40fa63f3b6459a7: tests/simulation_pipeline.rs

tests/simulation_pipeline.rs:
