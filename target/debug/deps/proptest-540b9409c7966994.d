/root/repo/target/debug/deps/proptest-540b9409c7966994.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-540b9409c7966994.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
