/root/repo/target/debug/deps/proptest_workloads-86f3a5a1786c362e.d: crates/workloads/tests/proptest_workloads.rs

/root/repo/target/debug/deps/libproptest_workloads-86f3a5a1786c362e.rmeta: crates/workloads/tests/proptest_workloads.rs

crates/workloads/tests/proptest_workloads.rs:
