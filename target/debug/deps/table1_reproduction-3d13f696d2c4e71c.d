/root/repo/target/debug/deps/table1_reproduction-3d13f696d2c4e71c.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/table1_reproduction-3d13f696d2c4e71c: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
