/root/repo/target/debug/deps/fig6_node_usage-89dc4f93efd7a94a.d: crates/bench/src/bin/fig6_node_usage.rs

/root/repo/target/debug/deps/fig6_node_usage-89dc4f93efd7a94a: crates/bench/src/bin/fig6_node_usage.rs

crates/bench/src/bin/fig6_node_usage.rs:
