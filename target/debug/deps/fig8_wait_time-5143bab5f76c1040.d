/root/repo/target/debug/deps/fig8_wait_time-5143bab5f76c1040.d: crates/bench/src/bin/fig8_wait_time.rs

/root/repo/target/debug/deps/fig8_wait_time-5143bab5f76c1040: crates/bench/src/bin/fig8_wait_time.rs

crates/bench/src/bin/fig8_wait_time.rs:
