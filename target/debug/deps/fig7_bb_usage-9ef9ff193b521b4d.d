/root/repo/target/debug/deps/fig7_bb_usage-9ef9ff193b521b4d.d: crates/bench/src/bin/fig7_bb_usage.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_bb_usage-9ef9ff193b521b4d.rmeta: crates/bench/src/bin/fig7_bb_usage.rs Cargo.toml

crates/bench/src/bin/fig7_bb_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
