/root/repo/target/debug/deps/bbsched_policies-f7fe4f05f7c95eff.d: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libbbsched_policies-f7fe4f05f7c95eff.rmeta: crates/policies/src/lib.rs crates/policies/src/adaptive.rs crates/policies/src/bbsched.rs crates/policies/src/bin_packing.rs crates/policies/src/constrained.rs crates/policies/src/kind.rs crates/policies/src/naive.rs crates/policies/src/weighted.rs Cargo.toml

crates/policies/src/lib.rs:
crates/policies/src/adaptive.rs:
crates/policies/src/bbsched.rs:
crates/policies/src/bin_packing.rs:
crates/policies/src/constrained.rs:
crates/policies/src/kind.rs:
crates/policies/src/naive.rs:
crates/policies/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
