/root/repo/target/debug/deps/fig12_slowdown-a0398c4023f398d0.d: crates/bench/src/bin/fig12_slowdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_slowdown-a0398c4023f398d0.rmeta: crates/bench/src/bin/fig12_slowdown.rs Cargo.toml

crates/bench/src/bin/fig12_slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
