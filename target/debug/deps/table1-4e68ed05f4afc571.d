/root/repo/target/debug/deps/table1-4e68ed05f4afc571.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4e68ed05f4afc571.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
