/root/repo/target/debug/deps/fig2_window_time-732ee556d0b0993d.d: crates/bench/src/bin/fig2_window_time.rs

/root/repo/target/debug/deps/fig2_window_time-732ee556d0b0993d: crates/bench/src/bin/fig2_window_time.rs

crates/bench/src/bin/fig2_window_time.rs:
