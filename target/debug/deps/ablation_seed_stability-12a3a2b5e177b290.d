/root/repo/target/debug/deps/ablation_seed_stability-12a3a2b5e177b290.d: crates/bench/src/bin/ablation_seed_stability.rs

/root/repo/target/debug/deps/ablation_seed_stability-12a3a2b5e177b290: crates/bench/src/bin/ablation_seed_stability.rs

crates/bench/src/bin/ablation_seed_stability.rs:
