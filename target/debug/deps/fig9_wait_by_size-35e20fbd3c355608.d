/root/repo/target/debug/deps/fig9_wait_by_size-35e20fbd3c355608.d: crates/bench/src/bin/fig9_wait_by_size.rs

/root/repo/target/debug/deps/libfig9_wait_by_size-35e20fbd3c355608.rmeta: crates/bench/src/bin/fig9_wait_by_size.rs

crates/bench/src/bin/fig9_wait_by_size.rs:
