/root/repo/target/debug/deps/solver_time-70f4318f1143e040.d: crates/bench/benches/solver_time.rs

/root/repo/target/debug/deps/solver_time-70f4318f1143e040: crates/bench/benches/solver_time.rs

crates/bench/benches/solver_time.rs:
