/root/repo/target/debug/deps/golden_equivalence-e1e58d3d7ae094f7.d: crates/sim/tests/golden_equivalence.rs

/root/repo/target/debug/deps/golden_equivalence-e1e58d3d7ae094f7: crates/sim/tests/golden_equivalence.rs

crates/sim/tests/golden_equivalence.rs:
