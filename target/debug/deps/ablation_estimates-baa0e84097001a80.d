/root/repo/target/debug/deps/ablation_estimates-baa0e84097001a80.d: crates/bench/src/bin/ablation_estimates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_estimates-baa0e84097001a80.rmeta: crates/bench/src/bin/ablation_estimates.rs Cargo.toml

crates/bench/src/bin/ablation_estimates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
