/root/repo/target/debug/deps/bench_sim-24a8e1c81e5eb448.d: crates/bench/src/bin/bench_sim.rs

/root/repo/target/debug/deps/bench_sim-24a8e1c81e5eb448: crates/bench/src/bin/bench_sim.rs

crates/bench/src/bin/bench_sim.rs:
