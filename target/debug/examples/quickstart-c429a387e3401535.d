/root/repo/target/debug/examples/quickstart-c429a387e3401535.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c429a387e3401535: examples/quickstart.rs

examples/quickstart.rs:
