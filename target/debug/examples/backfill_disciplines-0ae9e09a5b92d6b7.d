/root/repo/target/debug/examples/backfill_disciplines-0ae9e09a5b92d6b7.d: examples/backfill_disciplines.rs

/root/repo/target/debug/examples/backfill_disciplines-0ae9e09a5b92d6b7: examples/backfill_disciplines.rs

examples/backfill_disciplines.rs:
