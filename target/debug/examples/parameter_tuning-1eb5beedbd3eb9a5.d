/root/repo/target/debug/examples/parameter_tuning-1eb5beedbd3eb9a5.d: examples/parameter_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libparameter_tuning-1eb5beedbd3eb9a5.rmeta: examples/parameter_tuning.rs Cargo.toml

examples/parameter_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
