/root/repo/target/debug/examples/backfill_disciplines-4aec713ce10cb44b.d: examples/backfill_disciplines.rs

/root/repo/target/debug/examples/libbackfill_disciplines-4aec713ce10cb44b.rmeta: examples/backfill_disciplines.rs

examples/backfill_disciplines.rs:
