/root/repo/target/debug/examples/trace_simulation-8d784d1e22972a9d.d: examples/trace_simulation.rs

/root/repo/target/debug/examples/libtrace_simulation-8d784d1e22972a9d.rmeta: examples/trace_simulation.rs

examples/trace_simulation.rs:
