/root/repo/target/debug/examples/parameter_tuning-b448ea5e5069bbc0.d: examples/parameter_tuning.rs

/root/repo/target/debug/examples/parameter_tuning-b448ea5e5069bbc0: examples/parameter_tuning.rs

examples/parameter_tuning.rs:
