/root/repo/target/debug/examples/extend_resources-14f3b709be0b56c9.d: examples/extend_resources.rs

/root/repo/target/debug/examples/extend_resources-14f3b709be0b56c9: examples/extend_resources.rs

examples/extend_resources.rs:
