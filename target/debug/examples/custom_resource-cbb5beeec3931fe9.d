/root/repo/target/debug/examples/custom_resource-cbb5beeec3931fe9.d: examples/custom_resource.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_resource-cbb5beeec3931fe9.rmeta: examples/custom_resource.rs Cargo.toml

examples/custom_resource.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
