/root/repo/target/debug/examples/backfill_disciplines-22a017a81e5b7a8e.d: examples/backfill_disciplines.rs Cargo.toml

/root/repo/target/debug/examples/libbackfill_disciplines-22a017a81e5b7a8e.rmeta: examples/backfill_disciplines.rs Cargo.toml

examples/backfill_disciplines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
