/root/repo/target/debug/examples/extend_resources-104408efd0a8aa63.d: examples/extend_resources.rs Cargo.toml

/root/repo/target/debug/examples/libextend_resources-104408efd0a8aa63.rmeta: examples/extend_resources.rs Cargo.toml

examples/extend_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
