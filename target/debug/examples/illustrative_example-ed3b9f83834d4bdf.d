/root/repo/target/debug/examples/illustrative_example-ed3b9f83834d4bdf.d: examples/illustrative_example.rs

/root/repo/target/debug/examples/libillustrative_example-ed3b9f83834d4bdf.rmeta: examples/illustrative_example.rs

examples/illustrative_example.rs:
