/root/repo/target/debug/examples/illustrative_example-6a6eb4010a6dccdb.d: examples/illustrative_example.rs Cargo.toml

/root/repo/target/debug/examples/libillustrative_example-6a6eb4010a6dccdb.rmeta: examples/illustrative_example.rs Cargo.toml

examples/illustrative_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
