/root/repo/target/debug/examples/illustrative_example-0ee376f59b6ff81d.d: examples/illustrative_example.rs

/root/repo/target/debug/examples/illustrative_example-0ee376f59b6ff81d: examples/illustrative_example.rs

examples/illustrative_example.rs:
