/root/repo/target/debug/examples/parameter_tuning-aefd8a945f21499a.d: examples/parameter_tuning.rs

/root/repo/target/debug/examples/libparameter_tuning-aefd8a945f21499a.rmeta: examples/parameter_tuning.rs

examples/parameter_tuning.rs:
