/root/repo/target/debug/examples/trace_simulation-ded372833bc4ab9e.d: examples/trace_simulation.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_simulation-ded372833bc4ab9e.rmeta: examples/trace_simulation.rs Cargo.toml

examples/trace_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
