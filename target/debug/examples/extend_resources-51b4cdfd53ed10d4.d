/root/repo/target/debug/examples/extend_resources-51b4cdfd53ed10d4.d: examples/extend_resources.rs

/root/repo/target/debug/examples/libextend_resources-51b4cdfd53ed10d4.rmeta: examples/extend_resources.rs

examples/extend_resources.rs:
