/root/repo/target/debug/examples/custom_resource-7190fad25a4d29f2.d: examples/custom_resource.rs

/root/repo/target/debug/examples/custom_resource-7190fad25a4d29f2: examples/custom_resource.rs

examples/custom_resource.rs:
