/root/repo/target/debug/examples/quickstart-63a1bcfc892b339f.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-63a1bcfc892b339f.rmeta: examples/quickstart.rs

examples/quickstart.rs:
