/root/repo/target/debug/examples/trace_simulation-56d25d5824530219.d: examples/trace_simulation.rs

/root/repo/target/debug/examples/trace_simulation-56d25d5824530219: examples/trace_simulation.rs

examples/trace_simulation.rs:
