//! Backfilling: the engine's hole-filling phase, as a strategy family.
//!
//! The paper's experiments run **EASY** backfilling (§2.1: reserve for the
//! first blocked job only); the simulator also ships **conservative**
//! backfilling (every blocked candidate gets a reservation on a
//! future-availability profile). Both are implementations of
//! [`BackfillStrategy`], invoked by the engine once per scheduling
//! invocation after starvation forcing and policy selection; plan-based
//! disciplines in the style of Kopanski & Rzadca can slot in as further
//! implementations without touching the event loop.
//!
//! A strategy sees the invocation through a [`BackfillCtx`]: the waiting
//! candidates (already scoped to window or queue by the engine), the
//! blocked reservation head if the starvation phase produced one, fit
//! queries against the live pool, and [`BackfillCtx::start`] to dispatch a
//! job. `start(idx, credited)` distinguishes jobs the strategy *credits*
//! as backfilled from queue-head starts that merely consumed freed
//! capacity — the paper's `backfilled` accounting counts only the former.
//!
//! This module also owns the EASY reservation math
//! ([`shadow_and_leftover`]) and the piecewise-constant
//! [`AvailabilityProfile`] behind conservative backfilling. Both plan
//! against the allocation ledger's incrementally maintained
//! estimated-completion order ([`AllocLedger::release_order`]) instead of
//! rebuilding and re-sorting the running list per call, which is what made
//! the monolithic loop's backfill phase quadratic on busy systems.

use crate::alloc::AllocLedger;
use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;

/// Tolerance for "finishes before the shadow time" comparisons.
pub(crate) const TIME_EPS: f64 = 1e-6;

/// EASY reservation math: the *shadow time* at which `head` could start if
/// nothing new ran past it (walltime estimates of running jobs, as a real
/// scheduler would use), and the *leftover* resources at that instant
/// beyond the head's claim. Anything fitting inside the leftover can run
/// arbitrarily long without delaying the head.
pub fn shadow_and_leftover(ledger: &AllocLedger, head: &JobDemand, now: f64) -> (f64, PoolState) {
    let pool = ledger.pool();
    if pool.fits(head) {
        let mut leftover = *pool;
        let _ = leftover.alloc(head);
        return (now, leftover);
    }
    // Walk the release schedule in (est_end, index) order — maintained
    // incrementally by the ledger, so no per-call rebuild or sort.
    let mut future = *pool;
    for (_, r) in ledger.release_order() {
        future.free(&r.demand, r.assignment);
        if future.fits(head) {
            let mut leftover = future;
            let _ = leftover.alloc(head);
            return (r.est_end, leftover);
        }
    }
    // The head can never fit — impossible once demands are clamped to
    // capacity; be safe in release builds anyway.
    debug_assert!(false, "unschedulable head survived clamping");
    (f64::INFINITY, PoolState::cpu_bb(0, 0.0))
}

/// One invocation's view of the engine, handed to a [`BackfillStrategy`].
///
/// Constructed by the engine; the mutable surface is exactly
/// [`BackfillCtx::start`], so a strategy cannot corrupt accounting — every
/// dispatch goes through the allocation ledger and the observers.
pub struct BackfillCtx<'e, 'o> {
    pub(crate) now: f64,
    pub(crate) waiting: &'e [usize],
    pub(crate) blocked_head: Option<usize>,
    pub(crate) max_scan: usize,
    pub(crate) core: &'e mut crate::engine::Core<'o>,
}

impl<'e> BackfillCtx<'e, '_> {
    /// The invocation's simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Candidate job indices in priority order (window- or queue-scoped
    /// per [`crate::BackfillScope`], jobs already started this invocation
    /// filtered out at scoping time).
    pub fn waiting(&self) -> &'e [usize] {
        self.waiting
    }

    /// The starved job that could not start and owns the reservation, if
    /// the starvation phase produced one.
    pub fn blocked_head(&self) -> Option<usize> {
        self.blocked_head
    }

    /// Maximum candidates the strategy may examine.
    pub fn max_scan(&self) -> usize {
        self.max_scan
    }

    /// Whether job `idx` already started in this invocation.
    pub fn is_started(&self, idx: usize) -> bool {
        self.core.started.contains(&idx)
    }

    /// The capacity-clamped demand of job `idx`.
    pub fn demand(&self, idx: usize) -> JobDemand {
        self.core.demands[idx]
    }

    /// The requested walltime of job `idx` (seconds, as submitted).
    pub fn walltime(&self, idx: usize) -> f64 {
        self.core.jobs[idx].walltime
    }

    /// The live free state.
    pub fn pool(&self) -> &PoolState {
        self.core.ledger.pool()
    }

    /// Whether job `idx` fits the free state right now.
    pub fn fits_now(&self, idx: usize) -> bool {
        self.core.ledger.fits(&self.core.demands[idx])
    }

    /// Shadow time and leftover state for `head_idx` (see
    /// [`shadow_and_leftover`]).
    pub fn shadow_and_leftover(&self, head_idx: usize) -> (f64, PoolState) {
        shadow_and_leftover(&self.core.ledger, &self.core.demands[head_idx], self.now)
    }

    /// The running jobs' `(est_end, demand, assignment)` release schedule
    /// in deterministic `(est_end, index)` order — what
    /// [`AvailabilityProfile::new`] consumes.
    pub fn release_schedule(&self) -> Vec<(f64, JobDemand, NodeAssignment)> {
        self.core.ledger.release_schedule()
    }

    /// Starts job `idx` now with [`crate::StartReason::Backfill`].
    ///
    /// `credited` controls the run's `backfilled` counter: pass `true`
    /// for genuine backfill moves (the job jumped ahead using a hole),
    /// `false` for queue-head starts that simply consumed freed capacity.
    ///
    /// # Panics
    /// Panics if the job does not fit the free state (strategies must
    /// check first) or already started.
    pub fn start(&mut self, idx: usize, credited: bool) {
        self.core.start_job(idx, self.now, crate::record::StartReason::Backfill);
        if credited {
            self.core.backfill_credit += 1;
        }
    }
}

/// A pluggable backfilling discipline.
///
/// Called once per scheduling invocation, after the starvation and policy
/// phases. The strategy may start any not-yet-started candidate from
/// [`BackfillCtx::waiting`] (plus the blocked head), subject to its own
/// no-delay rules; the engine handles all bookkeeping around it.
pub trait BackfillStrategy: Send {
    /// Display name (observer callbacks carry it).
    fn name(&self) -> &'static str;

    /// Runs one backfill pass.
    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>);
}

/// EASY backfilling (§2.1, the paper's choice): reserve for the first
/// blocked job only; a candidate may start now if it finishes before the
/// head's shadow time or fits inside the head's leftover.
#[derive(Clone, Copy, Debug, Default)]
pub struct EasyBackfill;

impl BackfillStrategy for EasyBackfill {
    fn name(&self) -> &'static str {
        "EASY"
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        let waiting = ctx.waiting();
        // Start any fitting head outright (covers policies that left a
        // fitting job behind and the queue-front after backfill frees);
        // stop at the first job that does not fit — it becomes the
        // reservation head. A starved blocked job owns the reservation
        // regardless of queue position.
        let mut head: Option<usize> = None;
        let mut cursor = 0usize;
        while cursor < waiting.len() {
            let idx = waiting[cursor];
            if let Some(b) = ctx.blocked_head() {
                head = Some(b);
                break;
            }
            if ctx.is_started(idx) {
                cursor += 1;
                continue;
            }
            if ctx.fits_now(idx) {
                // Not credited: the queue head starting on freed capacity
                // is ordinary dispatch, not a backfill move.
                ctx.start(idx, false);
                cursor += 1;
            } else {
                head = Some(idx);
                break;
            }
        }

        let Some(head_idx) = head else { return };
        let (shadow, mut leftover) = ctx.shadow_and_leftover(head_idx);
        for (scanned, &idx) in waiting.iter().enumerate() {
            if scanned >= ctx.max_scan() {
                break;
            }
            if ctx.is_started(idx) || idx == head_idx {
                continue;
            }
            let d = ctx.demand(idx);
            if !ctx.pool().fits(&d) {
                continue;
            }
            let ends_before_shadow = ctx.now() + ctx.walltime(idx) <= shadow + TIME_EPS;
            if ends_before_shadow || leftover.fits(&d) {
                if !ends_before_shadow {
                    let _ = leftover.alloc(&d);
                }
                ctx.start(idx, true);
            }
        }
    }
}

/// Conservative backfilling: every blocked candidate receives a
/// reservation on a future-availability profile; a job starts now only if
/// it delays none of the reservations ahead of it. Stronger fairness,
/// fewer backfill opportunities.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConservativeBackfill;

impl BackfillStrategy for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        let mut profile = AvailabilityProfile::new(ctx.now(), *ctx.pool(), ctx.release_schedule());
        // Reservations for everyone; the starved blocked job (if any)
        // reserves first.
        let mut ordered: Vec<usize> = Vec::with_capacity(ctx.waiting().len() + 1);
        if let Some(b) = ctx.blocked_head() {
            ordered.push(b);
        }
        ordered.extend(ctx.waiting().iter().copied().filter(|&i| Some(i) != ctx.blocked_head()));
        for (scanned, idx) in ordered.into_iter().enumerate() {
            if scanned >= ctx.max_scan() {
                break;
            }
            if ctx.is_started(idx) {
                continue;
            }
            let d = ctx.demand(idx);
            let walltime = ctx.walltime(idx).max(1.0);
            let t = profile.earliest_start(&d, ctx.now(), walltime);
            if t <= ctx.now() + TIME_EPS && ctx.pool().fits(&d) {
                ctx.start(idx, true);
                // Consume from the profile's "now" segments too.
                profile.reserve(&d, t, walltime);
            } else if t.is_finite() {
                profile.reserve(&d, t, walltime);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Future resource-availability profiles, the machinery behind conservative
// backfilling (formerly `crate::profile`).
// ---------------------------------------------------------------------------

/// A piecewise-constant view of free resources from "now" to infinity.
///
/// Built from the running jobs' estimated completions and updated as
/// reservations are placed. The profile tracks every resource the pool
/// registers — nodes, shared burst buffer, heterogeneous per-node flavour
/// pools, and any extra pooled resources. Per-node assignments within a
/// future segment use the same greedy smallest-sufficient-flavour rule as
/// live allocation; because reservations are capacity bookkeeping (not
/// placements), per-segment re-assignment is the standard conservative
/// approximation.
///
/// Invariant: `times` is strictly increasing, `times[0]` is the profile's
/// origin ("now"), and `states[i]` holds on `[times[i], times[i+1])`
/// (the last state holds forever).
#[derive(Clone, Debug)]
pub struct AvailabilityProfile {
    times: Vec<f64>,
    states: Vec<PoolState>,
}

impl AvailabilityProfile {
    /// Builds the profile from the current free state and the estimated
    /// completion times of running jobs. `releases` is a list of
    /// `(est_end, demand, assignment)` tuples; order does not matter.
    pub fn new(
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) -> Self {
        let mut rel: Vec<(f64, JobDemand, NodeAssignment)> =
            releases.into_iter().map(|(t, d, asn)| (t.max(now), d, asn)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut times = vec![now];
        let mut states = vec![pool];
        for (t, d, asn) in rel {
            let last = *states.last().expect("profile never empty");
            let mut next = last;
            next.free(&d, asn);
            if (t - *times.last().unwrap()).abs() < 1e-12 {
                *states.last_mut().unwrap() = next;
            } else {
                times.push(t);
                states.push(next);
            }
        }
        Self { times, states }
    }

    /// Number of segments (diagnostic).
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// Free state at time `t` (clamped to the profile's origin).
    pub fn state_at(&self, t: f64) -> PoolState {
        let idx = match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.states[idx]
    }

    /// Whether `d` fits everywhere on `[start, start + duration)`.
    pub fn fits_interval(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        // Check the segment containing `start` and every boundary in range.
        if !self.state_at(start).fits(d) {
            return false;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > start && t < end && !self.states[i].fits(d) {
                return false;
            }
        }
        true
    }

    /// Earliest time `>= from` at which `d` fits for `duration`. Candidate
    /// instants are `from` and the profile's breakpoints (free resources
    /// only ever *increase* at breakpoints built from releases, but
    /// reservations can carve arbitrary shapes, so every breakpoint is
    /// tried). Returns `f64::INFINITY` if it never fits.
    pub fn earliest_start(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        if self.fits_interval(d, from, duration) {
            return from;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > from && self.states[i].fits(d) && self.fits_interval(d, t, duration) {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Carves a reservation for `d` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics (debug) if the demand does not fit the interval.
    pub fn reserve(&mut self, d: &JobDemand, start: f64, duration: f64) {
        debug_assert!(self.fits_interval(d, start, duration), "reserve without fit check");
        let end = start + duration;
        self.split_at(start);
        self.split_at(end);
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= end {
                break;
            }
            let seg_end = self.times.get(i + 1).copied().unwrap_or(f64::INFINITY);
            if seg_end <= start {
                continue;
            }
            // Segment overlaps the reservation: subtract.
            let state = &mut self.states[i];
            debug_assert!(state.fits(d));
            let _ = state.alloc(d);
        }
    }

    /// Ensures `t` is a breakpoint (no-op if it already is or precedes the
    /// origin; infinite times are ignored).
    fn split_at(&mut self, t: f64) {
        if !t.is_finite() || t <= self.times[0] {
            return;
        }
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                let state = self.states[i - 1];
                self.times.insert(i, t);
                self.states.insert(i, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, bb: f64) -> JobDemand {
        JobDemand::cpu_bb(nodes, bb)
    }

    fn release(t: f64, nodes: u32, bb: f64) -> (f64, JobDemand, NodeAssignment) {
        (t, d(nodes, bb), NodeAssignment::two_tier(0, nodes))
    }

    #[test]
    fn shadow_math_uses_ledger_release_order() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        ledger.start(0, d(6, 0.0), 100.0);
        ledger.start(1, d(4, 50.0), 40.0);
        // Head needs 8 nodes: free now 0; at t=40, 4 nodes; at t=100, 10.
        let (shadow, leftover) = shadow_and_leftover(&ledger, &d(8, 0.0), 5.0);
        assert_eq!(shadow, 100.0);
        assert_eq!(leftover.nodes(), 2);
        // Head fits now -> shadow is "now".
        ledger.finish(0);
        let (shadow, _) = shadow_and_leftover(&ledger, &d(5, 0.0), 5.0);
        assert_eq!(shadow, 5.0);
    }

    #[test]
    fn profile_accumulates_releases() {
        let pool = PoolState::cpu_bb(4, 10.0); // 4 free now
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![release(10.0, 4, 20.0), release(20.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 3);
        assert_eq!(p.state_at(0.0).nodes(), 4);
        assert_eq!(p.state_at(10.0).nodes(), 8);
        assert_eq!(p.state_at(25.0).nodes(), 10);
        assert_eq!(p.state_at(25.0).bb_gb(), 30.0);
    }

    #[test]
    fn simultaneous_releases_merge() {
        let p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(0, 0.0),
            vec![release(5.0, 1, 0.0), release(5.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 2);
        assert_eq!(p.state_at(5.0).nodes(), 3);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 6, 0.0)]);
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 100.0), 0.0);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 100.0), 10.0);
        assert_eq!(p.earliest_start(&d(50, 0.0), 0.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn reservation_blocks_the_interval() {
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(4, 10.0), vec![release(10.0, 4, 0.0)]);
        // Reserve all 4 current nodes for [0, 30).
        p.reserve(&d(4, 5.0), 0.0, 30.0);
        assert_eq!(p.state_at(0.0).nodes(), 0);
        assert_eq!(p.state_at(15.0).nodes(), 4, "release at 10 still counted");
        assert_eq!(p.state_at(30.0).nodes(), 8, "reservation ends at 30");
        // A 4-node job now has to wait until t=10.
        assert_eq!(p.earliest_start(&d(4, 0.0), 0.0, 5.0), 10.0);
    }

    #[test]
    fn fits_interval_checks_interior_boundaries() {
        let mut p = AvailabilityProfile::new(0.0, PoolState::cpu_bb(8, 0.0), vec![]);
        // Reservation in the middle of a candidate interval.
        p.reserve(&d(6, 0.0), 10.0, 10.0);
        assert!(p.fits_interval(&d(4, 0.0), 0.0, 10.0));
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 15.0), "collides with [10,20)");
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }

    #[test]
    fn ssd_pools_tracked_through_profile() {
        let pool = PoolState::with_ssd(1, 1, 100.0);
        let big = JobDemand::cpu_bb_ssd(1, 0.0, 200.0);
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![(5.0, JobDemand::cpu_bb_ssd(2, 0.0, 200.0), NodeAssignment::two_tier(0, 2))],
        );
        // One 256 node free now; three at t=5.
        assert!(p.fits_interval(&big, 0.0, 1.0));
        let three = JobDemand::cpu_bb_ssd(3, 0.0, 200.0);
        assert_eq!(p.earliest_start(&three, 0.0, 1.0), 5.0);
    }

    #[test]
    fn conservative_chain_of_reservations() {
        // Classic scenario: 10 nodes; running job frees at t=10.
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 8, 0.0)]);
        // Head job needs 10 nodes -> reserved at t=10 for 20.
        let head = d(10, 0.0);
        let t = p.earliest_start(&head, 0.0, 20.0);
        assert_eq!(t, 10.0);
        p.reserve(&head, t, 20.0);
        // Second job (2 nodes, long): can start now ONLY if it ends by 10.
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 5.0), 0.0);
        assert_eq!(
            p.earliest_start(&d(2, 0.0), 0.0, 50.0),
            30.0,
            "long job must queue behind the head's reservation"
        );
    }
}
