//! Future resource-availability profiles, the machinery behind
//! *conservative* backfilling.
//!
//! EASY backfilling (§2.1, the paper's choice) reserves only for the queue
//! head; conservative backfilling gives **every** waiting job a
//! reservation and lets a candidate start now only if it delays none of
//! them. That requires knowing, for any future instant, how much of each
//! resource is free — a piecewise-constant [`AvailabilityProfile`] built
//! from the running jobs' estimated completions and updated as
//! reservations are placed.
//!
//! The profile tracks every resource the pool registers — nodes, shared
//! burst buffer, heterogeneous per-node flavour pools, and any extra
//! pooled resources. Per-node assignments within a future segment use the
//! same greedy smallest-sufficient-flavour rule as live allocation; because
//! reservations are capacity bookkeeping (not placements), per-segment
//! re-assignment is the standard conservative approximation.

use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;

/// A piecewise-constant view of free resources from "now" to infinity.
///
/// Invariant: `times` is strictly increasing, `times[0]` is the profile's
/// origin ("now"), and `states[i]` holds on `[times[i], times[i+1])`
/// (the last state holds forever).
#[derive(Clone, Debug)]
pub struct AvailabilityProfile {
    times: Vec<f64>,
    states: Vec<PoolState>,
}

impl AvailabilityProfile {
    /// Builds the profile from the current free state and the estimated
    /// completion times of running jobs. `releases` is a list of
    /// `(est_end, demand, assignment)` tuples; order does not matter.
    pub fn new(
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) -> Self {
        let mut rel: Vec<(f64, JobDemand, NodeAssignment)> =
            releases.into_iter().map(|(t, d, asn)| (t.max(now), d, asn)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut times = vec![now];
        let mut states = vec![pool];
        for (t, d, asn) in rel {
            let last = *states.last().expect("profile never empty");
            let mut next = last;
            next.free(&d, asn);
            if (t - *times.last().unwrap()).abs() < 1e-12 {
                *states.last_mut().unwrap() = next;
            } else {
                times.push(t);
                states.push(next);
            }
        }
        Self { times, states }
    }

    /// Number of segments (diagnostic).
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// Free state at time `t` (clamped to the profile's origin).
    pub fn state_at(&self, t: f64) -> PoolState {
        let idx = match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.states[idx]
    }

    /// Whether `d` fits everywhere on `[start, start + duration)`.
    pub fn fits_interval(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        // Check the segment containing `start` and every boundary in range.
        if !self.state_at(start).fits(d) {
            return false;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > start && t < end && !self.states[i].fits(d) {
                return false;
            }
        }
        true
    }

    /// Earliest time `>= from` at which `d` fits for `duration`. Candidate
    /// instants are `from` and the profile's breakpoints (free resources
    /// only ever *increase* at breakpoints built from releases, but
    /// reservations can carve arbitrary shapes, so every breakpoint is
    /// tried). Returns `f64::INFINITY` if it never fits.
    pub fn earliest_start(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        if self.fits_interval(d, from, duration) {
            return from;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > from && self.states[i].fits(d) && self.fits_interval(d, t, duration) {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Carves a reservation for `d` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics (debug) if the demand does not fit the interval.
    pub fn reserve(&mut self, d: &JobDemand, start: f64, duration: f64) {
        debug_assert!(self.fits_interval(d, start, duration), "reserve without fit check");
        let end = start + duration;
        self.split_at(start);
        self.split_at(end);
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= end {
                break;
            }
            let seg_end = self.times.get(i + 1).copied().unwrap_or(f64::INFINITY);
            if seg_end <= start {
                continue;
            }
            // Segment overlaps the reservation: subtract.
            let state = &mut self.states[i];
            debug_assert!(state.fits(d));
            let _ = state.alloc(d);
        }
    }

    /// Ensures `t` is a breakpoint (no-op if it already is or precedes the
    /// origin; infinite times are ignored).
    fn split_at(&mut self, t: f64) {
        if !t.is_finite() || t <= self.times[0] {
            return;
        }
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                let state = self.states[i - 1];
                self.times.insert(i, t);
                self.states.insert(i, state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, bb: f64) -> JobDemand {
        JobDemand::cpu_bb(nodes, bb)
    }

    fn release(t: f64, nodes: u32, bb: f64) -> (f64, JobDemand, NodeAssignment) {
        (t, d(nodes, bb), NodeAssignment::two_tier(0, nodes))
    }

    #[test]
    fn profile_accumulates_releases() {
        let pool = PoolState::cpu_bb(4, 10.0); // 4 free now
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![release(10.0, 4, 20.0), release(20.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 3);
        assert_eq!(p.state_at(0.0).nodes(), 4);
        assert_eq!(p.state_at(10.0).nodes(), 8);
        assert_eq!(p.state_at(25.0).nodes(), 10);
        assert_eq!(p.state_at(25.0).bb_gb(), 30.0);
    }

    #[test]
    fn simultaneous_releases_merge() {
        let p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(0, 0.0),
            vec![release(5.0, 1, 0.0), release(5.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 2);
        assert_eq!(p.state_at(5.0).nodes(), 3);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 6, 0.0)]);
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 100.0), 0.0);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 100.0), 10.0);
        assert_eq!(p.earliest_start(&d(50, 0.0), 0.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn reservation_blocks_the_interval() {
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(4, 10.0), vec![release(10.0, 4, 0.0)]);
        // Reserve all 4 current nodes for [0, 30).
        p.reserve(&d(4, 5.0), 0.0, 30.0);
        assert_eq!(p.state_at(0.0).nodes(), 0);
        assert_eq!(p.state_at(15.0).nodes(), 4, "release at 10 still counted");
        assert_eq!(p.state_at(30.0).nodes(), 8, "reservation ends at 30");
        // A 4-node job now has to wait until t=10.
        assert_eq!(p.earliest_start(&d(4, 0.0), 0.0, 5.0), 10.0);
    }

    #[test]
    fn fits_interval_checks_interior_boundaries() {
        let mut p = AvailabilityProfile::new(0.0, PoolState::cpu_bb(8, 0.0), vec![]);
        // Reservation in the middle of a candidate interval.
        p.reserve(&d(6, 0.0), 10.0, 10.0);
        assert!(p.fits_interval(&d(4, 0.0), 0.0, 10.0));
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 15.0), "collides with [10,20)");
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }

    #[test]
    fn ssd_pools_tracked_through_profile() {
        let pool = PoolState::with_ssd(1, 1, 100.0);
        let big = JobDemand::cpu_bb_ssd(1, 0.0, 200.0);
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![(5.0, JobDemand::cpu_bb_ssd(2, 0.0, 200.0), NodeAssignment::two_tier(0, 2))],
        );
        // One 256 node free now; three at t=5.
        assert!(p.fits_interval(&big, 0.0, 1.0));
        let three = JobDemand::cpu_bb_ssd(3, 0.0, 200.0);
        assert_eq!(p.earliest_start(&three, 0.0, 1.0), 5.0);
    }

    #[test]
    fn conservative_chain_of_reservations() {
        // Classic scenario: 10 nodes; running job frees at t=10.
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 8, 0.0)]);
        // Head job needs 10 nodes -> reserved at t=10 for 20.
        let head = d(10, 0.0);
        let t = p.earliest_start(&head, 0.0, 20.0);
        assert_eq!(t, 10.0);
        p.reserve(&head, t, 20.0);
        // Second job (2 nodes, long): can start now ONLY if it ends by 10.
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 5.0), 0.0);
        assert_eq!(
            p.earliest_start(&d(2, 0.0), 0.0, 50.0),
            30.0,
            "long job must queue behind the head's reservation"
        );
    }
}
