//! Compatibility shim: the availability-profile machinery moved into
//! [`crate::backfill`] alongside the conservative strategy that uses it.

pub use crate::backfill::AvailabilityProfile;
