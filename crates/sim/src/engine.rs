//! The discrete-event driver: virtual time, and nothing else.
//!
//! [`Engine`] is the first *driver* of the scheduler-service core
//! ([`bbsched_sched::SchedCore`]). The core owns the scheduling state —
//! queue, ledger, backfill strategy, starvation bookkeeping, policy —
//! and decides *what* to do at each invocation; the engine owns *when*:
//! it advances virtual time along the merged stream of arrivals and
//! completions, feeds both into the core, and applies the core's
//! [`Decision::Start`]s by scheduling completion events at
//! `start + runtime`. What it deliberately does *not* own:
//!
//! * **trace storage** — arrivals stream in through any iterator of
//!   [`Arrival`]s sorted by submit time, so multi-day traces never need to
//!   be fully materialized;
//! * **result collection** — everything observable flows out through
//!   [`crate::SimObserver`] callbacks ([`crate::Recorder`] rebuilds the
//!   classic [`crate::SimResult`]);
//! * **scheduling logic** — the six-phase invocation lives in
//!   [`bbsched_sched::SchedCore::invoke`]; the online replay driver
//!   (`bbsched_sched::replay`, surfaced as `cli replay`) drives the same
//!   core from an event file and produces byte-identical decisions.
//!
//! Events at the same instant are drained as one batch before the
//! invocation runs, so the schedule depends only on the set of
//! same-instant events, never on their internal order.

use crate::simulator::SimConfig;
use bbsched_core::problem::JobDemand;
use bbsched_policies::SelectionPolicy;
use bbsched_sched::{CoreSnapshot, Decision, SchedCore, SchedError, SchedObserver};
use bbsched_workloads::{Job, SystemConfig};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One job entering the simulation: the trace job plus its
/// capacity-clamped demand ([`crate::Simulator::new`] computes the
/// clamping via [`bbsched_sched::clamp_demand`]; standalone engine users
/// supply their own).
#[derive(Clone, Debug)]
pub struct Arrival {
    /// The job as submitted.
    pub job: Job,
    /// The demand the core will allocate (must fit total capacity).
    pub demand: JobDemand,
}

/// A completion event. Arrivals are not events — they stream from the
/// arrival iterator; only finishes need the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Event {
    time: f64,
    seq: u64,
    idx: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What the engine reports when the event loop runs dry. Everything
/// richer (records, counters, metrics) comes through observers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineSummary {
    /// Latest completion time seen.
    pub makespan: f64,
    /// Number of scheduling invocations executed.
    pub invocations: u64,
    /// Number of jobs that arrived (and, absent dependency cycles, ran).
    pub jobs: usize,
}

/// The engine's explicit owned state between instants: the core's
/// versioned [`CoreSnapshot`] plus the driver-side remainder — the
/// completion-event heap, the event sequence counter, and the arrival /
/// makespan watermarks. Serde-derived; rides the same versioned JSON
/// contract as the core snapshot (DESIGN.md §12).
///
/// A snapshot captures the engine *between instants* only; `last_submit`
/// is `None` before the first arrival (the in-memory sentinel is
/// `f64::NEG_INFINITY`, which JSON cannot carry).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// The scheduler core's versioned state.
    pub core: CoreSnapshot,
    /// Pending completion events as `(time, seq, job index)`, soonest
    /// first.
    pub finish_events: Vec<(f64, u64, usize)>,
    /// Next completion-event sequence number.
    pub seq: u64,
    /// Latest arrival submit time seen (`None` before the first arrival).
    pub last_submit: Option<f64>,
    /// Latest completion time seen.
    pub makespan: f64,
}

/// The discrete-event scheduling driver. Construct with [`Engine::new`],
/// drive with [`Engine::run`] — or drive partway with
/// [`Engine::run_until`], capture an [`EngineSnapshot`], and continue in
/// a rebuilt engine (same or different policy) via [`Engine::restore`].
pub struct Engine<'o> {
    core: SchedCore<'o>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Start indices of the current invocation (reused buffer).
    started: Vec<usize>,
    /// Latest arrival submit time (sortedness guard).
    last_submit: f64,
    /// Latest completion time seen.
    makespan: f64,
}

impl<'o> Engine<'o> {
    /// An engine over `system`'s resources running `policy`, with the
    /// given observers attached. Fails on an invalid system or
    /// configuration.
    pub fn new(
        system: &SystemConfig,
        cfg: SimConfig,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, crate::SimError> {
        let core = SchedCore::new(system, cfg.sched(), policy, observers)?;
        Ok(Self {
            core,
            events: BinaryHeap::new(),
            seq: 0,
            started: Vec::new(),
            last_submit: f64::NEG_INFINITY,
            makespan: 0.0,
        })
    }

    /// Captures the engine's complete state between instants. Restoring
    /// the snapshot (under the same policy) and continuing yields the
    /// byte-identical decision stream of the uninterrupted run; observers
    /// are not part of the state and must be re-attached on restore.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut finish_events: Vec<(f64, u64, usize)> =
            self.events.iter().map(|&Reverse(e)| (e.time, e.seq, e.idx)).collect();
        finish_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        EngineSnapshot {
            core: self.core.snapshot(),
            finish_events,
            seq: self.seq,
            last_submit: if self.last_submit.is_finite() { Some(self.last_submit) } else { None },
            makespan: self.makespan,
        }
    }

    /// Rebuilds an engine from a snapshot, with a fresh policy object and
    /// freshly attached observers. Policy state stored in the snapshot is
    /// injected only when `policy` has the same name as the snapshotted
    /// one (a different policy starts fresh — what-if forking). Corrupt
    /// snapshots fail with a typed [`crate::SimError`], never a panic.
    pub fn restore(
        snapshot: EngineSnapshot,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, crate::SimError> {
        if let Some(t) = snapshot.last_submit {
            if !t.is_finite() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "non-finite last_submit {t} in engine snapshot"
                )));
            }
        }
        let core = SchedCore::restore(snapshot.core, policy, observers)?;
        let jobs = core.jobs_submitted();
        let mut events = BinaryHeap::with_capacity(snapshot.finish_events.len());
        for &(time, seq, idx) in &snapshot.finish_events {
            if !time.is_finite() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "non-finite completion time for event {seq}"
                )));
            }
            if idx >= jobs {
                return Err(SchedError::CorruptSnapshot(format!(
                    "completion event references job index {idx}, but only {jobs} jobs submitted"
                )));
            }
            if seq >= snapshot.seq {
                return Err(SchedError::CorruptSnapshot(format!(
                    "completion event sequence {seq} not below the next sequence {}",
                    snapshot.seq
                )));
            }
            events.push(Reverse(Event { time, seq, idx }));
        }
        Ok(Self {
            core,
            events,
            seq: snapshot.seq,
            started: Vec::new(),
            last_submit: snapshot.last_submit.unwrap_or(f64::NEG_INFINITY),
            makespan: snapshot.makespan,
        })
    }

    /// Runs the simulation to completion: consumes `arrivals` (which MUST
    /// be sorted by submit time — [`bbsched_workloads::Trace`] guarantees
    /// this; streaming sources must too) and drains every completion.
    ///
    /// # Panics
    /// Panics if arrivals regress in time or reuse a job id, or (via the
    /// ledger) on any resource-conservation violation.
    pub fn run(mut self, arrivals: impl IntoIterator<Item = Arrival>) -> EngineSummary {
        let mut arrivals = arrivals.into_iter().peekable();
        self.drive(&mut arrivals, f64::INFINITY);
        self.finish()
    }

    /// Processes every instant up to and including `stop`, then returns
    /// with the engine paused between instants — the valid boundary for
    /// [`Engine::snapshot`]. Arrivals after `stop` are left in the
    /// iterator; pass the same iterator (or the remaining tail) to the
    /// continuing engine's [`Engine::run`].
    pub fn run_until(
        &mut self,
        arrivals: &mut std::iter::Peekable<impl Iterator<Item = Arrival>>,
        stop: f64,
    ) {
        self.drive(arrivals, stop);
    }

    /// The merged event loop: processes instants while `now <= stop`.
    fn drive(
        &mut self,
        arrivals: &mut std::iter::Peekable<impl Iterator<Item = Arrival>>,
        stop: f64,
    ) {
        loop {
            // The next instant is the earlier of the next arrival and the
            // next completion; the batch drain makes within-instant order
            // immaterial.
            let next_arrival = arrivals.peek().map(|a| a.job.submit);
            let next_finish = self.events.peek().map(|Reverse(e)| e.time);
            let now = match (next_arrival, next_finish) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (Some(a), Some(f)) => a.min(f),
            };
            if now > stop {
                break;
            }

            // Admit every arrival at this instant.
            while arrivals.peek().is_some_and(|a| a.job.submit <= now) {
                let a = arrivals.next().expect("peeked arrival vanished");
                assert!(
                    a.job.submit >= self.last_submit,
                    "arrivals must be sorted by submit time (job {} at {} after {})",
                    a.job.id,
                    a.job.submit,
                    self.last_submit
                );
                self.last_submit = a.job.submit;
                self.core.submit(a.job, a.demand).expect("arrival stream reused a job id");
            }

            // Apply every completion at this instant.
            while self.events.peek().is_some_and(|Reverse(e)| e.time <= now) {
                let Reverse(ev) = self.events.pop().expect("peeked event vanished");
                let id = self.core.job(ev.idx).id;
                self.core.job_finished(id, now).expect("completion event for a job not running");
                self.makespan = self.makespan.max(now);
            }

            // One scheduling invocation (a no-op on an empty queue);
            // apply its start decisions as future completion events.
            self.started.clear();
            self.started.extend(self.core.invoke(now).iter().filter_map(|d| match *d {
                Decision::Start { idx, .. } => Some(idx),
                Decision::Reserve { .. } => None,
            }));
            for i in 0..self.started.len() {
                let idx = self.started[i];
                let end = now + self.core.job(idx).runtime;
                self.events.push(Reverse(Event { time: end, seq: self.seq, idx }));
                self.seq += 1;
            }
        }
    }

    /// Declares the event stream over: checks the drain invariants, fires
    /// `on_sim_end`, and reports the summary.
    fn finish(mut self) -> EngineSummary {
        self.core.assert_drained();
        debug_assert_eq!(
            self.core.queue_len(),
            0,
            "{} jobs left waiting at drain (dependency cycle?)",
            self.core.queue_len()
        );
        let makespan = self.makespan;
        let invocations = self.core.invocations();
        self.core.end_of_stream(makespan);
        EngineSummary { makespan, invocations, jobs: self.core.jobs_submitted() }
    }
}

impl bbsched_sched::Driver for Engine<'_> {
    type Snapshot = EngineSnapshot;

    fn snapshot(&self) -> EngineSnapshot {
        Engine::snapshot(self)
    }

    /// Position in virtual time = scheduling invocations run (the
    /// engine consumes a derived arrival stream, not a wire stream, so
    /// invocations are its natural progress counter).
    fn position(&self) -> u64 {
        self.core.invocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_policies::{GaParams, PolicyKind};
    use bbsched_sched::{JobStart, Recorder};

    fn system(nodes: u32) -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn arrival(id: u64, submit: f64, nodes: u32, runtime: f64) -> Arrival {
        Arrival {
            job: Job::new(id, submit, nodes, runtime, runtime * 2.0),
            demand: JobDemand::cpu_bb(nodes, 0.0),
        }
    }

    fn policy() -> Box<dyn SelectionPolicy> {
        PolicyKind::Baseline.build(GaParams::default())
    }

    #[test]
    fn engine_streams_arrivals_from_iterator() {
        // The arrival source is a lazy generator, never a materialized
        // trace: 50 jobs, one every 2 s, on a 4-node machine.
        let sys = system(4);
        let mut recorder = Recorder::new();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder]).unwrap();
        let arrivals = (0..50u64).map(|i| arrival(i, i as f64 * 2.0, 2, 10.0));
        let summary = engine.run(arrivals);
        assert_eq!(summary.jobs, 50);
        assert_eq!(recorder.records().len(), 50);
        assert!(summary.makespan > 0.0);
    }

    #[test]
    fn unsorted_arrivals_panic() {
        let sys = system(4);
        let engine = Engine::new(&sys, SimConfig::default(), policy(), vec![]).unwrap();
        let arrivals = vec![arrival(0, 10.0, 1, 5.0), arrival(1, 3.0, 1, 5.0)];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(arrivals)));
        assert!(result.is_err(), "time-regressing arrivals must be rejected");
    }

    #[test]
    fn summary_counts_match_recorder() {
        let sys = system(8);
        let mut recorder = Recorder::new();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder]).unwrap();
        let arrivals: Vec<Arrival> = (0..20u64).map(|i| arrival(i, i as f64, 3, 40.0)).collect();
        let summary = engine.run(arrivals);
        let result = recorder.into_result("Baseline".into(), "FCFS".into(), sys.clone(), 0);
        assert_eq!(result.invocations, summary.invocations);
        assert_eq!(result.makespan, summary.makespan);
        assert_eq!(result.records.len(), summary.jobs);
    }

    /// Cutting the run at an instant boundary, snapshotting through JSON,
    /// restoring in a fresh engine, and draining the rest must reproduce
    /// the uninterrupted run's decision stream byte for byte — at every
    /// arrival instant of the trace.
    #[test]
    fn snapshot_restore_continues_byte_identically_at_every_arrival() {
        use bbsched_sched::DecisionLog;
        let sys = system(4);
        let arrivals: Vec<Arrival> = (0..20u64)
            .map(|i| arrival(i, i as f64 * 3.0, 1 + (i % 3) as u32, 25.0 + (i % 4) as f64 * 10.0))
            .collect();

        let mut full_log = DecisionLog::new();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut full_log]).unwrap();
        let full_summary = engine.run(arrivals.clone());
        let full = full_log.into_lines();

        for cut in arrivals.iter().map(|a| a.job.submit) {
            let mut head_log = DecisionLog::new();
            let mut engine =
                Engine::new(&sys, SimConfig::default(), policy(), vec![&mut head_log]).unwrap();
            let mut stream = arrivals.clone().into_iter().peekable();
            engine.run_until(&mut stream, cut);
            let json = serde_json::to_string(&engine.snapshot()).unwrap();
            drop(engine);

            let snap: EngineSnapshot = serde_json::from_str(&json).unwrap();
            let mut tail_log = DecisionLog::new();
            let resumed = Engine::restore(snap, policy(), vec![&mut tail_log]).unwrap();
            let summary = resumed.run(stream);
            assert_eq!(summary.makespan, full_summary.makespan, "cut at {cut}");
            assert_eq!(summary.jobs, full_summary.jobs, "cut at {cut}");

            let mut combined = head_log.into_lines();
            combined.extend(tail_log.into_lines());
            assert_eq!(combined, full, "decision stream diverges when cut at t={cut}");
        }
    }

    /// A snapshot is a fixed point of restore: restoring it and
    /// snapshotting again yields the identical value (and identical JSON).
    #[test]
    fn engine_snapshot_is_a_fixed_point_of_restore() {
        let sys = system(4);
        let arrivals: Vec<Arrival> = (0..10u64).map(|i| arrival(i, i as f64, 2, 15.0)).collect();
        let mut engine = Engine::new(&sys, SimConfig::default(), policy(), vec![]).unwrap();
        let mut stream = arrivals.into_iter().peekable();
        engine.run_until(&mut stream, 4.0);
        let snap = engine.snapshot();
        let resumed = Engine::restore(snap.clone(), policy(), vec![]).unwrap();
        assert_eq!(resumed.snapshot(), snap);
        assert_eq!(
            serde_json::to_string(&resumed.snapshot()).unwrap(),
            serde_json::to_string(&snap).unwrap()
        );
    }

    /// Corrupt engine snapshots fail restore with a typed error.
    #[test]
    fn corrupt_engine_snapshots_fail_restore_typed() {
        use bbsched_sched::SchedError;
        let sys = system(4);
        let arrivals: Vec<Arrival> = (0..6u64).map(|i| arrival(i, i as f64, 2, 30.0)).collect();
        let mut engine = Engine::new(&sys, SimConfig::default(), policy(), vec![]).unwrap();
        let mut stream = arrivals.into_iter().peekable();
        engine.run_until(&mut stream, 3.0);
        let good = engine.snapshot();

        let mut bad = good.clone();
        bad.finish_events[0].2 = 999; // job index out of range
        assert!(matches!(
            Engine::restore(bad, policy(), vec![]).map(|_| ()),
            Err(SchedError::CorruptSnapshot(_))
        ));

        let mut bad = good.clone();
        bad.seq = 0; // events must have seq below the next sequence
        assert!(matches!(
            Engine::restore(bad, policy(), vec![]).map(|_| ()),
            Err(SchedError::CorruptSnapshot(_))
        ));

        assert!(Engine::restore(good, policy(), vec![]).is_ok());
    }

    #[test]
    fn multiple_observers_see_the_same_run() {
        #[derive(Default)]
        struct Counter {
            starts: usize,
            finishes: usize,
            windows: usize,
            sim_ends: usize,
        }
        impl SchedObserver for Counter {
            fn on_job_started(&mut self, _s: &JobStart<'_>) {
                self.starts += 1;
            }
            fn on_job_finished(&mut self, _n: f64, _j: &Job, _d: &JobDemand) {
                self.finishes += 1;
            }
            fn on_window_built(&mut self, _n: f64, _w: &[u64]) {
                self.windows += 1;
            }
            fn on_sim_end(&mut self, _m: f64, _i: u64) {
                self.sim_ends += 1;
            }
        }
        let sys = system(4);
        let mut recorder = Recorder::new();
        let mut counter = Counter::default();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder, &mut counter])
                .unwrap();
        let arrivals: Vec<Arrival> = (0..12u64).map(|i| arrival(i, i as f64, 2, 20.0)).collect();
        let summary = engine.run(arrivals);
        assert_eq!(counter.starts, 12);
        assert_eq!(counter.finishes, 12);
        assert_eq!(counter.sim_ends, 1);
        assert_eq!(counter.windows as u64, summary.invocations);
        assert_eq!(recorder.records().len(), counter.starts);
    }
}
