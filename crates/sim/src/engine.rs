//! The discrete-event engine: the scheduling loop, and nothing else.
//!
//! [`Engine`] owns the mechanics that used to live in one monolithic
//! `Simulator::run`: the event loop, the waiting queue
//! ([`crate::QueueManager`]), resource accounting
//! ([`crate::AllocLedger`]), and the per-invocation phase sequence. What
//! it deliberately does *not* own:
//!
//! * **trace storage** — arrivals stream in through any iterator of
//!   [`Arrival`]s sorted by submit time, so multi-day traces never need to
//!   be fully materialized;
//! * **result collection** — everything observable flows out through
//!   [`crate::SimObserver`] callbacks ([`crate::Recorder`] rebuilds the
//!   classic [`crate::SimResult`]);
//! * **backfilling policy** — a [`crate::BackfillStrategy`] object.
//!
//! Every arrival and completion triggers a *scheduling invocation*:
//!
//! 1. the base scheduler establishes queue priority order (§2.1);
//! 2. the window (§3.1) is filled with the highest-priority jobs whose
//!    dependencies are complete;
//! 3. jobs past the starvation bound are force-started (or, if they no
//!    longer fit, become the reservation head so nothing delays them);
//! 4. the multi-resource selection policy picks window jobs to start;
//! 5. the backfill strategy starts any remaining candidate that fits now
//!    without delaying the reservation head, using *walltime estimates*
//!    exactly like a production scheduler;
//! 6. starvation bookkeeping and queue cleanup.
//!
//! Events at the same instant are drained as one batch before the
//! invocation runs, so the schedule depends only on the set of
//! same-instant events, never on their internal order.

use crate::alloc::AllocLedger;
use crate::backfill::{BackfillCtx, BackfillStrategy};
use crate::jobset::JobSet;
use crate::observer::{JobStart, SimObserver};
use crate::record::StartReason;
use crate::simulator::{BackfillScope, SimConfig};
use bbsched_core::problem::JobDemand;
use bbsched_core::window::{fill_window, StarvationTracker};
use bbsched_policies::SelectionPolicy;
use bbsched_workloads::{Job, SystemConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Per-invocation scratch buffers, owned by the engine and reused across
/// invocations so the hot loop allocates nothing once capacities warm up.
#[derive(Default)]
struct Scratch {
    window_idx: Vec<usize>,
    window_ids: Vec<u64>,
    remaining: Vec<usize>,
    sel_demands: Vec<JobDemand>,
    waiting: Vec<usize>,
    started_ids: Vec<u64>,
}

/// One job entering the simulation: the trace job plus its
/// capacity-clamped demand ([`crate::Simulator::new`] computes the
/// clamping; standalone engine users supply their own).
#[derive(Clone, Debug)]
pub struct Arrival {
    /// The job as submitted.
    pub job: Job,
    /// The demand the engine will allocate (must fit total capacity).
    pub demand: JobDemand,
}

/// A completion event. Arrivals are not events — they stream from the
/// arrival iterator; only finishes need the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Event {
    time: f64,
    seq: u64,
    idx: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What the engine reports when the event loop runs dry. Everything
/// richer (records, counters, metrics) comes through observers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineSummary {
    /// Latest completion time seen.
    pub makespan: f64,
    /// Number of scheduling invocations executed.
    pub invocations: u64,
    /// Number of jobs that arrived (and, absent dependency cycles, ran).
    pub jobs: usize,
}

/// Mutable state shared between the engine and the backfill phase: the
/// job/demand tables, the allocation ledger, the completion-event heap,
/// and the observer set. Split out so [`BackfillCtx`] can borrow it while
/// the engine keeps hold of the queue and tracker.
pub(crate) struct Core<'o> {
    pub(crate) jobs: Vec<Job>,
    pub(crate) demands: Vec<JobDemand>,
    pub(crate) ledger: AllocLedger,
    pub(crate) events: BinaryHeap<Reverse<Event>>,
    pub(crate) seq: u64,
    pub(crate) observers: Vec<&'o mut dyn SimObserver>,
    /// Jobs started during the current invocation (bitset: probed inside
    /// the queue-cleanup and backfill loops, cleared per invocation).
    pub(crate) started: JobSet,
    /// Backfill starts the strategy credited this pass (see
    /// [`BackfillCtx::start`]).
    pub(crate) backfill_credit: usize,
}

impl Core<'_> {
    fn notify(&mut self, mut f: impl FnMut(&mut dyn SimObserver)) {
        for o in self.observers.iter_mut() {
            f(*o);
        }
    }

    /// Allocates, schedules the completion event, and notifies observers.
    /// The single funnel every phase starts jobs through.
    pub(crate) fn start_job(&mut self, idx: usize, now: f64, reason: StartReason) {
        let job = &self.jobs[idx];
        let demand = self.demands[idx];
        let est_end = now + job.walltime;
        let assignment = self.ledger.start(idx, demand, est_end);
        let end = now + job.runtime;
        self.events.push(Reverse(Event { time: end, seq: self.seq, idx }));
        self.seq += 1;
        let wasted_ssd_gb = self.ledger.pool().wasted_capacity_gb(&demand, &assignment);
        let start = JobStart {
            now,
            job: &self.jobs[idx],
            demand,
            assignment,
            wasted_ssd_gb,
            est_end,
            reason,
        };
        for o in self.observers.iter_mut() {
            o.on_job_started(&start);
        }
        self.started.insert(idx);
    }
}

/// The discrete-event scheduling engine. Construct with [`Engine::new`],
/// drive with [`Engine::run`].
pub struct Engine<'o> {
    cfg: SimConfig,
    core: Core<'o>,
    queue: crate::queue::QueueManager,
    backfill: Box<dyn BackfillStrategy>,
    completed_ids: HashSet<u64>,
    tracker: StarvationTracker,
    invocations: u64,
    scratch: Scratch,
}

impl<'o> Engine<'o> {
    /// An engine over `system`'s resources with the given observers
    /// attached. Fails on an invalid system or configuration.
    pub fn new(
        system: &SystemConfig,
        cfg: SimConfig,
        observers: Vec<&'o mut dyn SimObserver>,
    ) -> Result<Self, crate::error::SimError> {
        system.validate()?;
        cfg.validate()?;
        let queue = crate::queue::QueueManager::new(cfg.base);
        let backfill = cfg.backfill_algorithm.strategy();
        Ok(Self {
            core: Core {
                jobs: Vec::new(),
                demands: Vec::new(),
                ledger: AllocLedger::new(system.pool_state()),
                events: BinaryHeap::new(),
                seq: 0,
                observers,
                started: JobSet::new(),
                backfill_credit: 0,
            },
            cfg,
            queue,
            backfill,
            completed_ids: HashSet::new(),
            tracker: StarvationTracker::new(),
            invocations: 0,
            scratch: Scratch::default(),
        })
    }

    /// Runs the simulation to completion: consumes `arrivals` (which MUST
    /// be sorted by submit time — [`bbsched_workloads::Trace`] guarantees
    /// this; streaming sources must too) and drains every completion.
    ///
    /// # Panics
    /// Panics if arrivals regress in time, or (via the ledger) on any
    /// resource-conservation violation.
    pub fn run(
        mut self,
        arrivals: impl IntoIterator<Item = Arrival>,
        policy: &mut dyn SelectionPolicy,
    ) -> EngineSummary {
        let mut arrivals = arrivals.into_iter().peekable();
        let mut last_submit = f64::NEG_INFINITY;
        let mut makespan = 0.0f64;

        loop {
            // The next instant is the earlier of the next arrival and the
            // next completion. Seqs order finishes after arrivals within
            // an instant, matching the historical heap order; the batch
            // drain makes within-instant order immaterial anyway.
            let next_arrival = arrivals.peek().map(|a| a.job.submit);
            let next_finish = self.core.events.peek().map(|Reverse(e)| e.time);
            let now = match (next_arrival, next_finish) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (Some(a), Some(f)) => a.min(f),
            };

            // Admit every arrival at this instant.
            while arrivals.peek().is_some_and(|a| a.job.submit <= now) {
                let a = arrivals.next().expect("peeked arrival vanished");
                assert!(
                    a.job.submit >= last_submit,
                    "arrivals must be sorted by submit time (job {} at {} after {})",
                    a.job.id,
                    a.job.submit,
                    last_submit
                );
                last_submit = a.job.submit;
                let idx = self.core.jobs.len();
                self.core.jobs.push(a.job);
                self.core.demands.push(a.demand);
                self.queue.push(idx, &self.core.jobs);
            }

            // Apply every completion at this instant.
            while self.core.events.peek().is_some_and(|Reverse(e)| e.time <= now) {
                let Reverse(ev) = self.core.events.pop().expect("peeked event vanished");
                let entry = self.core.ledger.finish(ev.idx);
                let job = &self.core.jobs[ev.idx];
                self.completed_ids.insert(job.id);
                makespan = makespan.max(now);
                let start = self.core.observers.iter_mut();
                for o in start {
                    o.on_job_finished(now, &self.core.jobs[ev.idx], &entry.demand);
                }
            }

            if self.queue.is_empty() {
                continue;
            }
            self.invocations += 1;
            self.invoke(now, policy);
        }

        self.core.ledger.assert_drained();
        debug_assert!(
            self.queue.is_empty(),
            "{} jobs left waiting at drain (dependency cycle?)",
            self.queue.len()
        );
        let invocations = self.invocations;
        self.core.notify(|o| o.on_sim_end(makespan, invocations));
        EngineSummary { makespan, invocations, jobs: self.core.jobs.len() }
    }

    /// One scheduling invocation: phases (1)–(6) from the module docs.
    /// All per-invocation lists live in [`Scratch`] and are reused.
    fn invoke(&mut self, now: f64, policy: &mut dyn SelectionPolicy) {
        let invocation = self.invocations;
        let queue_len = self.queue.len();
        self.core.notify(|o| o.on_invocation_begin(now, invocation, queue_len));
        let mut scratch = std::mem::take(&mut self.scratch);

        // --- (1) base-scheduler priority order ---
        self.queue.order(&self.core.jobs, now);

        // --- (2) fill the window with dependency-satisfied jobs ---
        let window_size =
            self.cfg.dynamic_window.map(|d| d.size_for(queue_len)).unwrap_or(self.cfg.window.size);
        scratch.window_idx.clear();
        scratch.window_ids.clear();
        {
            let jobs = &self.core.jobs;
            let queue = self.queue.as_slice();
            let completed = &self.completed_ids;
            let deps_met =
                |qpos: usize| jobs[queue[qpos]].deps.iter().all(|d| completed.contains(d));
            let window_qpos = fill_window(queue_len, window_size, deps_met);
            scratch.window_idx.extend(window_qpos.iter().map(|&q| queue[q]));
            scratch.window_ids.extend(scratch.window_idx.iter().map(|&i| jobs[i].id));
        }
        {
            let window_ids = &scratch.window_ids;
            self.core.notify(|o| o.on_window_built(now, window_ids));
        }

        self.core.started.clear();

        // --- (3) starvation bound (§3.1) ---
        // Jobs past the bound start immediately when they fit. A starved
        // job that does not fit becomes the reservation head: optimization
        // continues, but only inside the slack that cannot delay it.
        let mut blocked_head: Option<usize> = None;
        for &idx in &scratch.window_idx {
            if self.tracker.is_starved(self.core.jobs[idx].id, self.cfg.window.starvation_bound) {
                if self.core.ledger.fits(&self.core.demands[idx]) {
                    self.core.start_job(idx, now, StartReason::Starvation);
                } else {
                    blocked_head = Some(idx);
                    break;
                }
            }
        }

        // --- (4) multi-resource selection from the window ---
        // With a starved reservation head, the policy sees only the
        // component-wise minimum of "free now" and "left over at the
        // head's shadow time" — any selection within that bound cannot
        // delay the head.
        let policy_avail = match blocked_head {
            None => *self.core.ledger.pool(),
            Some(b) => {
                let (_, leftover) = crate::backfill::shadow_and_leftover(
                    &self.core.ledger,
                    &self.core.demands[b],
                    now,
                );
                self.core.ledger.pool().component_min(&leftover)
            }
        };
        scratch.remaining.clear();
        {
            let started = &self.core.started;
            scratch.remaining.extend(
                scratch
                    .window_idx
                    .iter()
                    .copied()
                    .filter(|i| !started.contains(*i) && Some(*i) != blocked_head),
            );
        }
        if !scratch.remaining.is_empty() {
            scratch.sel_demands.clear();
            scratch.sel_demands.extend(scratch.remaining.iter().map(|&i| self.core.demands[i]));
            let selection = policy.select(&scratch.sel_demands, &policy_avail, invocation);
            debug_assert!(
                bbsched_policies::selection_is_feasible(
                    &scratch.sel_demands,
                    &policy_avail,
                    &selection
                ),
                "policy {} returned an infeasible selection",
                policy.name()
            );
            for &s in &selection {
                self.core.start_job(scratch.remaining[s], now, StartReason::Policy);
            }
        }

        // --- (5) backfilling, behind the strategy object ---
        scratch.waiting.clear();
        match self.cfg.backfill {
            BackfillScope::Window => {
                let started = &self.core.started;
                scratch
                    .waiting
                    .extend(scratch.window_idx.iter().copied().filter(|i| !started.contains(*i)));
            }
            BackfillScope::Queue => {
                let started = &self.core.started;
                let jobs = &self.core.jobs;
                let completed = &self.completed_ids;
                scratch.waiting.extend(self.queue.as_slice().iter().copied().filter(|i| {
                    !started.contains(*i) && jobs[*i].deps.iter().all(|d| completed.contains(d))
                }));
            }
        }
        self.core.backfill_credit = 0;
        let mut ctx = BackfillCtx {
            now,
            waiting: &scratch.waiting,
            blocked_head,
            max_scan: self.cfg.max_backfill_scan,
            core: &mut self.core,
        };
        self.backfill.pass(&mut ctx);
        let credited = self.core.backfill_credit;
        let algorithm = self.backfill.name();
        self.core.notify(|o| o.on_backfill_pass(now, algorithm, credited));

        // --- (6) starvation bookkeeping & queue cleanup ---
        // A pass only counts against the bound when the job was
        // *bypassed*: some other job started while it sat in the window.
        // Idle invocations (nothing startable) are not bypasses — counting
        // them would make the bound fire on event frequency rather than on
        // actual priority inversion.
        if !self.core.started.is_empty() {
            scratch.started_ids.clear();
            {
                let started = &self.core.started;
                let jobs = &self.core.jobs;
                scratch.started_ids.extend(
                    scratch
                        .window_idx
                        .iter()
                        .filter(|i| started.contains(**i))
                        .map(|&i| jobs[i].id),
                );
            }
            self.tracker.observe(&scratch.window_ids, &scratch.started_ids);
            for i in self.core.started.iter() {
                self.tracker.forget(self.core.jobs[i].id);
            }
        }
        self.queue.remove_started(&self.core.started);
        let started_count = self.core.started.len();
        self.core.notify(|o| o.on_invocation_end(now, started_count));
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::Recorder;
    use bbsched_policies::{GaParams, PolicyKind};

    fn system(nodes: u32) -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn arrival(id: u64, submit: f64, nodes: u32, runtime: f64) -> Arrival {
        Arrival {
            job: Job::new(id, submit, nodes, runtime, runtime * 2.0),
            demand: JobDemand::cpu_bb(nodes, 0.0),
        }
    }

    #[test]
    fn engine_streams_arrivals_from_iterator() {
        // The arrival source is a lazy generator, never a materialized
        // trace: 50 jobs, one every 2 s, on a 4-node machine.
        let sys = system(4);
        let mut recorder = Recorder::new();
        let engine = Engine::new(&sys, SimConfig::default(), vec![&mut recorder]).unwrap();
        let arrivals = (0..50u64).map(|i| arrival(i, i as f64 * 2.0, 2, 10.0));
        let mut policy = PolicyKind::Baseline.build(GaParams::default());
        let summary = engine.run(arrivals, policy.as_mut());
        assert_eq!(summary.jobs, 50);
        assert_eq!(recorder.records().len(), 50);
        assert!(summary.makespan > 0.0);
    }

    #[test]
    fn unsorted_arrivals_panic() {
        let sys = system(4);
        let engine = Engine::new(&sys, SimConfig::default(), vec![]).unwrap();
        let arrivals = vec![arrival(0, 10.0, 1, 5.0), arrival(1, 3.0, 1, 5.0)];
        let mut policy = PolicyKind::Baseline.build(GaParams::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run(arrivals, policy.as_mut())
        }));
        assert!(result.is_err(), "time-regressing arrivals must be rejected");
    }

    #[test]
    fn summary_counts_match_recorder() {
        let sys = system(8);
        let mut recorder = Recorder::new();
        let engine = Engine::new(&sys, SimConfig::default(), vec![&mut recorder]).unwrap();
        let arrivals: Vec<Arrival> = (0..20u64).map(|i| arrival(i, i as f64, 3, 40.0)).collect();
        let mut policy = PolicyKind::Baseline.build(GaParams::default());
        let summary = engine.run(arrivals, policy.as_mut());
        let result = recorder.into_result("Baseline".into(), "FCFS".into(), sys.clone(), 0);
        assert_eq!(result.invocations, summary.invocations);
        assert_eq!(result.makespan, summary.makespan);
        assert_eq!(result.records.len(), summary.jobs);
    }

    #[test]
    fn multiple_observers_see_the_same_run() {
        #[derive(Default)]
        struct Counter {
            starts: usize,
            finishes: usize,
            windows: usize,
            sim_ends: usize,
        }
        impl SimObserver for Counter {
            fn on_job_started(&mut self, _s: &JobStart<'_>) {
                self.starts += 1;
            }
            fn on_job_finished(&mut self, _n: f64, _j: &Job, _d: &JobDemand) {
                self.finishes += 1;
            }
            fn on_window_built(&mut self, _n: f64, _w: &[u64]) {
                self.windows += 1;
            }
            fn on_sim_end(&mut self, _m: f64, _i: u64) {
                self.sim_ends += 1;
            }
        }
        let sys = system(4);
        let mut recorder = Recorder::new();
        let mut counter = Counter::default();
        let engine =
            Engine::new(&sys, SimConfig::default(), vec![&mut recorder, &mut counter]).unwrap();
        let arrivals: Vec<Arrival> = (0..12u64).map(|i| arrival(i, i as f64, 2, 20.0)).collect();
        let mut policy = PolicyKind::Baseline.build(GaParams::default());
        let summary = engine.run(arrivals, policy.as_mut());
        assert_eq!(counter.starts, 12);
        assert_eq!(counter.finishes, 12);
        assert_eq!(counter.sim_ends, 1);
        assert_eq!(counter.windows as u64, summary.invocations);
        assert_eq!(recorder.records().len(), counter.starts);
    }
}
