//! The discrete-event driver: virtual time, and nothing else.
//!
//! [`Engine`] is the first *driver* of the scheduler-service core
//! ([`bbsched_sched::SchedCore`]). The core owns the scheduling state —
//! queue, ledger, backfill strategy, starvation bookkeeping, policy —
//! and decides *what* to do at each invocation; the engine owns *when*:
//! it advances virtual time along the merged stream of arrivals and
//! completions, feeds both into the core, and applies the core's
//! [`Decision::Start`]s by scheduling completion events at
//! `start + runtime`. What it deliberately does *not* own:
//!
//! * **trace storage** — arrivals stream in through any iterator of
//!   [`Arrival`]s sorted by submit time, so multi-day traces never need to
//!   be fully materialized;
//! * **result collection** — everything observable flows out through
//!   [`crate::SimObserver`] callbacks ([`crate::Recorder`] rebuilds the
//!   classic [`crate::SimResult`]);
//! * **scheduling logic** — the six-phase invocation lives in
//!   [`bbsched_sched::SchedCore::invoke`]; the online replay driver
//!   (`bbsched_sched::replay`, surfaced as `cli replay`) drives the same
//!   core from an event file and produces byte-identical decisions.
//!
//! Events at the same instant are drained as one batch before the
//! invocation runs, so the schedule depends only on the set of
//! same-instant events, never on their internal order.

use crate::simulator::SimConfig;
use bbsched_core::problem::JobDemand;
use bbsched_policies::SelectionPolicy;
use bbsched_sched::{Decision, SchedCore, SchedObserver};
use bbsched_workloads::{Job, SystemConfig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One job entering the simulation: the trace job plus its
/// capacity-clamped demand ([`crate::Simulator::new`] computes the
/// clamping via [`bbsched_sched::clamp_demand`]; standalone engine users
/// supply their own).
#[derive(Clone, Debug)]
pub struct Arrival {
    /// The job as submitted.
    pub job: Job,
    /// The demand the core will allocate (must fit total capacity).
    pub demand: JobDemand,
}

/// A completion event. Arrivals are not events — they stream from the
/// arrival iterator; only finishes need the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Event {
    time: f64,
    seq: u64,
    idx: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What the engine reports when the event loop runs dry. Everything
/// richer (records, counters, metrics) comes through observers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineSummary {
    /// Latest completion time seen.
    pub makespan: f64,
    /// Number of scheduling invocations executed.
    pub invocations: u64,
    /// Number of jobs that arrived (and, absent dependency cycles, ran).
    pub jobs: usize,
}

/// The discrete-event scheduling driver. Construct with [`Engine::new`],
/// drive with [`Engine::run`].
pub struct Engine<'o> {
    core: SchedCore<'o>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Start indices of the current invocation (reused buffer).
    started: Vec<usize>,
}

impl<'o> Engine<'o> {
    /// An engine over `system`'s resources running `policy`, with the
    /// given observers attached. Fails on an invalid system or
    /// configuration.
    pub fn new(
        system: &SystemConfig,
        cfg: SimConfig,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, crate::SimError> {
        let core = SchedCore::new(system, cfg.sched(), policy, observers)?;
        Ok(Self { core, events: BinaryHeap::new(), seq: 0, started: Vec::new() })
    }

    /// Runs the simulation to completion: consumes `arrivals` (which MUST
    /// be sorted by submit time — [`bbsched_workloads::Trace`] guarantees
    /// this; streaming sources must too) and drains every completion.
    ///
    /// # Panics
    /// Panics if arrivals regress in time or reuse a job id, or (via the
    /// ledger) on any resource-conservation violation.
    pub fn run(mut self, arrivals: impl IntoIterator<Item = Arrival>) -> EngineSummary {
        let mut arrivals = arrivals.into_iter().peekable();
        let mut last_submit = f64::NEG_INFINITY;
        let mut makespan = 0.0f64;

        loop {
            // The next instant is the earlier of the next arrival and the
            // next completion; the batch drain makes within-instant order
            // immaterial.
            let next_arrival = arrivals.peek().map(|a| a.job.submit);
            let next_finish = self.events.peek().map(|Reverse(e)| e.time);
            let now = match (next_arrival, next_finish) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (Some(a), Some(f)) => a.min(f),
            };

            // Admit every arrival at this instant.
            while arrivals.peek().is_some_and(|a| a.job.submit <= now) {
                let a = arrivals.next().expect("peeked arrival vanished");
                assert!(
                    a.job.submit >= last_submit,
                    "arrivals must be sorted by submit time (job {} at {} after {})",
                    a.job.id,
                    a.job.submit,
                    last_submit
                );
                last_submit = a.job.submit;
                self.core.submit(a.job, a.demand).expect("arrival stream reused a job id");
            }

            // Apply every completion at this instant.
            while self.events.peek().is_some_and(|Reverse(e)| e.time <= now) {
                let Reverse(ev) = self.events.pop().expect("peeked event vanished");
                let id = self.core.job(ev.idx).id;
                self.core.job_finished(id, now).expect("completion event for a job not running");
                makespan = makespan.max(now);
            }

            // One scheduling invocation (a no-op on an empty queue);
            // apply its start decisions as future completion events.
            self.started.clear();
            self.started.extend(self.core.invoke(now).iter().filter_map(|d| match *d {
                Decision::Start { idx, .. } => Some(idx),
                Decision::Reserve { .. } => None,
            }));
            for i in 0..self.started.len() {
                let idx = self.started[i];
                let end = now + self.core.job(idx).runtime;
                self.events.push(Reverse(Event { time: end, seq: self.seq, idx }));
                self.seq += 1;
            }
        }

        self.core.assert_drained();
        debug_assert_eq!(
            self.core.queue_len(),
            0,
            "{} jobs left waiting at drain (dependency cycle?)",
            self.core.queue_len()
        );
        let invocations = self.core.invocations();
        self.core.end_of_stream(makespan);
        EngineSummary { makespan, invocations, jobs: self.core.jobs_submitted() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_policies::{GaParams, PolicyKind};
    use bbsched_sched::{JobStart, Recorder};

    fn system(nodes: u32) -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn arrival(id: u64, submit: f64, nodes: u32, runtime: f64) -> Arrival {
        Arrival {
            job: Job::new(id, submit, nodes, runtime, runtime * 2.0),
            demand: JobDemand::cpu_bb(nodes, 0.0),
        }
    }

    fn policy() -> Box<dyn SelectionPolicy> {
        PolicyKind::Baseline.build(GaParams::default())
    }

    #[test]
    fn engine_streams_arrivals_from_iterator() {
        // The arrival source is a lazy generator, never a materialized
        // trace: 50 jobs, one every 2 s, on a 4-node machine.
        let sys = system(4);
        let mut recorder = Recorder::new();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder]).unwrap();
        let arrivals = (0..50u64).map(|i| arrival(i, i as f64 * 2.0, 2, 10.0));
        let summary = engine.run(arrivals);
        assert_eq!(summary.jobs, 50);
        assert_eq!(recorder.records().len(), 50);
        assert!(summary.makespan > 0.0);
    }

    #[test]
    fn unsorted_arrivals_panic() {
        let sys = system(4);
        let engine = Engine::new(&sys, SimConfig::default(), policy(), vec![]).unwrap();
        let arrivals = vec![arrival(0, 10.0, 1, 5.0), arrival(1, 3.0, 1, 5.0)];
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(arrivals)));
        assert!(result.is_err(), "time-regressing arrivals must be rejected");
    }

    #[test]
    fn summary_counts_match_recorder() {
        let sys = system(8);
        let mut recorder = Recorder::new();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder]).unwrap();
        let arrivals: Vec<Arrival> = (0..20u64).map(|i| arrival(i, i as f64, 3, 40.0)).collect();
        let summary = engine.run(arrivals);
        let result = recorder.into_result("Baseline".into(), "FCFS".into(), sys.clone(), 0);
        assert_eq!(result.invocations, summary.invocations);
        assert_eq!(result.makespan, summary.makespan);
        assert_eq!(result.records.len(), summary.jobs);
    }

    #[test]
    fn multiple_observers_see_the_same_run() {
        #[derive(Default)]
        struct Counter {
            starts: usize,
            finishes: usize,
            windows: usize,
            sim_ends: usize,
        }
        impl SchedObserver for Counter {
            fn on_job_started(&mut self, _s: &JobStart<'_>) {
                self.starts += 1;
            }
            fn on_job_finished(&mut self, _n: f64, _j: &Job, _d: &JobDemand) {
                self.finishes += 1;
            }
            fn on_window_built(&mut self, _n: f64, _w: &[u64]) {
                self.windows += 1;
            }
            fn on_sim_end(&mut self, _m: f64, _i: u64) {
                self.sim_ends += 1;
            }
        }
        let sys = system(4);
        let mut recorder = Recorder::new();
        let mut counter = Counter::default();
        let engine =
            Engine::new(&sys, SimConfig::default(), policy(), vec![&mut recorder, &mut counter])
                .unwrap();
        let arrivals: Vec<Arrival> = (0..12u64).map(|i| arrival(i, i as f64, 2, 20.0)).collect();
        let summary = engine.run(arrivals);
        assert_eq!(counter.starts, 12);
        assert_eq!(counter.finishes, 12);
        assert_eq!(counter.sim_ends, 1);
        assert_eq!(counter.windows as u64, summary.invocations);
        assert_eq!(recorder.records().len(), counter.starts);
    }
}
