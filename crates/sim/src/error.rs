//! Typed errors for simulator construction.

use bbsched_workloads::SystemConfigError;

/// Everything that can go wrong preparing a [`crate::Simulator`].
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The system configuration failed validation.
    System(SystemConfigError),
    /// The window configuration failed validation.
    InvalidWindow(String),
    /// The dynamic-window configuration failed validation (e.g. `min`
    /// exceeding `max`, which used to panic mid-simulation inside
    /// `clamp`).
    InvalidDynamicWindow(String),
    /// A trace job can never fit the machine and
    /// [`crate::SimConfig::clamp_impossible`] is off.
    ImpossibleJob {
        /// Trace job id.
        id: u64,
        /// Name of the system the job cannot fit.
        system: String,
        /// Requested compute nodes.
        nodes: u32,
        /// Requested shared burst buffer (GB).
        bb_gb: f64,
        /// Requested local SSD per node (GB).
        ssd_gb_per_node: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::System(e) => write!(f, "{e}"),
            SimError::InvalidWindow(msg) => write!(f, "{msg}"),
            SimError::InvalidDynamicWindow(msg) => write!(f, "invalid dynamic window: {msg}"),
            SimError::ImpossibleJob { id, system, nodes, bb_gb, ssd_gb_per_node } => write!(
                f,
                "job {id} can never fit system '{system}' (nodes {nodes}, bb {bb_gb} GB, ssd {ssd_gb_per_node} GB/node)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemConfigError> for SimError {
    fn from(e: SystemConfigError) -> Self {
        SimError::System(e)
    }
}
