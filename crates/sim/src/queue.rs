//! The waiting queue: base-scheduler priority order, kept incrementally.
//!
//! [`QueueManager`] owns the queue of waiting job indices and the ordering
//! discipline of the configured [`BaseScheduler`]:
//!
//! * **FCFS** is a *static* total order — `(submit, id)` ascending — so
//!   the queue is kept sorted incrementally: each arrival is inserted at
//!   its binary-searched position and no per-invocation re-sort ever
//!   happens. This replaces the monolithic loop's full
//!   `O(n log n)`-per-invocation sort with `O(log n)` per arrival.
//! * **WFP** scores are time-dependent (`(wait/walltime)³ × nodes` grows
//!   every second), so the queue *must* be re-scored and re-sorted at
//!   every scheduling invocation, exactly as the old loop did.
//!
//! Both disciplines produce byte-identical orderings to the old full
//! re-sort: FCFS because `(submit, id)` is the same strict total order the
//! sort used, WFP because the sort itself is unchanged. A property test
//! below checks the FCFS claim on random queues.

use crate::base_sched::BaseScheduler;
use bbsched_workloads::Job;

/// The engine's waiting queue, ordered by base-scheduler priority.
#[derive(Clone, Debug)]
pub struct QueueManager {
    base: BaseScheduler,
    /// Indices into the engine's job table, highest priority first.
    queue: Vec<usize>,
}

impl QueueManager {
    /// An empty queue under the given base scheduler.
    pub fn new(base: BaseScheduler) -> Self {
        Self { base, queue: Vec::new() }
    }

    /// The ordering discipline.
    pub fn base(&self) -> BaseScheduler {
        self.base
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The queue in priority order (valid after [`QueueManager::order`]).
    pub fn as_slice(&self) -> &[usize] {
        &self.queue
    }

    /// Enqueues an arrived job.
    ///
    /// FCFS inserts at the job's sorted `(submit, id)` position; WFP
    /// appends (its order is rebuilt per invocation anyway).
    pub fn push(&mut self, idx: usize, jobs: &[Job]) {
        match self.base {
            BaseScheduler::Fcfs => {
                let key = |i: usize| (jobs[i].submit, jobs[i].id);
                let (submit, id) = key(idx);
                let pos = self.queue.partition_point(|&q| {
                    let (qs, qid) = key(q);
                    qs.total_cmp(&submit).then(qid.cmp(&id)).is_lt()
                });
                self.queue.insert(pos, idx);
            }
            BaseScheduler::Wfp => self.queue.push(idx),
        }
    }

    /// Establishes priority order for a scheduling invocation at `now`.
    /// FCFS is already sorted (checked in debug builds); WFP re-scores.
    pub fn order(&mut self, jobs: &[Job], now: f64) {
        match self.base {
            BaseScheduler::Fcfs => debug_assert!(
                self.queue.windows(2).all(|w| {
                    let a = (jobs[w[0]].submit, jobs[w[0]].id);
                    let b = (jobs[w[1]].submit, jobs[w[1]].id);
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_lt()
                }),
                "incremental FCFS order violated"
            ),
            BaseScheduler::Wfp => self.base.order(&mut self.queue, jobs, now),
        }
    }

    /// Removes every started job, preserving the order of the rest.
    pub fn remove_started(&mut self, started: &std::collections::HashSet<usize>) {
        if !started.is_empty() {
            self.queue.retain(|i| !started.contains(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_workloads::Job;
    use proptest::prelude::*;

    fn jobs_from(submits: &[(f64, u64)]) -> Vec<Job> {
        submits.iter().map(|&(s, id)| Job::new(id, s, 1, 10.0, 20.0)).collect()
    }

    #[test]
    fn fcfs_incremental_insert_orders_by_submit_then_id() {
        let jobs = jobs_from(&[(5.0, 0), (1.0, 1), (5.0, 2), (0.5, 3)]);
        let mut q = QueueManager::new(BaseScheduler::Fcfs);
        for i in 0..jobs.len() {
            q.push(i, &jobs);
        }
        q.order(&jobs, 100.0);
        assert_eq!(q.as_slice(), &[3, 1, 0, 2]);
    }

    #[test]
    fn wfp_reorders_per_invocation() {
        // Equal submit; WFP favours the larger job once waiting.
        let jobs = vec![Job::new(0, 0.0, 2, 10.0, 100.0), Job::new(1, 0.0, 512, 10.0, 100.0)];
        let mut q = QueueManager::new(BaseScheduler::Wfp);
        q.push(0, &jobs);
        q.push(1, &jobs);
        q.order(&jobs, 50.0);
        assert_eq!(q.as_slice(), &[1, 0]);
    }

    #[test]
    fn remove_started_preserves_order() {
        let jobs = jobs_from(&[(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]);
        let mut q = QueueManager::new(BaseScheduler::Fcfs);
        for i in 0..jobs.len() {
            q.push(i, &jobs);
        }
        let started: std::collections::HashSet<usize> = [1, 3].into_iter().collect();
        q.remove_started(&started);
        assert_eq!(q.as_slice(), &[0, 2]);
    }

    proptest! {
        /// Satellite invariant: pushing arrivals one by one into the FCFS
        /// queue yields exactly the order a full re-sort would produce, on
        /// random queues with duplicate submits and shuffled arrival order.
        #[test]
        fn prop_fcfs_incremental_equals_full_resort(
            submits in proptest::collection::vec((0u32..50, 0u64..1000), 1..60),
        ) {
            // Dedup ids (queue entries are distinct jobs).
            let mut seen = std::collections::HashSet::new();
            let submits: Vec<(f64, u64)> = submits
                .into_iter()
                .filter(|&(_, id)| seen.insert(id))
                .map(|(s, id)| (s as f64 * 0.5, id))
                .collect();
            let jobs = jobs_from(&submits);

            let mut incremental = QueueManager::new(BaseScheduler::Fcfs);
            for i in 0..jobs.len() {
                incremental.push(i, &jobs);
            }
            incremental.order(&jobs, 1_000.0);

            let mut full: Vec<usize> = (0..jobs.len()).collect();
            BaseScheduler::Fcfs.order(&mut full, &jobs, 1_000.0);

            prop_assert_eq!(incremental.as_slice(), &full[..]);
        }
    }
}
