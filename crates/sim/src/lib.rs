//! # bbsched-sim
//!
//! A discrete-event HPC cluster simulator purpose-built for the BBSched
//! evaluation (§4): compute nodes, a shared burst buffer (optionally with a
//! persistently reserved share, as on Cori), heterogeneous local SSDs (§5),
//! priority-ordered waiting queues under **FCFS** (Cori/Slurm) or **WFP**
//! (Theta/Cobalt) base scheduling, window-based multi-resource job
//! selection through any [`bbsched_policies::SelectionPolicy`], the §3.1
//! starvation bound, and multi-resource **EASY backfilling** ("all the
//! methods use EASY backfilling to mitigate resource fragmentation",
//! §4.3).
//!
//! The simulator is trace-driven and fully deterministic: the same trace,
//! system, policy, and seed produce byte-identical results.
//!
//! ## Architecture
//!
//! Since the service-core extraction, this crate is a *driver* of the
//! scheduler-service core in `bbsched-sched`: the six-phase scheduling
//! invocation, the queue, the allocation ledger, the backfilling
//! strategies, and the observer callbacks all live there, behind the
//! snapshot-in/decisions-out [`bbsched_sched::SchedCore`] API. What
//! remains here is exactly the discrete-event machinery:
//!
//! * [`engine`] — the event loop: virtual time, the completion-event
//!   heap, and the translation of [`bbsched_sched::Decision::Start`]s
//!   into future completion events; consumes arrivals from any sorted
//!   iterator (traces can stream);
//! * [`simulator`] — configuration, trace-intake demand clamping, and the
//!   [`Simulator`] facade that wires a trace into the engine.
//!
//! Everything the core owns is re-exported here under its historical
//! name ([`SimObserver`] for [`bbsched_sched::SchedObserver`],
//! [`SimError`] for [`bbsched_sched::SchedError`], and the rest
//! unchanged), so existing simulator clients and the frozen golden
//! suites compile untouched. The second driver of the same core — the
//! online streaming replayer behind `cli replay` — lives in
//! [`bbsched_sched::replay`]; both drivers emit byte-identical decision
//! streams for the same events.
//!
//! ```
//! use bbsched_sim::{SimConfig, Simulator};
//! use bbsched_policies::PolicyKind;
//! use bbsched_workloads::{generate, GeneratorConfig, MachineProfile};
//!
//! let profile = MachineProfile::theta().scaled(0.05);
//! let trace = generate(&profile, &GeneratorConfig { n_jobs: 200, ..Default::default() });
//! let cfg = SimConfig::default();
//! let ga = bbsched_policies::GaParams { generations: 50, ..Default::default() };
//! let result = Simulator::new(&profile.system, &trace, cfg)
//!     .unwrap()
//!     .run(PolicyKind::BbSched.build(ga));
//! assert_eq!(result.records.len(), 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod simulator;

pub use engine::{Arrival, Engine, EngineSnapshot, EngineSummary};
pub use simulator::{SimConfig, Simulator, WarmStart};

// The scheduling machinery moved to the service core; re-export it under
// the names this crate always had so simulator clients keep compiling.
pub use bbsched_sched::{
    clamp_demand, shadow_and_leftover, AllocLedger, AvailabilityProfile, BackfillAlgorithm,
    BackfillCtx, BackfillScope, BackfillStrategy, BaseScheduler, ConservativeBackfill, Decision,
    DecisionLog, DynamicWindow, EasyBackfill, JobRecord, JobSet, JobStart, LedgerDelta,
    LegacyProfile, QueueManager, RebuildPerPassConservative, Recorder, ReleaseMirror, RunningJob,
    SchedCore, SimResult, StartReason,
};

/// The core's observer trait under its historical simulator name.
pub use bbsched_sched::SchedObserver as SimObserver;

/// The core's error type under its historical simulator name.
pub use bbsched_sched::SchedError as SimError;
