//! # bbsched-sim
//!
//! A discrete-event HPC cluster simulator purpose-built for the BBSched
//! evaluation (§4): compute nodes, a shared burst buffer (optionally with a
//! persistently reserved share, as on Cori), heterogeneous local SSDs (§5),
//! priority-ordered waiting queues under **FCFS** (Cori/Slurm) or **WFP**
//! (Theta/Cobalt) base scheduling, window-based multi-resource job
//! selection through any [`bbsched_policies::SelectionPolicy`], the §3.1
//! starvation bound, and multi-resource **EASY backfilling** ("all the
//! methods use EASY backfilling to mitigate resource fragmentation",
//! §4.3).
//!
//! The simulator is trace-driven and fully deterministic: the same trace,
//! system, policy, and seed produce byte-identical results.
//!
//! ```
//! use bbsched_sim::{SimConfig, Simulator};
//! use bbsched_policies::PolicyKind;
//! use bbsched_workloads::{generate, GeneratorConfig, MachineProfile};
//!
//! let profile = MachineProfile::theta().scaled(0.05);
//! let trace = generate(&profile, &GeneratorConfig { n_jobs: 200, ..Default::default() });
//! let cfg = SimConfig::default();
//! let ga = bbsched_policies::GaParams { generations: 50, ..Default::default() };
//! let result = Simulator::new(&profile.system, &trace, cfg)
//!     .unwrap()
//!     .run(PolicyKind::BbSched.build(ga));
//! assert_eq!(result.records.len(), 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod base_sched;
pub mod error;
pub mod profile;
pub mod record;
pub mod simulator;

pub use base_sched::BaseScheduler;
pub use error::SimError;
pub use profile::AvailabilityProfile;
pub use record::{JobRecord, SimResult, StartReason};
pub use simulator::{BackfillAlgorithm, BackfillScope, SimConfig, Simulator};
