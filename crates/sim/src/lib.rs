//! # bbsched-sim
//!
//! A discrete-event HPC cluster simulator purpose-built for the BBSched
//! evaluation (§4): compute nodes, a shared burst buffer (optionally with a
//! persistently reserved share, as on Cori), heterogeneous local SSDs (§5),
//! priority-ordered waiting queues under **FCFS** (Cori/Slurm) or **WFP**
//! (Theta/Cobalt) base scheduling, window-based multi-resource job
//! selection through any [`bbsched_policies::SelectionPolicy`], the §3.1
//! starvation bound, and multi-resource **EASY backfilling** ("all the
//! methods use EASY backfilling to mitigate resource fragmentation",
//! §4.3).
//!
//! The simulator is trace-driven and fully deterministic: the same trace,
//! system, policy, and seed produce byte-identical results.
//!
//! ## Architecture
//!
//! The crate is layered around a small discrete-event core:
//!
//! * [`engine`] — the event loop and the six-phase scheduling invocation;
//!   consumes arrivals from any sorted iterator (traces can stream);
//! * [`queue`] — the waiting queue under the base scheduler's order
//!   (incrementally sorted for FCFS, re-scored per invocation for WFP);
//! * [`alloc`] — the allocation ledger: pool accounting with conservation
//!   checks, the incrementally maintained release order, and a
//!   generation-numbered start/finish delta log;
//! * [`backfill`] — EASY and conservative backfilling behind the
//!   [`BackfillStrategy`] trait, plus the availability-profile machinery:
//!   a persistent profile refolded in place from a ledger-synced release
//!   mirror, with binary-searched, skyline-indexed queries (DESIGN.md
//!   §10);
//! * [`legacy_profile`] — the frozen rebuild-per-pass conservative path,
//!   kept as the equivalence oracle and benchmark reference;
//! * [`jobset`] — the bitset over job indices used for per-invocation
//!   started-job tracking and queue cleanup;
//! * [`observer`] — the [`SimObserver`] callbacks everything observable
//!   flows through; [`Recorder`] collects the classic [`SimResult`];
//! * [`simulator`] — configuration, demand clamping, and the
//!   [`Simulator`] facade that wires a trace into the engine.
//!
//! ```
//! use bbsched_sim::{SimConfig, Simulator};
//! use bbsched_policies::PolicyKind;
//! use bbsched_workloads::{generate, GeneratorConfig, MachineProfile};
//!
//! let profile = MachineProfile::theta().scaled(0.05);
//! let trace = generate(&profile, &GeneratorConfig { n_jobs: 200, ..Default::default() });
//! let cfg = SimConfig::default();
//! let ga = bbsched_policies::GaParams { generations: 50, ..Default::default() };
//! let result = Simulator::new(&profile.system, &trace, cfg)
//!     .unwrap()
//!     .run(PolicyKind::BbSched.build(ga));
//! assert_eq!(result.records.len(), 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod backfill;
pub mod base_sched;
pub mod engine;
pub mod error;
pub mod jobset;
pub mod legacy_profile;
pub mod observer;
pub mod profile;
pub mod queue;
pub mod record;
pub mod simulator;

pub use alloc::{AllocLedger, LedgerDelta, RunningJob};
pub use backfill::{
    shadow_and_leftover, AvailabilityProfile, BackfillCtx, BackfillStrategy, ConservativeBackfill,
    EasyBackfill, ReleaseMirror,
};
pub use base_sched::BaseScheduler;
pub use engine::{Arrival, Engine, EngineSummary};
pub use error::SimError;
pub use jobset::JobSet;
pub use legacy_profile::{LegacyProfile, RebuildPerPassConservative};
pub use observer::{JobStart, Recorder, SimObserver};
pub use queue::QueueManager;
pub use record::{JobRecord, SimResult, StartReason};
pub use simulator::{BackfillAlgorithm, BackfillScope, DynamicWindow, SimConfig, Simulator};
