//! Simulation configuration and the trace-driven [`Simulator`] facade.
//!
//! The discrete-event mechanics live in [`crate::engine`]; the scheduling
//! logic itself lives in the service core (`bbsched-sched`). This module
//! holds what surrounds them: [`SimConfig`] (validated up front, converted
//! to a [`bbsched_sched::SchedConfig`] for the core), demand clamping
//! against machine capacity via [`bbsched_sched::clamp_demand`], and
//! [`Simulator`] — the compatibility wrapper that wires a
//! [`bbsched_workloads::Trace`] into the engine with a [`crate::Recorder`]
//! attached and returns the classic [`SimResult`]. Additional observers
//! ride along via [`Simulator::run_observed`].

use crate::engine::{Arrival, Engine, EngineSnapshot};
use crate::{Recorder, SimError, SimObserver, SimResult};
use bbsched_core::problem::JobDemand;
use bbsched_core::window::WindowConfig;
use bbsched_policies::SelectionPolicy;
use bbsched_sched::{
    clamp_demand, BackfillAlgorithm, BackfillScope, BaseScheduler, DynamicWindow, SchedConfig,
};
use bbsched_workloads::{SystemConfig, Trace};
use serde::{Deserialize, Serialize};

/// Simulator configuration: the core's [`SchedConfig`] knobs plus the
/// simulator-only `clamp_impossible` trace-intake policy.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base scheduler ordering the queue (FCFS for Cori, WFP for Theta).
    pub base: BaseScheduler,
    /// Window size and starvation bound (§3.1).
    pub window: WindowConfig,
    /// Clamp jobs whose demand exceeds total capacity instead of erroring.
    /// This governs trace intake only and never reaches the core (the
    /// online replay driver always clamps).
    pub clamp_impossible: bool,
    /// Maximum queued jobs examined per backfilling pass (guards the
    /// per-invocation cost on pathological queues; only relevant with
    /// [`BackfillScope::Queue`]).
    pub max_backfill_scan: usize,
    /// Which jobs EASY backfilling may consider.
    pub backfill: BackfillScope,
    /// Backfilling algorithm: EASY (paper default) or conservative.
    pub backfill_algorithm: BackfillAlgorithm,
    /// Optional dynamic window sizing (§3.1: "the window size could be
    /// dynamically adjusted in response to system status. Job queue length
    /// often changes."). When set, overrides `window.size` per invocation.
    pub dynamic_window: Option<DynamicWindow>,
}

impl SimConfig {
    /// The core configuration this simulator configuration describes —
    /// everything except `clamp_impossible`, which is trace-intake policy,
    /// not scheduling policy.
    pub fn sched(&self) -> SchedConfig {
        SchedConfig {
            base: self.base,
            window: self.window,
            max_backfill_scan: self.max_backfill_scan,
            backfill: self.backfill,
            backfill_algorithm: self.backfill_algorithm,
            dynamic_window: self.dynamic_window,
        }
    }

    /// Validates the whole configuration. Called by [`Simulator::new`] and
    /// [`Engine::new`], so an invalid config is a typed [`SimError`], never
    /// a mid-simulation panic.
    pub fn validate(&self) -> Result<(), SimError> {
        self.sched().validate()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        let core = SchedConfig::default();
        Self {
            base: core.base,
            window: core.window,
            clamp_impossible: true,
            max_backfill_scan: core.max_backfill_scan,
            backfill: core.backfill,
            backfill_algorithm: core.backfill_algorithm,
            dynamic_window: core.dynamic_window,
        }
    }
}

/// The trace-driven cluster simulator. Construct with [`Simulator::new`],
/// consume with [`Simulator::run`] (or [`Simulator::run_observed`] to
/// attach extra observers).
///
/// This is a compatibility facade over the driver API: it clamps the
/// trace's demands to machine capacity, streams the jobs into an
/// [`Engine`] (a discrete-event driver of the scheduler-service core)
/// with a [`Recorder`] attached, and packages the recording as the
/// classic [`SimResult`]. Code that needs finer-grained control — online
/// submission, custom completion sources, raw decision streams — should
/// drive [`bbsched_sched::SchedCore`] directly or use
/// [`bbsched_sched::Replayer`].
pub struct Simulator<'t> {
    system: SystemConfig,
    trace: &'t Trace,
    cfg: SimConfig,
    /// Per-job demand after capacity clamping.
    demands: Vec<JobDemand>,
    clamped: usize,
}

impl<'t> Simulator<'t> {
    /// Prepares a simulation of `trace` on `system`.
    ///
    /// Jobs whose demand can never fit the machine make the queue head
    /// unschedulable and would deadlock any non-backfilling path; they are
    /// clamped to capacity when `cfg.clamp_impossible` is set (the count is
    /// reported in the result) and rejected with an error otherwise.
    pub fn new(system: &SystemConfig, trace: &'t Trace, cfg: SimConfig) -> Result<Self, SimError> {
        system.validate()?;
        cfg.validate()?;
        let mut clamped = 0usize;
        let mut demands = Vec::with_capacity(trace.len());
        for job in trace.jobs() {
            let (d, job_clamped) = clamp_demand(system, job);
            if job_clamped {
                if !cfg.clamp_impossible {
                    return Err(SimError::ImpossibleJob {
                        id: job.id,
                        system: system.name.clone(),
                        nodes: job.nodes,
                        bb_gb: job.bb_gb,
                        ssd_gb_per_node: job.ssd_gb_per_node,
                    });
                }
                clamped += 1;
            }
            demands.push(d);
        }
        Ok(Self { system: system.clone(), trace, cfg, demands, clamped })
    }

    /// The capacity-clamped demand of each trace job, in trace order.
    pub fn demands(&self) -> &[JobDemand] {
        &self.demands
    }

    /// How many jobs required clamping.
    pub fn clamped_jobs(&self) -> usize {
        self.clamped
    }

    /// The trace's arrivals (job + clamped demand) in submit order.
    fn arrivals(&self) -> impl Iterator<Item = Arrival> + '_ {
        self.trace
            .jobs()
            .iter()
            .cloned()
            .zip(self.demands.iter().copied())
            .map(|(job, demand)| Arrival { job, demand })
    }

    /// Runs the simulation under `policy` up to and including virtual time
    /// `t_fork` and captures the engine state there: the warmed-up common
    /// prefix that [`Simulator::continue_from`] branches into per-policy
    /// continuations (what-if forking, DESIGN.md §12). The warm segment
    /// runs unobserved; each continuation collects its own records.
    pub fn warm_until(
        &self,
        policy: Box<dyn SelectionPolicy>,
        t_fork: f64,
    ) -> Result<WarmStart, SimError> {
        let mut engine = Engine::new(&self.system, self.cfg.clone(), policy, vec![])
            .expect("configuration validated at construction");
        let mut arrivals = self.arrivals().peekable();
        engine.run_until(&mut arrivals, t_fork);
        let snapshot = engine.snapshot();
        let consumed = self.trace.len() - arrivals.count();
        Ok(WarmStart { snapshot, consumed })
    }

    /// Branches a continuation off a [`WarmStart`]: rebuilds the engine
    /// from the fork-point snapshot under `policy` (same name → the
    /// snapshotted policy state carries over; different name → the new
    /// policy starts fresh) and drains the rest of the trace. The result
    /// covers the continuation segment only — records of jobs started
    /// before the fork live in the shared prefix, not here.
    pub fn continue_from(
        &self,
        warm: &WarmStart,
        policy: Box<dyn SelectionPolicy>,
    ) -> Result<SimResult, SimError> {
        let policy_name = policy.name().to_string();
        let mut recorder = Recorder::new();
        {
            let observers: Vec<&mut dyn SimObserver> = vec![&mut recorder];
            let engine = Engine::restore(warm.snapshot.clone(), policy, observers)?;
            let summary = engine.run(self.arrivals().skip(warm.consumed));
            debug_assert_eq!(summary.jobs, self.trace.len(), "every job must run exactly once");
        }
        Ok(recorder.into_result(
            policy_name,
            self.cfg.base.name().to_string(),
            self.system.clone(),
            self.clamped,
        ))
    }

    /// Runs the simulation to completion under the given selection policy.
    pub fn run(self, policy: Box<dyn SelectionPolicy>) -> SimResult {
        self.run_shared(policy)
    }

    /// Runs the full simulation without consuming the simulator, so one
    /// prepared simulator (trace clamped once) can run many policies —
    /// the `compare` grid and the fork drivers share it by reference.
    pub fn run_shared(&self, policy: Box<dyn SelectionPolicy>) -> SimResult {
        self.run_observed_shared(policy, &mut [])
    }

    /// Runs the simulation with extra [`SimObserver`]s attached alongside
    /// the result-collecting [`Recorder`].
    pub fn run_observed(
        self,
        policy: Box<dyn SelectionPolicy>,
        extra: &mut [&mut dyn SimObserver],
    ) -> SimResult {
        self.run_observed_shared(policy, extra)
    }

    /// By-reference form of [`Simulator::run_observed`].
    pub fn run_observed_shared(
        &self,
        policy: Box<dyn SelectionPolicy>,
        extra: &mut [&mut dyn SimObserver],
    ) -> SimResult {
        let policy_name = policy.name().to_string();
        let mut recorder = Recorder::new();
        {
            let mut observers: Vec<&mut dyn SimObserver> = Vec::with_capacity(1 + extra.len());
            observers.push(&mut recorder);
            for o in extra.iter_mut() {
                observers.push(&mut **o);
            }
            let engine = Engine::new(&self.system, self.cfg.clone(), policy, observers)
                .expect("configuration validated at construction");
            let summary = engine.run(self.arrivals());
            debug_assert_eq!(summary.jobs, self.trace.len(), "every job must run exactly once");
        }
        recorder.into_result(
            policy_name,
            self.cfg.base.name().to_string(),
            self.system.clone(),
            self.clamped,
        )
    }
}

/// A warmed-up mid-trace state: the [`EngineSnapshot`] at the fork
/// instant plus how many leading trace jobs are already inside it.
/// Produced by [`Simulator::warm_until`], consumed (any number of times,
/// under any policies) by [`Simulator::continue_from`]. Serde-derived, so
/// a warm start can be checkpointed to disk like any other snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Engine state at the fork point.
    pub snapshot: EngineSnapshot,
    /// Leading trace jobs already submitted into the snapshot.
    pub consumed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_policies::{GaParams, PolicyKind};
    use bbsched_workloads::Job;

    fn system(nodes: u32, bb_tb: f64) -> SystemConfig {
        SystemConfig {
            name: "test".into(),
            nodes,
            bb_gb: bb_tb * 1000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn run_jobs(jobs: Vec<Job>, sys: &SystemConfig, kind: PolicyKind) -> SimResult {
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig::default();
        let ga = GaParams { generations: 60, ..GaParams::default() };
        Simulator::new(sys, &trace, cfg).unwrap().run(kind.build(ga))
    }

    #[test]
    fn single_job_runs_immediately() {
        let sys = system(10, 10.0);
        let r = run_jobs(vec![Job::new(0, 5.0, 4, 100.0, 200.0)], &sys, PolicyKind::Baseline);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].start, 5.0);
        assert_eq!(r.records[0].end, 105.0);
        assert_eq!(r.makespan, 105.0);
    }

    #[test]
    fn jobs_queue_when_resources_busy() {
        let sys = system(10, 10.0);
        let jobs = vec![Job::new(0, 0.0, 10, 100.0, 100.0), Job::new(1, 1.0, 10, 50.0, 50.0)];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "second job must wait for the first");
    }

    #[test]
    fn burst_buffer_is_a_real_constraint() {
        let sys = system(100, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 10, 100.0, 100.0).with_bb(8_000.0),
            Job::new(1, 1.0, 10, 100.0, 100.0).with_bb(8_000.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "BB contention must serialize the jobs");
    }

    #[test]
    fn easy_backfill_starts_small_job() {
        let sys = system(10, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 8, 100.0, 100.0),  // leaves 2 nodes free
            Job::new(1, 1.0, 10, 100.0, 100.0), // head: must wait to t=100
            Job::new(2, 2.0, 2, 50.0, 50.0),    // fits now, ends at 52 < 100
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j2.start, 2.0, "small job should backfill immediately");
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "head must not be delayed by backfill");
        assert!(r.backfilled >= 1);
    }

    #[test]
    fn backfill_never_delays_head() {
        let sys = system(10, 10.0);
        // Job 2's walltime (80) would run past the shadow (100) and it
        // needs 5 nodes, but the head needs all 10 at t=100: no leftover.
        let jobs = vec![
            Job::new(0, 0.0, 10, 100.0, 100.0),
            Job::new(1, 1.0, 10, 100.0, 100.0),
            Job::new(2, 2.0, 5, 80.0, 150.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j1.start, 100.0);
        assert!(j2.start >= 100.0, "walltime-crossing backfill must not start");
    }

    #[test]
    fn backfill_uses_leftover_when_head_leaves_room() {
        let sys = system(10, 10.0);
        // Head needs only 6 nodes at shadow; a 4-node long job can coexist.
        let jobs = vec![
            Job::new(0, 0.0, 6, 100.0, 100.0), // leaves 4 nodes free
            Job::new(1, 1.0, 6, 100.0, 100.0), // head: 6 > 4, waits to t=100
            Job::new(2, 2.0, 4, 500.0, 500.0), // crosses shadow, fits leftover
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j2.start, 2.0, "leftover-fitting backfill should start now");
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0);
    }

    #[test]
    fn dependencies_hold_jobs_out_of_the_window() {
        let sys = system(10, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 2, 100.0, 100.0),
            Job::new(1, 1.0, 2, 50.0, 50.0).with_deps(vec![0]),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert!(j1.start >= 100.0, "dependent job must wait for completion");
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let sys = system(64, 100.0);
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                Job::new(
                    i,
                    i as f64 * 3.0,
                    1 + (i % 32) as u32,
                    60.0 + (i % 7) as f64 * 30.0,
                    400.0,
                )
                .with_bb(if i % 3 == 0 { 20_000.0 } else { 0.0 })
            })
            .collect();
        for kind in PolicyKind::main_roster() {
            let r = run_jobs(jobs.clone(), &sys, kind);
            assert_eq!(r.records.len(), 40, "{}", kind.name());
            for rec in &r.records {
                assert!(rec.start >= rec.submit, "{}", kind.name());
                assert!((rec.end - rec.start - rec.runtime).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let sys = system(32, 50.0);
        let jobs: Vec<Job> =
            (0..30).map(|i| Job::new(i, i as f64, 1 + (i % 16) as u32, 100.0, 200.0)).collect();
        let a = run_jobs(jobs.clone(), &sys, PolicyKind::BbSched);
        let b = run_jobs(jobs, &sys, PolicyKind::BbSched);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn impossible_job_is_clamped_and_completes() {
        let sys = system(10, 1.0);
        let jobs = vec![Job::new(0, 0.0, 100, 10.0, 10.0).with_bb(9_999.0)];
        let trace = Trace::from_jobs(jobs).unwrap();
        let sim = Simulator::new(&sys, &trace, SimConfig::default()).unwrap();
        assert_eq!(sim.clamped_jobs(), 1);
        assert_eq!(sim.demands()[0].nodes, 10, "demand clamped to capacity");
        let r = sim.run(PolicyKind::Baseline.build(GaParams::default()));
        assert_eq!(r.clamped_jobs, 1);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn impossible_job_errors_without_clamping() {
        let sys = system(10, 1.0);
        let jobs = vec![Job::new(0, 0.0, 100, 10.0, 10.0)];
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig { clamp_impossible: false, ..SimConfig::default() };
        assert!(Simulator::new(&sys, &trace, cfg).is_err());
    }

    #[test]
    fn wfp_base_runs_clean() {
        let sys = system(32, 10.0);
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, i as f64 * 5.0, 4 + (i % 4) as u32 * 8, 200.0, 400.0))
            .collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()));
        assert_eq!(r.records.len(), 20);
        assert_eq!(r.base, "WFP");
    }

    #[test]
    fn ssd_system_accounts_waste() {
        let sys = SystemConfig {
            name: "ssd".into(),
            nodes: 8,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 4,
            nodes_256: 4,
            extra_resources: Vec::new(),
        };
        let jobs = vec![
            Job::new(0, 0.0, 2, 100.0, 100.0).with_ssd(200.0),
            Job::new(1, 0.0, 2, 100.0, 100.0).with_ssd(64.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j0 = r.records.iter().find(|x| x.id == 0).unwrap();
        assert_eq!(j0.assignment.n256(), 2);
        assert_eq!(j0.wasted_ssd_gb, 2.0 * (256.0 - 200.0));
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.assignment.n128(), 2);
        assert_eq!(j1.wasted_ssd_gb, 2.0 * (128.0 - 64.0));
    }

    #[test]
    fn dynamic_window_sizing_math() {
        let d = DynamicWindow { min: 10, max: 50, queue_fraction: 0.25 };
        assert_eq!(d.size_for(0), 10);
        assert_eq!(d.size_for(40), 10);
        assert_eq!(d.size_for(100), 25);
        assert_eq!(d.size_for(1_000), 50);
        let tiny = DynamicWindow { min: 0, max: 5, queue_fraction: 0.1 };
        assert_eq!(tiny.size_for(0), 1, "window never collapses to zero");
    }

    #[test]
    fn inverted_dynamic_window_never_panics() {
        // Regression: `target.clamp(min, max)` panicked when min > max.
        // `size_for` must now be total for any inputs.
        let broken = DynamicWindow { min: 50, max: 10, queue_fraction: 0.25 };
        for q in [0usize, 40, 100, 10_000] {
            let size = broken.size_for(q);
            assert!(size >= 1, "queue {q} produced size {size}");
        }
    }

    #[test]
    fn inverted_dynamic_window_rejected_at_construction() {
        let sys = system(10, 10.0);
        let trace = Trace::from_jobs(vec![Job::new(0, 0.0, 1, 1.0, 2.0)]).unwrap();
        let cfg = SimConfig {
            dynamic_window: Some(DynamicWindow { min: 50, max: 10, queue_fraction: 0.25 }),
            ..SimConfig::default()
        };
        match Simulator::new(&sys, &trace, cfg).map(|_| ()) {
            Err(SimError::InvalidDynamicWindow(msg)) => {
                assert!(msg.contains("min"), "message should name the bad field: {msg}");
            }
            other => panic!("expected InvalidDynamicWindow, got {other:?}"),
        }
    }

    #[test]
    fn bad_queue_fraction_rejected() {
        for frac in [f64::NAN, f64::INFINITY, -0.5] {
            let d = DynamicWindow { min: 1, max: 10, queue_fraction: frac };
            assert!(
                matches!(d.validate(), Err(SimError::InvalidDynamicWindow(_))),
                "fraction {frac} must be rejected"
            );
        }
    }

    #[test]
    fn dynamic_window_simulation_completes() {
        let sys = system(32, 50.0);
        let jobs: Vec<Job> = (0..60)
            .map(|i| Job::new(i, i as f64 * 2.0, 1 + (i % 16) as u32, 120.0, 240.0))
            .collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg =
            SimConfig { dynamic_window: Some(DynamicWindow::default()), ..SimConfig::default() };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::BinPacking.build(GaParams::default()));
        assert_eq!(r.records.len(), 60);
    }

    #[test]
    fn conservative_backfill_respects_all_reservations() {
        let sys = system(10, 10.0);
        // Running: 6 nodes until t=100 (est), 4 free. Waiting (FCFS):
        //  A (6 nodes, wall 100)  -> blocked, reserved at t=100
        //  B (4 nodes, wall 300)  -> fits now AND fits A's leftover at the
        //     reservation (10 - 6 = 4), so conservative starts it at t=2.
        //  C (2 nodes, wall 500)  -> 0 nodes free after B starts; and once
        //     A+B hold all 10 nodes from t=100, C cannot start before a
        //     reservation hole opens.
        let jobs = vec![
            Job::new(0, 0.0, 6, 100.0, 100.0),
            Job::new(1, 1.0, 6, 100.0, 100.0),
            Job::new(2, 2.0, 4, 250.0, 300.0),
            Job::new(3, 3.0, 2, 400.0, 500.0),
        ];
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig {
            backfill_algorithm: BackfillAlgorithm::Conservative,
            ..SimConfig::default()
        };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()));
        let start = |id: u64| r.records.iter().find(|x| x.id == id).unwrap().start;
        assert_eq!(start(1), 100.0, "A starts at its reservation");
        assert_eq!(start(2), 2.0, "B fits A's leftover and starts now");
        assert!(
            start(3) >= 100.0,
            "C must not collide with the A+B reservation window (started {})",
            start(3)
        );
        assert_eq!(r.records.len(), 4);
    }

    #[test]
    fn conservative_and_easy_agree_on_uncontended_traces() {
        let sys = system(100, 100.0);
        let jobs: Vec<Job> = (0..20).map(|i| Job::new(i, i as f64 * 5.0, 4, 50.0, 100.0)).collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let run = |alg| {
            let cfg = SimConfig { backfill_algorithm: alg, ..SimConfig::default() };
            Simulator::new(&sys, &trace, cfg)
                .unwrap()
                .run(PolicyKind::Baseline.build(GaParams::default()))
        };
        let easy = run(BackfillAlgorithm::Easy);
        let cons = run(BackfillAlgorithm::Conservative);
        // Nothing ever blocks, so both disciplines start every job on
        // arrival.
        for (a, b) in easy.records.iter().zip(&cons.records) {
            assert_eq!(a.start, b.start);
        }
    }

    /// Continuing from a warm start under the *same* policy reproduces
    /// the uninterrupted run's post-fork records exactly; continuing
    /// under *different* policies yields per-policy what-if branches that
    /// all drain the trace.
    #[test]
    fn warm_start_forks_into_per_policy_continuations() {
        let sys = system(16, 20.0);
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                Job::new(i, i as f64 * 4.0, 1 + (i % 8) as u32, 50.0 + (i % 5) as f64 * 20.0, 300.0)
                    .with_bb(if i % 4 == 0 { 3_000.0 } else { 0.0 })
            })
            .collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let sim = Simulator::new(&sys, &trace, SimConfig::default()).unwrap();
        let ga = GaParams { generations: 40, ..GaParams::default() };
        let build = |k: PolicyKind| k.build(ga);

        let t_fork = 80.0;
        let warm = sim.warm_until(build(PolicyKind::Baseline), t_fork).unwrap();
        assert!(warm.consumed > 0 && warm.consumed < trace.len(), "fork lands mid-trace");

        // Same policy: post-fork records must match the uninterrupted run.
        let full = Simulator::new(&sys, &trace, SimConfig::default())
            .unwrap()
            .run(build(PolicyKind::Baseline));
        let cont = sim.continue_from(&warm, build(PolicyKind::Baseline)).unwrap();
        let full_tail: Vec<_> = full.records.iter().filter(|r| r.start > t_fork).collect();
        let cont_records: Vec<_> = cont.records.iter().collect();
        assert_eq!(cont_records, full_tail, "same-policy continuation must match the full run");

        // Different policies: each branch drains the remaining jobs.
        for kind in [PolicyKind::BbSched, PolicyKind::BinPacking] {
            let branch = sim.continue_from(&warm, build(kind)).unwrap();
            assert_eq!(branch.policy, kind.name());
            let started_pre_fork = trace.len() - full_tail.len();
            assert_eq!(
                branch.records.len() + started_pre_fork,
                trace.len(),
                "{} branch must start every remaining job",
                kind.name()
            );
        }
    }

    #[test]
    fn starvation_bound_eventually_forces_jobs() {
        // A stream of tiny jobs keeps arriving; one large job would starve
        // under a policy that always prefers the small ones. With the bound
        // it must eventually run.
        let sys = system(10, 10.0);
        let mut jobs = vec![Job::new(0, 0.0, 10, 5.0, 10.0)];
        for i in 1..200 {
            jobs.push(Job::new(i, i as f64 * 0.5, 1, 30.0, 60.0));
        }
        // Large job arrives early but small jobs keep the machine busy.
        jobs.push(Job::new(200, 1.0, 9, 10.0, 20.0));
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig {
            window: WindowConfig { size: 10, starvation_bound: 5 },
            ..SimConfig::default()
        };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::BinPacking.build(GaParams::default()));
        assert_eq!(r.records.len(), 201);
    }
}
