//! The discrete-event scheduling simulator.
//!
//! Every arrival and completion triggers a *scheduling invocation*:
//!
//! 1. the base scheduler re-orders the waiting queue (§2.1);
//! 2. the window (§3.1) is filled with the highest-priority jobs whose
//!    dependencies are complete;
//! 3. jobs past the starvation bound are force-started (or, if they no
//!    longer fit, become the reservation head so nothing delays them);
//! 4. the multi-resource selection policy picks window jobs to start;
//! 5. multi-resource EASY backfilling (§2.1) starts any remaining queued
//!    job that fits now and does not delay the reservation head, using
//!    *walltime estimates* exactly like a production scheduler.
//!
//! Resource accounting runs on [`bbsched_core::PoolState`]; node→SSD-pool
//! assignments follow the §5 greedy rule everywhere, so the optimizer's
//! model and the cluster's ground truth agree.

use crate::base_sched::BaseScheduler;
use crate::error::SimError;
use crate::record::{JobRecord, SimResult, StartReason};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use bbsched_core::resource::MAX_EXTRA;
use bbsched_core::window::{fill_window, StarvationTracker, WindowConfig};
use bbsched_policies::SelectionPolicy;
use bbsched_workloads::{SystemConfig, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base scheduler ordering the queue (FCFS for Cori, WFP for Theta).
    pub base: BaseScheduler,
    /// Window size and starvation bound (§3.1).
    pub window: WindowConfig,
    /// Clamp jobs whose demand exceeds total capacity instead of erroring.
    pub clamp_impossible: bool,
    /// Maximum queued jobs examined per backfilling pass (guards the
    /// per-invocation cost on pathological queues; only relevant with
    /// [`BackfillScope::Queue`]).
    pub max_backfill_scan: usize,
    /// Which jobs EASY backfilling may consider.
    pub backfill: BackfillScope,
    /// Backfilling algorithm: EASY (paper default) or conservative.
    pub backfill_algorithm: BackfillAlgorithm,
    /// Optional dynamic window sizing (§3.1: "the window size could be
    /// dynamically adjusted in response to system status. Job queue length
    /// often changes."). When set, overrides `window.size` per invocation.
    pub dynamic_window: Option<DynamicWindow>,
}

/// Queue-length-driven window sizing: the window tracks a fraction of the
/// waiting queue, clamped to `[min, max]`. Larger queues get more
/// optimization; short queues preserve the site's order (§3.1's stated
/// trade-off).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicWindow {
    /// Smallest window ever used.
    pub min: usize,
    /// Largest window ever used (bounds the optimizer's search space).
    pub max: usize,
    /// Fraction of the queue length targeted.
    pub queue_fraction: f64,
}

impl Default for DynamicWindow {
    fn default() -> Self {
        Self { min: 10, max: 50, queue_fraction: 0.25 }
    }
}

impl DynamicWindow {
    /// Window size for a queue of `queue_len` jobs.
    pub fn size_for(&self, queue_len: usize) -> usize {
        let target = (queue_len as f64 * self.queue_fraction).round() as usize;
        target.clamp(self.min, self.max).max(1)
    }
}

/// The backfilling discipline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackfillAlgorithm {
    /// EASY (§2.1, used throughout the paper): reserve for the first
    /// blocked job only; candidates may not delay it.
    #[default]
    Easy,
    /// Conservative: every blocked candidate receives a reservation on a
    /// future-availability profile; a job starts now only if it delays
    /// none of the reservations ahead of it. Stronger fairness, fewer
    /// backfill opportunities.
    Conservative,
}

/// Candidate scope for the EASY backfilling pass.
///
/// The paper runs window-based selection with EASY backfilling on top
/// (§4.3); with a full-queue scope, greedy backfilling over thousands of
/// queued jobs dominates the schedule and erases most of the difference
/// between selection policies — every method degenerates to queue-wide
/// first-fit. Restricting candidates to the scheduling window (the
/// default) keeps backfilling's fragmentation-mitigation role while
/// leaving job selection to the policy under study, which is the
/// experimental design the paper's comparisons require. The scope applies
/// identically to every method, so comparisons stay fair either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackfillScope {
    /// Only jobs inside the scheduling window may backfill.
    Window,
    /// Any waiting job may backfill (classic site-wide EASY), capped by
    /// `max_backfill_scan`.
    Queue,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            base: BaseScheduler::Fcfs,
            window: WindowConfig::default(),
            clamp_impossible: true,
            max_backfill_scan: 2_000,
            backfill: BackfillScope::Window,
            backfill_algorithm: BackfillAlgorithm::Easy,
            dynamic_window: None,
        }
    }
}

/// Tolerance for "finishes before the shadow time" comparisons.
const TIME_EPS: f64 = 1e-6;

#[derive(Clone, Copy, Debug, PartialEq)]
enum EventKind {
    Arrive(usize),
    Finish(usize),
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug)]
struct Running {
    est_end: f64,
    demand: JobDemand,
    asn: bbsched_core::pools::NodeAssignment,
}

/// EASY reservation math: the *shadow time* at which `head` could start if
/// nothing new ran past it (walltime estimates of running jobs, as a real
/// scheduler would use), and the *leftover* resources at that instant
/// beyond the head's claim. Anything fitting inside the leftover can run
/// arbitrarily long without delaying the head.
fn shadow_and_leftover(
    pool: &PoolState,
    running: &HashMap<usize, Running>,
    head: &JobDemand,
    now: f64,
) -> (f64, PoolState) {
    if pool.fits(head) {
        let mut leftover = *pool;
        let _ = leftover.alloc(head);
        return (now, leftover);
    }
    // Tie-break on the job index: HashMap iteration order is
    // nondeterministic across processes, and equal est_end values would
    // otherwise make backfill decisions irreproducible.
    let mut run_list: Vec<(&usize, &Running)> = running.iter().collect();
    run_list.sort_by(|(ia, a), (ib, b)| a.est_end.total_cmp(&b.est_end).then(ia.cmp(ib)));
    let mut future = *pool;
    for (_, r) in run_list {
        future.free(&r.demand, r.asn);
        if future.fits(head) {
            let mut leftover = future;
            let _ = leftover.alloc(head);
            return (r.est_end, leftover);
        }
    }
    // The head can never fit — impossible once demands are clamped to
    // capacity; be safe in release builds anyway.
    debug_assert!(false, "unschedulable head survived clamping");
    (f64::INFINITY, PoolState::cpu_bb(0, 0.0))
}

/// The trace-driven cluster simulator. Construct with [`Simulator::new`],
/// consume with [`Simulator::run`].
pub struct Simulator<'t> {
    system: SystemConfig,
    trace: &'t Trace,
    cfg: SimConfig,
    /// Per-job demand after capacity clamping.
    demands: Vec<JobDemand>,
    clamped: usize,
}

impl<'t> Simulator<'t> {
    /// Prepares a simulation of `trace` on `system`.
    ///
    /// Jobs whose demand can never fit the machine make the queue head
    /// unschedulable and would deadlock any non-backfilling path; they are
    /// clamped to capacity when `cfg.clamp_impossible` is set (the count is
    /// reported in the result) and rejected with an error otherwise.
    pub fn new(system: &SystemConfig, trace: &'t Trace, cfg: SimConfig) -> Result<Self, SimError> {
        system.validate()?;
        cfg.window.validate().map_err(SimError::InvalidWindow)?;
        let usable_bb = system.bb_usable_gb();
        let mut clamped = 0usize;
        let mut demands = Vec::with_capacity(trace.len());
        for job in trace.jobs() {
            let mut d = JobDemand {
                nodes: job.nodes,
                bb_gb: job.bb_gb,
                ssd_gb_per_node: if system.has_local_ssd() { job.ssd_gb_per_node } else { 0.0 },
                ..JobDemand::default()
            };
            let mut job_clamped = false;
            if d.nodes > system.nodes {
                d.nodes = system.nodes;
                job_clamped = true;
            }
            if d.bb_gb > usable_bb {
                d.bb_gb = usable_bb;
                job_clamped = true;
            }
            if d.ssd_gb_per_node > 256.0 {
                d.ssd_gb_per_node = 256.0;
                job_clamped = true;
            }
            if d.ssd_gb_per_node > 128.0 && d.nodes > system.nodes_256 {
                // More >128 GB/node-SSD nodes requested than 256 GB nodes
                // exist: downgrade the request so the job stays schedulable.
                d.ssd_gb_per_node = 128.0;
                job_clamped = true;
            }
            for (i, extra) in system.extra_resources.iter().take(MAX_EXTRA).enumerate() {
                d.extra[i] = job.extra_demand(i);
                if d.extra[i] > extra.amount {
                    d.extra[i] = extra.amount;
                    job_clamped = true;
                }
            }
            if job_clamped {
                if !cfg.clamp_impossible {
                    return Err(SimError::ImpossibleJob {
                        id: job.id,
                        system: system.name.clone(),
                        nodes: job.nodes,
                        bb_gb: job.bb_gb,
                        ssd_gb_per_node: job.ssd_gb_per_node,
                    });
                }
                clamped += 1;
            }
            demands.push(d);
        }
        Ok(Self { system: system.clone(), trace, cfg, demands, clamped })
    }

    /// Runs the simulation to completion under the given selection policy.
    pub fn run(self, mut policy: Box<dyn SelectionPolicy>) -> SimResult {
        let jobs = self.trace.jobs();
        let n = jobs.len();
        let mut pool = self.system.pool_state();

        let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(2 * n + 1);
        let mut seq = 0u64;
        for (i, job) in jobs.iter().enumerate() {
            events.push(Reverse(Event { time: job.submit, seq, kind: EventKind::Arrive(i) }));
            seq += 1;
        }

        let mut queue: Vec<usize> = Vec::new();
        let mut running: HashMap<usize, Running> = HashMap::new();
        let mut completed_ids: HashSet<u64> = HashSet::with_capacity(n);
        let mut records: Vec<JobRecord> = Vec::with_capacity(n);
        let mut tracker = StarvationTracker::new();
        let mut invocations = 0u64;
        let mut backfilled = 0usize;
        let mut starvation_forced = 0usize;
        let mut makespan = 0.0f64;

        let start_job = |idx: usize,
                         now: f64,
                         reason: StartReason,
                         pool: &mut PoolState,
                         running: &mut HashMap<usize, Running>,
                         events: &mut BinaryHeap<Reverse<Event>>,
                         records: &mut Vec<JobRecord>,
                         seq: &mut u64| {
            let job = &jobs[idx];
            let d = self.demands[idx];
            let asn = pool.alloc(&d);
            let end = now + job.runtime;
            events.push(Reverse(Event { time: end, seq: *seq, kind: EventKind::Finish(idx) }));
            *seq += 1;
            running.insert(idx, Running { est_end: now + job.walltime, demand: d, asn });
            records.push(JobRecord {
                id: job.id,
                submit: job.submit,
                start: now,
                end,
                runtime: job.runtime,
                walltime: job.walltime,
                nodes: d.nodes,
                bb_gb: d.bb_gb,
                ssd_gb_per_node: d.ssd_gb_per_node,
                extra: d.extra,
                assignment: asn,
                wasted_ssd_gb: pool.wasted_capacity_gb(&d, &asn),
                reason,
            });
        };

        while let Some(Reverse(ev)) = events.pop() {
            let now = ev.time;
            // Apply this event and every other event at the same instant.
            let mut apply = |ev: Event,
                             queue: &mut Vec<usize>,
                             running: &mut HashMap<usize, Running>,
                             pool: &mut PoolState| {
                match ev.kind {
                    EventKind::Arrive(i) => queue.push(i),
                    EventKind::Finish(i) => {
                        let r = running.remove(&i).expect("finish for job not running");
                        pool.free(&r.demand, r.asn);
                        completed_ids.insert(jobs[i].id);
                        makespan = makespan.max(now);
                    }
                }
            };
            apply(ev, &mut queue, &mut running, &mut pool);
            while let Some(Reverse(next)) = events.peek() {
                if next.time > now {
                    break;
                }
                let next = events.pop().expect("peeked event vanished").0;
                apply(next, &mut queue, &mut running, &mut pool);
            }

            if queue.is_empty() {
                continue;
            }
            invocations += 1;

            // --- (1) base-scheduler priority order ---
            self.cfg.base.order(&mut queue, jobs, now);

            // --- (2) fill the window with dependency-satisfied jobs ---
            let deps_met =
                |qpos: usize| jobs[queue[qpos]].deps.iter().all(|d| completed_ids.contains(d));
            let window_size = self
                .cfg
                .dynamic_window
                .map(|d| d.size_for(queue.len()))
                .unwrap_or(self.cfg.window.size);
            let window_qpos = fill_window(queue.len(), window_size, deps_met);
            let window_idx: Vec<usize> = window_qpos.iter().map(|&q| queue[q]).collect();
            let window_ids: Vec<u64> = window_idx.iter().map(|&i| jobs[i].id).collect();

            let mut started: HashSet<usize> = HashSet::new();

            // --- (3) starvation bound (§3.1) ---
            // Jobs past the bound start immediately when they fit. A
            // starved job that does not fit becomes the EASY reservation
            // head: optimization continues, but only inside the slack that
            // cannot delay it.
            let mut blocked_head: Option<usize> = None;
            for &idx in &window_idx {
                if tracker.is_starved(jobs[idx].id, self.cfg.window.starvation_bound) {
                    if pool.fits(&self.demands[idx]) {
                        start_job(
                            idx,
                            now,
                            StartReason::Starvation,
                            &mut pool,
                            &mut running,
                            &mut events,
                            &mut records,
                            &mut seq,
                        );
                        started.insert(idx);
                        starvation_forced += 1;
                    } else {
                        blocked_head = Some(idx);
                        break;
                    }
                }
            }

            // --- (4) multi-resource selection from the window ---
            // With a starved reservation head, the policy sees only the
            // component-wise minimum of "free now" and "left over at the
            // head's shadow time" — any selection within that bound cannot
            // delay the head.
            let policy_avail = match blocked_head {
                None => pool,
                Some(b) => {
                    let (_, leftover) = shadow_and_leftover(&pool, &running, &self.demands[b], now);
                    pool.component_min(&leftover)
                }
            };
            {
                let remaining: Vec<usize> = window_idx
                    .iter()
                    .copied()
                    .filter(|i| !started.contains(i) && Some(*i) != blocked_head)
                    .collect();
                if !remaining.is_empty() {
                    let demands: Vec<JobDemand> =
                        remaining.iter().map(|&i| self.demands[i]).collect();
                    let selection = policy.select(&demands, &policy_avail, invocations);
                    debug_assert!(
                        bbsched_policies::selection_is_feasible(
                            &demands,
                            &policy_avail,
                            &selection
                        ),
                        "policy {} returned an infeasible selection",
                        policy.name()
                    );
                    for &s in &selection {
                        let idx = remaining[s];
                        start_job(
                            idx,
                            now,
                            StartReason::Policy,
                            &mut pool,
                            &mut running,
                            &mut events,
                            &mut records,
                            &mut seq,
                        );
                        started.insert(idx);
                    }
                }
            }

            // --- (5) EASY backfilling ---
            let waiting: Vec<usize> = match self.cfg.backfill {
                BackfillScope::Window => {
                    window_idx.iter().copied().filter(|i| !started.contains(i)).collect()
                }
                BackfillScope::Queue => queue
                    .iter()
                    .copied()
                    .filter(|i| {
                        !started.contains(i)
                            && jobs[*i].deps.iter().all(|d| completed_ids.contains(d))
                    })
                    .collect(),
            };

            if self.cfg.backfill_algorithm == BackfillAlgorithm::Conservative {
                // Conservative: reservations for everyone, on a
                // future-availability profile. The starved blocked job (if
                // any) reserves first.
                let mut profile = crate::profile::AvailabilityProfile::new(now, pool, {
                    // Deterministic order: sort by (est_end, idx) so
                    // HashMap iteration order never leaks into results.
                    let mut keyed: Vec<(&usize, &Running)> = running.iter().collect();
                    keyed.sort_by(|(ia, a), (ib, b)| {
                        a.est_end.total_cmp(&b.est_end).then(ia.cmp(ib))
                    });
                    keyed.into_iter().map(|(_, r)| (r.est_end, r.demand, r.asn)).collect::<Vec<_>>()
                });
                let mut ordered: Vec<usize> = Vec::with_capacity(waiting.len() + 1);
                if let Some(b) = blocked_head {
                    ordered.push(b);
                }
                ordered.extend(waiting.iter().copied().filter(|&i| Some(i) != blocked_head));
                for (scanned, idx) in ordered.into_iter().enumerate() {
                    if scanned >= self.cfg.max_backfill_scan {
                        break;
                    }
                    if started.contains(&idx) {
                        continue;
                    }
                    let d = self.demands[idx];
                    let walltime = jobs[idx].walltime.max(1.0);
                    let t = profile.earliest_start(&d, now, walltime);
                    if t <= now + TIME_EPS && pool.fits(&d) {
                        start_job(
                            idx,
                            now,
                            StartReason::Backfill,
                            &mut pool,
                            &mut running,
                            &mut events,
                            &mut records,
                            &mut seq,
                        );
                        started.insert(idx);
                        backfilled += 1;
                        // Consume from the profile's "now" segments too.
                        profile.reserve(&d, t, walltime);
                    } else if t.is_finite() {
                        profile.reserve(&d, t, walltime);
                    }
                }
                // Starvation bookkeeping & cleanup happen below as usual.
                if !started.is_empty() {
                    let started_ids: Vec<u64> = window_idx
                        .iter()
                        .filter(|i| started.contains(i))
                        .map(|&i| jobs[i].id)
                        .collect();
                    tracker.observe(&window_ids, &started_ids);
                    for &i in &started {
                        tracker.forget(jobs[i].id);
                    }
                }
                queue.retain(|i| !started.contains(i));
                continue;
            }

            let mut head_cursor = 0usize;
            // Start any fitting head outright (covers policies that left a
            // fitting job behind and the queue-front after backfill frees).
            let mut head: Option<usize> = None;
            while head_cursor < waiting.len() {
                let idx = waiting[head_cursor];
                if let Some(b) = blocked_head {
                    // The starved job owns the reservation regardless of
                    // queue position.
                    head = Some(b);
                    break;
                }
                if started.contains(&idx) {
                    head_cursor += 1;
                    continue;
                }
                if pool.fits(&self.demands[idx]) {
                    start_job(
                        idx,
                        now,
                        StartReason::Backfill,
                        &mut pool,
                        &mut running,
                        &mut events,
                        &mut records,
                        &mut seq,
                    );
                    started.insert(idx);
                    head_cursor += 1;
                } else {
                    head = Some(idx);
                    break;
                }
            }

            if let Some(head_idx) = head {
                let (shadow, mut leftover) =
                    shadow_and_leftover(&pool, &running, &self.demands[head_idx], now);

                for (scanned, &idx) in waiting.iter().enumerate() {
                    if scanned >= self.cfg.max_backfill_scan {
                        break;
                    }
                    if started.contains(&idx) || idx == head_idx {
                        continue;
                    }
                    let d = self.demands[idx];
                    if !pool.fits(&d) {
                        continue;
                    }
                    let ends_before_shadow = now + jobs[idx].walltime <= shadow + TIME_EPS;
                    if ends_before_shadow || leftover.fits(&d) {
                        if !ends_before_shadow {
                            let _ = leftover.alloc(&d);
                        }
                        start_job(
                            idx,
                            now,
                            StartReason::Backfill,
                            &mut pool,
                            &mut running,
                            &mut events,
                            &mut records,
                            &mut seq,
                        );
                        started.insert(idx);
                        backfilled += 1;
                    }
                }
            }

            // --- (6) starvation bookkeeping & queue cleanup ---
            // A pass only counts against the bound when the job was
            // *bypassed*: some other job started while it sat in the
            // window. Idle invocations (nothing startable) are not
            // bypasses — counting them made the bound fire on event
            // frequency rather than on actual priority inversion.
            if !started.is_empty() {
                let started_ids: Vec<u64> = window_idx
                    .iter()
                    .filter(|i| started.contains(i))
                    .map(|&i| jobs[i].id)
                    .collect();
                tracker.observe(&window_ids, &started_ids);
                for &i in &started {
                    tracker.forget(jobs[i].id);
                }
            }
            queue.retain(|i| !started.contains(i));
        }

        debug_assert_eq!(records.len(), n, "every job must run exactly once");
        debug_assert!(running.is_empty());
        records.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.id.cmp(&b.id)));

        SimResult {
            policy: policy.name().to_string(),
            base: self.cfg.base.name().to_string(),
            system: self.system,
            records,
            makespan,
            invocations,
            clamped_jobs: self.clamped,
            backfilled,
            starvation_forced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_policies::{GaParams, PolicyKind};
    use bbsched_workloads::Job;

    fn system(nodes: u32, bb_tb: f64) -> SystemConfig {
        SystemConfig {
            name: "test".into(),
            nodes,
            bb_gb: bb_tb * 1000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn run_jobs(jobs: Vec<Job>, sys: &SystemConfig, kind: PolicyKind) -> SimResult {
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig::default();
        let ga = GaParams { generations: 60, ..GaParams::default() };
        Simulator::new(sys, &trace, cfg).unwrap().run(kind.build(ga))
    }

    #[test]
    fn single_job_runs_immediately() {
        let sys = system(10, 10.0);
        let r = run_jobs(vec![Job::new(0, 5.0, 4, 100.0, 200.0)], &sys, PolicyKind::Baseline);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].start, 5.0);
        assert_eq!(r.records[0].end, 105.0);
        assert_eq!(r.makespan, 105.0);
    }

    #[test]
    fn jobs_queue_when_resources_busy() {
        let sys = system(10, 10.0);
        let jobs = vec![Job::new(0, 0.0, 10, 100.0, 100.0), Job::new(1, 1.0, 10, 50.0, 50.0)];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "second job must wait for the first");
    }

    #[test]
    fn burst_buffer_is_a_real_constraint() {
        let sys = system(100, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 10, 100.0, 100.0).with_bb(8_000.0),
            Job::new(1, 1.0, 10, 100.0, 100.0).with_bb(8_000.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "BB contention must serialize the jobs");
    }

    #[test]
    fn easy_backfill_starts_small_job() {
        let sys = system(10, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 8, 100.0, 100.0),  // leaves 2 nodes free
            Job::new(1, 1.0, 10, 100.0, 100.0), // head: must wait to t=100
            Job::new(2, 2.0, 2, 50.0, 50.0),    // fits now, ends at 52 < 100
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j2.start, 2.0, "small job should backfill immediately");
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0, "head must not be delayed by backfill");
        assert!(r.backfilled >= 1);
    }

    #[test]
    fn backfill_never_delays_head() {
        let sys = system(10, 10.0);
        // Job 2's walltime (80) would run past the shadow (100) and it
        // needs 5 nodes, but the head needs all 10 at t=100: no leftover.
        let jobs = vec![
            Job::new(0, 0.0, 10, 100.0, 100.0),
            Job::new(1, 1.0, 10, 100.0, 100.0),
            Job::new(2, 2.0, 5, 80.0, 150.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j1.start, 100.0);
        assert!(j2.start >= 100.0, "walltime-crossing backfill must not start");
    }

    #[test]
    fn backfill_uses_leftover_when_head_leaves_room() {
        let sys = system(10, 10.0);
        // Head needs only 6 nodes at shadow; a 4-node long job can coexist.
        let jobs = vec![
            Job::new(0, 0.0, 6, 100.0, 100.0), // leaves 4 nodes free
            Job::new(1, 1.0, 6, 100.0, 100.0), // head: 6 > 4, waits to t=100
            Job::new(2, 2.0, 4, 500.0, 500.0), // crosses shadow, fits leftover
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j2 = r.records.iter().find(|x| x.id == 2).unwrap();
        assert_eq!(j2.start, 2.0, "leftover-fitting backfill should start now");
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.start, 100.0);
    }

    #[test]
    fn dependencies_hold_jobs_out_of_the_window() {
        let sys = system(10, 10.0);
        let jobs = vec![
            Job::new(0, 0.0, 2, 100.0, 100.0),
            Job::new(1, 1.0, 2, 50.0, 50.0).with_deps(vec![0]),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert!(j1.start >= 100.0, "dependent job must wait for completion");
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let sys = system(64, 100.0);
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                Job::new(
                    i,
                    i as f64 * 3.0,
                    1 + (i % 32) as u32,
                    60.0 + (i % 7) as f64 * 30.0,
                    400.0,
                )
                .with_bb(if i % 3 == 0 { 20_000.0 } else { 0.0 })
            })
            .collect();
        for kind in PolicyKind::main_roster() {
            let r = run_jobs(jobs.clone(), &sys, kind);
            assert_eq!(r.records.len(), 40, "{}", kind.name());
            for rec in &r.records {
                assert!(rec.start >= rec.submit, "{}", kind.name());
                assert!((rec.end - rec.start - rec.runtime).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let sys = system(32, 50.0);
        let jobs: Vec<Job> =
            (0..30).map(|i| Job::new(i, i as f64, 1 + (i % 16) as u32, 100.0, 200.0)).collect();
        let a = run_jobs(jobs.clone(), &sys, PolicyKind::BbSched);
        let b = run_jobs(jobs, &sys, PolicyKind::BbSched);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn impossible_job_is_clamped_and_completes() {
        let sys = system(10, 1.0);
        let jobs = vec![Job::new(0, 0.0, 100, 10.0, 10.0).with_bb(9_999.0)];
        let trace = Trace::from_jobs(jobs).unwrap();
        let sim = Simulator::new(&sys, &trace, SimConfig::default()).unwrap();
        let r = sim.run(PolicyKind::Baseline.build(GaParams::default()));
        assert_eq!(r.clamped_jobs, 1);
        assert_eq!(r.records.len(), 1);
    }

    #[test]
    fn impossible_job_errors_without_clamping() {
        let sys = system(10, 1.0);
        let jobs = vec![Job::new(0, 0.0, 100, 10.0, 10.0)];
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig { clamp_impossible: false, ..SimConfig::default() };
        assert!(Simulator::new(&sys, &trace, cfg).is_err());
    }

    #[test]
    fn wfp_base_runs_clean() {
        let sys = system(32, 10.0);
        let jobs: Vec<Job> = (0..20)
            .map(|i| Job::new(i, i as f64 * 5.0, 4 + (i % 4) as u32 * 8, 200.0, 400.0))
            .collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig { base: BaseScheduler::Wfp, ..SimConfig::default() };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()));
        assert_eq!(r.records.len(), 20);
        assert_eq!(r.base, "WFP");
    }

    #[test]
    fn ssd_system_accounts_waste() {
        let sys = SystemConfig {
            name: "ssd".into(),
            nodes: 8,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 4,
            nodes_256: 4,
            extra_resources: Vec::new(),
        };
        let jobs = vec![
            Job::new(0, 0.0, 2, 100.0, 100.0).with_ssd(200.0),
            Job::new(1, 0.0, 2, 100.0, 100.0).with_ssd(64.0),
        ];
        let r = run_jobs(jobs, &sys, PolicyKind::Baseline);
        let j0 = r.records.iter().find(|x| x.id == 0).unwrap();
        assert_eq!(j0.assignment.n256(), 2);
        assert_eq!(j0.wasted_ssd_gb, 2.0 * (256.0 - 200.0));
        let j1 = r.records.iter().find(|x| x.id == 1).unwrap();
        assert_eq!(j1.assignment.n128(), 2);
        assert_eq!(j1.wasted_ssd_gb, 2.0 * (128.0 - 64.0));
    }

    #[test]
    fn dynamic_window_sizing_math() {
        let d = DynamicWindow { min: 10, max: 50, queue_fraction: 0.25 };
        assert_eq!(d.size_for(0), 10);
        assert_eq!(d.size_for(40), 10);
        assert_eq!(d.size_for(100), 25);
        assert_eq!(d.size_for(1_000), 50);
        let tiny = DynamicWindow { min: 0, max: 5, queue_fraction: 0.1 };
        assert_eq!(tiny.size_for(0), 1, "window never collapses to zero");
    }

    #[test]
    fn dynamic_window_simulation_completes() {
        let sys = system(32, 50.0);
        let jobs: Vec<Job> = (0..60)
            .map(|i| Job::new(i, i as f64 * 2.0, 1 + (i % 16) as u32, 120.0, 240.0))
            .collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg =
            SimConfig { dynamic_window: Some(DynamicWindow::default()), ..SimConfig::default() };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::BinPacking.build(GaParams::default()));
        assert_eq!(r.records.len(), 60);
    }

    #[test]
    fn conservative_backfill_respects_all_reservations() {
        let sys = system(10, 10.0);
        // Running: 6 nodes until t=100 (est), 4 free. Waiting (FCFS):
        //  A (6 nodes, wall 100)  -> blocked, reserved at t=100
        //  B (4 nodes, wall 300)  -> fits now AND fits A's leftover at the
        //     reservation (10 - 6 = 4), so conservative starts it at t=2.
        //  C (2 nodes, wall 500)  -> 0 nodes free after B starts; and once
        //     A+B hold all 10 nodes from t=100, C cannot start before a
        //     reservation hole opens.
        let jobs = vec![
            Job::new(0, 0.0, 6, 100.0, 100.0),
            Job::new(1, 1.0, 6, 100.0, 100.0),
            Job::new(2, 2.0, 4, 250.0, 300.0),
            Job::new(3, 3.0, 2, 400.0, 500.0),
        ];
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig {
            backfill_algorithm: BackfillAlgorithm::Conservative,
            ..SimConfig::default()
        };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()));
        let start = |id: u64| r.records.iter().find(|x| x.id == id).unwrap().start;
        assert_eq!(start(1), 100.0, "A starts at its reservation");
        assert_eq!(start(2), 2.0, "B fits A's leftover and starts now");
        assert!(
            start(3) >= 100.0,
            "C must not collide with the A+B reservation window (started {})",
            start(3)
        );
        assert_eq!(r.records.len(), 4);
    }

    #[test]
    fn conservative_and_easy_agree_on_uncontended_traces() {
        let sys = system(100, 100.0);
        let jobs: Vec<Job> = (0..20).map(|i| Job::new(i, i as f64 * 5.0, 4, 50.0, 100.0)).collect();
        let trace = Trace::from_jobs(jobs).unwrap();
        let run = |alg| {
            let cfg = SimConfig { backfill_algorithm: alg, ..SimConfig::default() };
            Simulator::new(&sys, &trace, cfg)
                .unwrap()
                .run(PolicyKind::Baseline.build(GaParams::default()))
        };
        let easy = run(BackfillAlgorithm::Easy);
        let cons = run(BackfillAlgorithm::Conservative);
        // Nothing ever blocks, so both disciplines start every job on
        // arrival.
        for (a, b) in easy.records.iter().zip(&cons.records) {
            assert_eq!(a.start, b.start);
        }
    }

    #[test]
    fn starvation_bound_eventually_forces_jobs() {
        // A stream of tiny jobs keeps arriving; one large job would starve
        // under a policy that always prefers the small ones. With the bound
        // it must eventually run.
        let sys = system(10, 10.0);
        let mut jobs = vec![Job::new(0, 0.0, 10, 5.0, 10.0)];
        for i in 1..200 {
            jobs.push(Job::new(i, i as f64 * 0.5, 1, 30.0, 60.0));
        }
        // Large job arrives early but small jobs keep the machine busy.
        jobs.push(Job::new(200, 1.0, 9, 10.0, 20.0));
        let trace = Trace::from_jobs(jobs).unwrap();
        let cfg = SimConfig {
            window: WindowConfig { size: 10, starvation_bound: 5 },
            ..SimConfig::default()
        };
        let r = Simulator::new(&sys, &trace, cfg)
            .unwrap()
            .run(PolicyKind::BinPacking.build(GaParams::default()));
        assert_eq!(r.records.len(), 201);
    }
}
