//! Property test: the incrementally maintained availability profile is
//! exactly the profile rebuilt from scratch.
//!
//! The incremental conservative-backfill path keeps a [`ReleaseMirror`]
//! synced from the allocation ledger's delta log and refolds a persistent
//! [`AvailabilityProfile`] from it each pass. This harness drives random
//! interleavings of job starts, finishes, and backfill passes (each pass
//! carving reservations that the next fold must drop) on systems with
//! R ∈ {2, 3, 4} resources — including heterogeneous SSD flavours — and
//! asserts, at every pass:
//!
//! 1. mirror-fed fold `==` [`AvailabilityProfile::new`] over the ledger's
//!    release schedule (bit-exact: same `times`, same `states`);
//! 2. the skyline-indexed queries (`earliest_start`, `fits_interval`,
//!    `state_at`) agree with the frozen scan-everything
//!    [`LegacyProfile`], both before and after reservations partially
//!    invalidate the skyline.

use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, SSD_LARGE_GB, SSD_SMALL_GB};
use bbsched_core::resource::{DemandSlot, FlavorSet, ResourceModel, ResourceSpec};
use bbsched_sim::{AllocLedger, AvailabilityProfile, LegacyProfile, ReleaseMirror};
use proptest::prelude::*;

/// One encoded operation: `(kind, a, b, c)` with `kind % 3` selecting
/// start / finish / backfill-pass and the rest seeding demands and picks.
type Op = (u8, u16, u16, u16);

/// A system under test: its full pool plus a demand generator that maps
/// raw op words onto (sometimes infeasible) demands for it.
struct SystemUnderTest {
    pool: PoolState,
    demand: fn(u16, u16, u16) -> JobDemand,
}

fn systems() -> Vec<SystemUnderTest> {
    // R = 2: pooled nodes + shared burst buffer.
    let cpu_bb = SystemUnderTest {
        pool: PoolState::cpu_bb(32, 800.0),
        demand: |a, b, _| JobDemand::cpu_bb(1 + u32::from(a) % 34, f64::from(b % 900)),
    };
    // R = 3: nodes + burst buffer + heterogeneous two-tier local SSDs.
    let ssd = SystemUnderTest {
        pool: PoolState::with_ssd(12, 12, 600.0),
        demand: |a, b, c| {
            let ssd = match c % 4 {
                0 => 0.0,
                1 => 64.0,
                2 => 150.0,
                _ => 240.0,
            };
            JobDemand::cpu_bb_ssd(1 + u32::from(a) % 26, f64::from(b % 700), ssd)
        },
    };
    // R = 4: nodes + burst buffer + SSD flavours + an extra pooled
    // resource (GPUs).
    let model = ResourceModel::new(vec![
        ResourceSpec::pooled("nodes", 20.0, DemandSlot::Nodes),
        ResourceSpec::pooled("bb_gb", 500.0, DemandSlot::BbGb),
        ResourceSpec::per_node(
            "ssd",
            FlavorSet::two_tier(SSD_SMALL_GB, 10, SSD_LARGE_GB, 10),
            DemandSlot::SsdPerNode,
        ),
        ResourceSpec::pooled("gpus", 16.0, DemandSlot::Extra(0)),
    ])
    .expect("4-resource test model is valid");
    let four = SystemUnderTest {
        pool: PoolState::from_model(&model),
        demand: |a, b, c| {
            let ssd = if c % 3 == 0 { 0.0 } else { f64::from(c % 200) };
            JobDemand::cpu_bb_ssd(1 + u32::from(a) % 22, f64::from(b % 600), ssd)
                .with_extra(0, f64::from(c % 18))
        },
    };
    vec![cpu_bb, ssd, four]
}

/// Drives one interleaving on one system, checking the invariants at
/// every backfill pass.
fn check_interleaving(sut: &SystemUnderTest, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ledger = AllocLedger::new(sut.pool);
    let mut mirror = ReleaseMirror::new();
    let mut profile = AvailabilityProfile::default();
    let mut now = 0.0f64;
    let mut next_idx = 0usize;
    let mut running: Vec<usize> = Vec::new();

    for &(kind, a, b, c) in ops {
        now += f64::from(a % 7) * 0.5;
        match kind % 3 {
            0 => {
                // Job start (skipped when it does not fit, like the engine).
                let d = (sut.demand)(a, b, c);
                if ledger.fits(&d) {
                    let dur = 1.0 + f64::from(b % 50);
                    ledger.start(next_idx, d, now + dur);
                    running.push(next_idx);
                    next_idx += 1;
                }
            }
            1 => {
                // Job finish (random running job).
                if !running.is_empty() {
                    let pos = usize::from(a) % running.len();
                    let idx = running.swap_remove(pos);
                    ledger.finish(idx);
                }
            }
            _ => {
                // Backfill pass: delta-sync + in-place fold...
                mirror.sync(&ledger);
                mirror.fold_into(now, *ledger.pool(), &mut profile);
                // ...must equal the from-scratch profile bit for bit
                // (which also proves the previous pass's reservations
                // were dropped and nothing else was).
                let fresh =
                    AvailabilityProfile::new(now, *ledger.pool(), ledger.release_schedule());
                prop_assert_eq!(&profile, &fresh, "incremental fold diverged at t={}", now);

                // Queries agree with the frozen legacy implementation,
                // with the skyline fully clean...
                let mut legacy = LegacyProfile::new(now, *ledger.pool(), ledger.release_schedule());
                let probe = (sut.demand)(b, c, a);
                let dur = 1.0 + f64::from(c % 40);
                prop_assert_eq!(
                    profile.earliest_start(&probe, now, dur),
                    legacy.earliest_start(&probe, now, dur)
                );
                prop_assert_eq!(
                    profile.fits_interval(&probe, now + f64::from(a % 11), dur),
                    legacy.fits_interval(&probe, now + f64::from(a % 11), dur)
                );

                // ...and with the skyline partially invalidated by
                // reservations (carved identically into both profiles,
                // reproducing the conservative strategy's usage).
                for salt in 0..2u16 {
                    let rd = (sut.demand)(a ^ salt, c, b);
                    let rdur = 1.0 + f64::from((b ^ salt) % 30);
                    let t = profile.earliest_start(&rd, now, rdur);
                    prop_assert_eq!(t, legacy.earliest_start(&rd, now, rdur));
                    if t.is_finite() {
                        profile.reserve(&rd, t, rdur);
                        legacy.reserve(&rd, t, rdur);
                    }
                }
                prop_assert_eq!(profile.times(), legacy.times());
                prop_assert_eq!(profile.states(), legacy.states());
                let q = (sut.demand)(c, a, b);
                let qdur = 1.0 + f64::from(a % 25);
                prop_assert_eq!(
                    profile.earliest_start(&q, now, qdur),
                    legacy.earliest_start(&q, now, qdur)
                );
                for off in [0.0, 0.5, 3.0, 17.0] {
                    prop_assert_eq!(
                        profile.fits_interval(&q, now + off, qdur),
                        legacy.fits_interval(&q, now + off, qdur)
                    );
                    prop_assert_eq!(profile.state_at(now + off), legacy.state_at(now + off));
                }
            }
        }
    }
    // Drain everything and fold once more: the empty-ledger profile must
    // also match.
    for idx in running.drain(..) {
        ledger.finish(idx);
    }
    mirror.sync(&ledger);
    mirror.fold_into(now, *ledger.pool(), &mut profile);
    let fresh = AvailabilityProfile::new(now, *ledger.pool(), ledger.release_schedule());
    prop_assert_eq!(&profile, &fresh);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// Satellite: incremental profile ≡ rebuilt-from-scratch profile
    /// after arbitrary interleavings of starts, finishes, and
    /// reservation-carving passes, on R ∈ {2, 3, 4} systems.
    #[test]
    fn prop_incremental_profile_equals_rebuild(
        ops in proptest::collection::vec(
            (0u8..3, 0u16..10_000, 0u16..10_000, 0u16..10_000), 1..120),
    ) {
        for sut in systems() {
            check_interleaving(&sut, &ops)?;
        }
    }
}
