//! Golden-equivalence harness for the engine refactor.
//!
//! `reference_run` below is a frozen, verbatim transplant of the
//! pre-refactor monolithic `Simulator::run` loop (heap of arrival+finish
//! events, inline phases, `HashMap`-based running set with per-use
//! re-sorting). Every test drives the same trace through the reference and
//! through the new layered engine (`Simulator::run`, which wraps
//! `Engine` + `Recorder`) and asserts the two [`SimResult`]s are
//! **identical** — every record field, every counter.
//!
//! Covered matrix: every main-roster [`PolicyKind`] × {FCFS, WFP} ×
//! {EASY, conservative} on Cori-like and Theta-like synthetic traces,
//! the SSD roster on a heterogeneous-SSD system, plus queue-scoped
//! backfilling and dynamic windows.

use bbsched_core::pools::PoolState;
use bbsched_core::problem::JobDemand;
use bbsched_core::window::fill_window;
use bbsched_core::window::StarvationTracker;
use bbsched_policies::{GaParams, PolicyKind, SelectionPolicy};
use bbsched_sim::{
    BackfillAlgorithm, BackfillScope, BaseScheduler, DynamicWindow, JobRecord, LegacyProfile,
    SimConfig, SimResult, Simulator, StartReason,
};
use bbsched_workloads::{generate, GeneratorConfig, Job, MachineProfile, SystemConfig, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

const TIME_EPS: f64 = 1e-6;

#[derive(Clone, Copy, Debug, PartialEq)]
enum EventKind {
    Arrive(usize),
    Finish(usize),
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug)]
struct Running {
    est_end: f64,
    demand: JobDemand,
    asn: bbsched_core::pools::NodeAssignment,
}

fn shadow_and_leftover(
    pool: &PoolState,
    running: &HashMap<usize, Running>,
    head: &JobDemand,
    now: f64,
) -> (f64, PoolState) {
    if pool.fits(head) {
        let mut leftover = *pool;
        let _ = leftover.alloc(head);
        return (now, leftover);
    }
    let mut run_list: Vec<(&usize, &Running)> = running.iter().collect();
    run_list.sort_by(|(ia, a), (ib, b)| a.est_end.total_cmp(&b.est_end).then(ia.cmp(ib)));
    let mut future = *pool;
    for (_, r) in run_list {
        future.free(&r.demand, r.asn);
        if future.fits(head) {
            let mut leftover = future;
            let _ = leftover.alloc(head);
            return (r.est_end, leftover);
        }
    }
    (f64::INFINITY, PoolState::cpu_bb(0, 0.0))
}

/// The pre-refactor monolithic loop, frozen as the golden reference.
#[allow(clippy::too_many_arguments)]
fn reference_run(
    system: &SystemConfig,
    trace: &Trace,
    cfg: &SimConfig,
    demands: &[JobDemand],
    clamped: usize,
    mut policy: Box<dyn SelectionPolicy>,
) -> SimResult {
    let jobs = trace.jobs();
    let n = jobs.len();
    let mut pool = system.pool_state();

    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(2 * n + 1);
    let mut seq = 0u64;
    for (i, job) in jobs.iter().enumerate() {
        events.push(Reverse(Event { time: job.submit, seq, kind: EventKind::Arrive(i) }));
        seq += 1;
    }

    let mut queue: Vec<usize> = Vec::new();
    let mut running: HashMap<usize, Running> = HashMap::new();
    let mut completed_ids: HashSet<u64> = HashSet::with_capacity(n);
    let mut records: Vec<JobRecord> = Vec::with_capacity(n);
    let mut tracker = StarvationTracker::new();
    let mut invocations = 0u64;
    let mut backfilled = 0usize;
    let mut starvation_forced = 0usize;
    let mut makespan = 0.0f64;

    let start_job = |idx: usize,
                     now: f64,
                     reason: StartReason,
                     pool: &mut PoolState,
                     running: &mut HashMap<usize, Running>,
                     events: &mut BinaryHeap<Reverse<Event>>,
                     records: &mut Vec<JobRecord>,
                     seq: &mut u64| {
        let job = &jobs[idx];
        let d = demands[idx];
        let asn = pool.alloc(&d);
        let end = now + job.runtime;
        events.push(Reverse(Event { time: end, seq: *seq, kind: EventKind::Finish(idx) }));
        *seq += 1;
        running.insert(idx, Running { est_end: now + job.walltime, demand: d, asn });
        records.push(JobRecord {
            id: job.id,
            submit: job.submit,
            start: now,
            end,
            runtime: job.runtime,
            walltime: job.walltime,
            nodes: d.nodes,
            bb_gb: d.bb_gb,
            ssd_gb_per_node: d.ssd_gb_per_node,
            extra: d.extra,
            assignment: asn,
            wasted_ssd_gb: pool.wasted_capacity_gb(&d, &asn),
            reason,
        });
    };

    while let Some(Reverse(ev)) = events.pop() {
        let now = ev.time;
        let mut apply = |ev: Event,
                         queue: &mut Vec<usize>,
                         running: &mut HashMap<usize, Running>,
                         pool: &mut PoolState| {
            match ev.kind {
                EventKind::Arrive(i) => queue.push(i),
                EventKind::Finish(i) => {
                    let r = running.remove(&i).expect("finish for job not running");
                    pool.free(&r.demand, r.asn);
                    completed_ids.insert(jobs[i].id);
                    makespan = makespan.max(now);
                }
            }
        };
        apply(ev, &mut queue, &mut running, &mut pool);
        while let Some(Reverse(next)) = events.peek() {
            if next.time > now {
                break;
            }
            let next = events.pop().expect("peeked event vanished").0;
            apply(next, &mut queue, &mut running, &mut pool);
        }

        if queue.is_empty() {
            continue;
        }
        invocations += 1;

        // --- (1) base-scheduler priority order ---
        cfg.base.order(&mut queue, jobs, now);

        // --- (2) fill the window with dependency-satisfied jobs ---
        let deps_met =
            |qpos: usize| jobs[queue[qpos]].deps.iter().all(|d| completed_ids.contains(d));
        let window_size =
            cfg.dynamic_window.map(|d| d.size_for(queue.len())).unwrap_or(cfg.window.size);
        let window_qpos = fill_window(queue.len(), window_size, deps_met);
        let window_idx: Vec<usize> = window_qpos.iter().map(|&q| queue[q]).collect();
        let window_ids: Vec<u64> = window_idx.iter().map(|&i| jobs[i].id).collect();

        let mut started: HashSet<usize> = HashSet::new();

        // --- (3) starvation bound ---
        let mut blocked_head: Option<usize> = None;
        for &idx in &window_idx {
            if tracker.is_starved(jobs[idx].id, cfg.window.starvation_bound) {
                if pool.fits(&demands[idx]) {
                    start_job(
                        idx,
                        now,
                        StartReason::Starvation,
                        &mut pool,
                        &mut running,
                        &mut events,
                        &mut records,
                        &mut seq,
                    );
                    started.insert(idx);
                    starvation_forced += 1;
                } else {
                    blocked_head = Some(idx);
                    break;
                }
            }
        }

        // --- (4) multi-resource selection from the window ---
        let policy_avail = match blocked_head {
            None => pool,
            Some(b) => {
                let (_, leftover) = shadow_and_leftover(&pool, &running, &demands[b], now);
                pool.component_min(&leftover)
            }
        };
        {
            let remaining: Vec<usize> = window_idx
                .iter()
                .copied()
                .filter(|i| !started.contains(i) && Some(*i) != blocked_head)
                .collect();
            if !remaining.is_empty() {
                let sel_demands: Vec<JobDemand> = remaining.iter().map(|&i| demands[i]).collect();
                let selection = policy.select(&sel_demands, &policy_avail, invocations);
                for &s in &selection {
                    let idx = remaining[s];
                    start_job(
                        idx,
                        now,
                        StartReason::Policy,
                        &mut pool,
                        &mut running,
                        &mut events,
                        &mut records,
                        &mut seq,
                    );
                    started.insert(idx);
                }
            }
        }

        // --- (5) EASY backfilling ---
        let waiting: Vec<usize> = match cfg.backfill {
            BackfillScope::Window => {
                window_idx.iter().copied().filter(|i| !started.contains(i)).collect()
            }
            BackfillScope::Queue => queue
                .iter()
                .copied()
                .filter(|i| {
                    !started.contains(i) && jobs[*i].deps.iter().all(|d| completed_ids.contains(d))
                })
                .collect(),
        };

        if cfg.backfill_algorithm == BackfillAlgorithm::Conservative {
            // The reference stays frozen on the rebuild-per-pass profile
            // (`LegacyProfile` preserves the pre-incremental code
            // verbatim), so the incremental path is always compared
            // against the original semantics.
            let mut profile = LegacyProfile::new(now, pool, {
                let mut keyed: Vec<(&usize, &Running)> = running.iter().collect();
                keyed.sort_by(|(ia, a), (ib, b)| a.est_end.total_cmp(&b.est_end).then(ia.cmp(ib)));
                keyed.into_iter().map(|(_, r)| (r.est_end, r.demand, r.asn)).collect::<Vec<_>>()
            });
            let mut ordered: Vec<usize> = Vec::with_capacity(waiting.len() + 1);
            if let Some(b) = blocked_head {
                ordered.push(b);
            }
            ordered.extend(waiting.iter().copied().filter(|&i| Some(i) != blocked_head));
            for (scanned, idx) in ordered.into_iter().enumerate() {
                if scanned >= cfg.max_backfill_scan {
                    break;
                }
                if started.contains(&idx) {
                    continue;
                }
                let d = demands[idx];
                let walltime = jobs[idx].walltime.max(1.0);
                let t = profile.earliest_start(&d, now, walltime);
                if t <= now + TIME_EPS && pool.fits(&d) {
                    start_job(
                        idx,
                        now,
                        StartReason::Backfill,
                        &mut pool,
                        &mut running,
                        &mut events,
                        &mut records,
                        &mut seq,
                    );
                    started.insert(idx);
                    backfilled += 1;
                    profile.reserve(&d, t, walltime);
                } else if t.is_finite() {
                    profile.reserve(&d, t, walltime);
                }
            }
            if !started.is_empty() {
                let started_ids: Vec<u64> = window_idx
                    .iter()
                    .filter(|i| started.contains(i))
                    .map(|&i| jobs[i].id)
                    .collect();
                tracker.observe(&window_ids, &started_ids);
                for &i in &started {
                    tracker.forget(jobs[i].id);
                }
            }
            queue.retain(|i| !started.contains(i));
            continue;
        }

        let mut head_cursor = 0usize;
        let mut head: Option<usize> = None;
        while head_cursor < waiting.len() {
            let idx = waiting[head_cursor];
            if let Some(b) = blocked_head {
                head = Some(b);
                break;
            }
            if started.contains(&idx) {
                head_cursor += 1;
                continue;
            }
            if pool.fits(&demands[idx]) {
                start_job(
                    idx,
                    now,
                    StartReason::Backfill,
                    &mut pool,
                    &mut running,
                    &mut events,
                    &mut records,
                    &mut seq,
                );
                started.insert(idx);
                head_cursor += 1;
            } else {
                head = Some(idx);
                break;
            }
        }

        if let Some(head_idx) = head {
            let (shadow, mut leftover) =
                shadow_and_leftover(&pool, &running, &demands[head_idx], now);

            for (scanned, &idx) in waiting.iter().enumerate() {
                if scanned >= cfg.max_backfill_scan {
                    break;
                }
                if started.contains(&idx) || idx == head_idx {
                    continue;
                }
                let d = demands[idx];
                if !pool.fits(&d) {
                    continue;
                }
                let ends_before_shadow = now + jobs[idx].walltime <= shadow + TIME_EPS;
                if ends_before_shadow || leftover.fits(&d) {
                    if !ends_before_shadow {
                        let _ = leftover.alloc(&d);
                    }
                    start_job(
                        idx,
                        now,
                        StartReason::Backfill,
                        &mut pool,
                        &mut running,
                        &mut events,
                        &mut records,
                        &mut seq,
                    );
                    started.insert(idx);
                    backfilled += 1;
                }
            }
        }

        // --- (6) starvation bookkeeping & queue cleanup ---
        if !started.is_empty() {
            let started_ids: Vec<u64> =
                window_idx.iter().filter(|i| started.contains(i)).map(|&i| jobs[i].id).collect();
            tracker.observe(&window_ids, &started_ids);
            for &i in &started {
                tracker.forget(jobs[i].id);
            }
        }
        queue.retain(|i| !started.contains(i));
    }

    assert_eq!(records.len(), n, "reference: every job must run exactly once");
    assert!(running.is_empty());
    records.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.id.cmp(&b.id)));

    SimResult {
        policy: policy.name().to_string(),
        base: cfg.base.name().to_string(),
        system: system.clone(),
        records,
        makespan,
        invocations,
        clamped_jobs: clamped,
        backfilled,
        starvation_forced,
    }
}

/// Fast GA settings: deterministic and cheap, but still exercising the
/// GA-backed policies' real selection path.
fn ga() -> GaParams {
    GaParams { generations: 15, ..GaParams::default() }
}

/// Asserts the new engine reproduces the reference exactly for one combo.
fn assert_equivalent(system: &SystemConfig, trace: &Trace, cfg: SimConfig, kind: PolicyKind) {
    let sim = Simulator::new(system, trace, cfg.clone()).unwrap();
    let demands = sim.demands().to_vec();
    let clamped = sim.clamped_jobs();
    let golden = reference_run(system, trace, &cfg, &demands, clamped, kind.build(ga()));
    let new = sim.run(kind.build(ga()));
    assert_eq!(
        golden,
        new,
        "engine diverged from reference: policy {} base {:?} algo {:?} scope {:?}",
        kind.name(),
        cfg.base,
        cfg.backfill_algorithm,
        cfg.backfill
    );
}

fn cori_trace() -> (SystemConfig, Trace) {
    let profile = MachineProfile::cori().scaled(0.05);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 60, seed: 2_019, load_factor: 1.2, ..Default::default() },
    );
    (profile.system, trace)
}

fn theta_trace() -> (SystemConfig, Trace) {
    let profile = MachineProfile::theta().scaled(0.05);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 60, seed: 4_242, load_factor: 1.2, ..Default::default() },
    );
    (profile.system, trace)
}

#[test]
fn golden_cori_all_policies_all_bases_all_backfills() {
    let (system, trace) = cori_trace();
    for kind in PolicyKind::main_roster() {
        for base in [BaseScheduler::Fcfs, BaseScheduler::Wfp] {
            for algo in [BackfillAlgorithm::Easy, BackfillAlgorithm::Conservative] {
                let cfg = SimConfig { base, backfill_algorithm: algo, ..SimConfig::default() };
                assert_equivalent(&system, &trace, cfg, kind);
            }
        }
    }
}

#[test]
fn golden_theta_all_policies_all_bases_all_backfills() {
    let (system, trace) = theta_trace();
    for kind in PolicyKind::main_roster() {
        for base in [BaseScheduler::Fcfs, BaseScheduler::Wfp] {
            for algo in [BackfillAlgorithm::Easy, BackfillAlgorithm::Conservative] {
                let cfg = SimConfig { base, backfill_algorithm: algo, ..SimConfig::default() };
                assert_equivalent(&system, &trace, cfg, kind);
            }
        }
    }
}

#[test]
fn golden_queue_scope_and_small_window() {
    let (system, trace) = cori_trace();
    for kind in PolicyKind::main_roster() {
        let cfg = SimConfig {
            backfill: BackfillScope::Queue,
            window: bbsched_core::window::WindowConfig { size: 8, starvation_bound: 12 },
            ..SimConfig::default()
        };
        assert_equivalent(&system, &trace, cfg, kind);
    }
}

#[test]
fn golden_dynamic_window() {
    let (system, trace) = theta_trace();
    for kind in [PolicyKind::BbSched, PolicyKind::BinPacking, PolicyKind::Baseline] {
        let cfg = SimConfig {
            dynamic_window: Some(DynamicWindow { min: 4, max: 24, queue_fraction: 0.3 }),
            ..SimConfig::default()
        };
        assert_equivalent(&system, &trace, cfg, kind);
    }
}

/// Bit-exact end-to-end fingerprints: FNV-1a over the IEEE-754 bits of
/// every record's `(start, end, wait)` for three GA-backed policies on a
/// small Theta trace, captured immediately before the
/// incremental-aggregate GA kernel landed. Unlike the reference-vs-engine
/// tests above — which would pass if both sides drifted together — these
/// constants pin the schedule itself across solver rewrites.
#[test]
fn golden_sim_fingerprints_are_bit_stable() {
    let profile = MachineProfile::theta().scaled(0.02);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 80, seed: 9, load_factor: 1.1, ..Default::default() },
    );
    let expected = [
        (PolicyKind::BbSched, 0xc24e_70a0_c39f_c06b_u64),
        (PolicyKind::Weighted, 0x96c5_ae74_93e8_bedf),
        (PolicyKind::ConstrainedBb, 0x91e1_03d4_e8f2_4cdf),
    ];
    for (kind, want) in expected {
        let ga = GaParams { generations: 60, ..GaParams::default() };
        let result = Simulator::new(&profile.system, &trace, SimConfig::default())
            .unwrap()
            .run(kind.build(ga));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &result.records {
            for v in [r.start, r.end, r.start - r.submit] {
                h ^= v.to_bits();
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        assert_eq!(h, want, "{} record stream diverged from its golden fingerprint", kind.name());
    }
}

/// The incremental conservative path (persistent mirror-fed profile,
/// skyline-indexed queries) must produce bit-identical results to the
/// frozen rebuild-per-pass strategy through the *real* engine — not just
/// against the monolithic reference. This is the direct old-vs-new check
/// for the persistent-profile tentpole.
#[test]
fn golden_incremental_conservative_equals_rebuild_per_pass() {
    for (system, trace) in [cori_trace(), theta_trace()] {
        for kind in [PolicyKind::BbSched, PolicyKind::BinPacking, PolicyKind::Baseline] {
            for base in [BaseScheduler::Fcfs, BaseScheduler::Wfp] {
                let run = |algo: BackfillAlgorithm| {
                    let cfg = SimConfig { base, backfill_algorithm: algo, ..SimConfig::default() };
                    Simulator::new(&system, &trace, cfg).unwrap().run(kind.build(ga()))
                };
                let incremental = run(BackfillAlgorithm::Conservative);
                let rebuild = run(BackfillAlgorithm::ConservativeRebuild);
                assert_eq!(
                    incremental,
                    rebuild,
                    "incremental conservative diverged from rebuild-per-pass: policy {} base {:?}",
                    kind.name(),
                    base
                );
            }
        }
    }
}

/// WFP memo-replay vs always-refold, mid-scale. The incremental
/// conservative strategy replays a pure-arrival pass's memoized
/// reservations verbatim whenever the kinetic WFP queue had no score
/// crossings in the replayed prefix (stable-prefix witness); the frozen
/// rebuild-per-pass strategy refolds and re-queries every pass and
/// never memoizes — the literal "always refold" discipline. A
/// fifth-scale Theta at 700 jobs keeps queue depths high enough that
/// replayed passes, crossing-driven bails, and fresh-tail queries all
/// occur under WFP, while the rebuild oracle stays affordable in debug
/// test runs. The `SimResult`s must be byte-identical.
#[test]
fn golden_wfp_memo_replay_equals_always_refold_midscale() {
    let profile = MachineProfile::theta().scaled(0.2);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 700, seed: 77, load_factor: 1.05, ..Default::default() },
    );
    let run = |algo: BackfillAlgorithm| {
        let cfg = SimConfig {
            base: BaseScheduler::Wfp,
            backfill_algorithm: algo,
            backfill: BackfillScope::Queue,
            ..SimConfig::default()
        };
        Simulator::new(&profile.system, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()))
    };
    let replayed = run(BackfillAlgorithm::Conservative);
    let refolded = run(BackfillAlgorithm::ConservativeRebuild);
    assert_eq!(replayed.records.len(), 700);
    assert_eq!(
        replayed, refolded,
        "WFP memo-replayed conservative SimResult diverged from always-refold"
    );
}

/// Bench-scale old-vs-new: the exact `simulate_large/20k_conservative_fcfs`
/// workload (same machine, generator seed, and queue-scoped config as
/// `bench_sim`) through both conservative strategies, asserting the full
/// 20k-record `SimResult`s are identical. At this depth the profiles carry
/// hundreds of segments per pass, so the memoized replay path and the
/// column-scan / tree query indexes all engage — none of which the small
/// golden traces above reach. Ignored by default: the rebuild-per-pass
/// oracle alone takes ~13 minutes in release (hours in debug). Run with
/// `cargo test --release -p bbsched-sim --test golden_equivalence -- --ignored`.
#[test]
#[ignore = "bench-scale (~15 min in release); run explicitly with -- --ignored"]
fn golden_20k_conservative_equals_rebuild_at_bench_scale() {
    let profile = MachineProfile::theta().scaled(0.2);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 20_000, seed: 77, load_factor: 1.05, ..Default::default() },
    );
    let run = |algo: BackfillAlgorithm| {
        let cfg = SimConfig {
            base: BaseScheduler::Fcfs,
            backfill_algorithm: algo,
            backfill: BackfillScope::Queue,
            ..SimConfig::default()
        };
        Simulator::new(&profile.system, &trace, cfg)
            .unwrap()
            .run(PolicyKind::Baseline.build(GaParams::default()))
    };
    let incremental = run(BackfillAlgorithm::Conservative);
    let rebuild = run(BackfillAlgorithm::ConservativeRebuild);
    assert_eq!(incremental.records.len(), 20_000);
    assert_eq!(
        incremental, rebuild,
        "20k conservative SimResult diverged from the rebuild-per-pass oracle"
    );
}

#[test]
fn golden_ssd_roster_on_heterogeneous_system() {
    let system = SystemConfig {
        name: "ssd-golden".into(),
        nodes: 24,
        bb_gb: 20_000.0,
        bb_reserved_gb: 0.0,
        nodes_128: 12,
        nodes_256: 12,
        extra_resources: Vec::new(),
    };
    let jobs: Vec<Job> = (0..40u64)
        .map(|i| {
            let nodes = 1 + (i % 10) as u32;
            let ssd = match i % 4 {
                0 => 0.0,
                1 => 64.0,
                2 => 150.0,
                _ => 240.0,
            };
            Job::new(i, i as f64 * 40.0, nodes, 300.0 + (i % 5) as f64 * 120.0, 1_200.0)
                .with_bb(if i % 3 == 0 { 2_000.0 } else { 0.0 })
                .with_ssd(ssd)
        })
        .collect();
    let trace = Trace::from_jobs(jobs).unwrap();
    for kind in PolicyKind::ssd_roster() {
        for algo in [BackfillAlgorithm::Easy, BackfillAlgorithm::Conservative] {
            let cfg = SimConfig { backfill_algorithm: algo, ..SimConfig::default() };
            assert_equivalent(&system, &trace, cfg, kind);
        }
    }
}
