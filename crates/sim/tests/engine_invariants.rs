//! Engine invariants checked from the outside, through [`SimObserver`]
//! callbacks only: allocation conservation (every allocation is freed by
//! the end) and availability bounds (free resources never go negative,
//! never exceed capacity) hold at every observable instant.
//!
//! The observer mirrors the engine's pool with its own shadow
//! [`PoolState`], replaying each start/finish exactly as announced. Since
//! the replay sees the same alloc/free sequence the engine performed, the
//! greedy flavour assignment must also match — asserted per start.

use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;
use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sim::{BackfillAlgorithm, BaseScheduler, JobStart, SimConfig, SimObserver, Simulator};
use bbsched_workloads::{generate, GeneratorConfig, Job, MachineProfile, SystemConfig, Trace};

/// Shadows the engine's resource accounting from observer callbacks alone
/// and asserts the conservation laws at every transition.
struct ConservationObserver {
    shadow: PoolState,
    capacity: PoolState,
    /// Live allocations: (job id, demand, assignment) as announced.
    outstanding: Vec<(u64, JobDemand, NodeAssignment)>,
    starts: usize,
    finishes: usize,
    sim_ended: bool,
}

impl ConservationObserver {
    fn new(system: &SystemConfig) -> Self {
        let pool = system.pool_state();
        Self {
            shadow: pool,
            capacity: pool,
            outstanding: Vec::new(),
            starts: 0,
            finishes: 0,
            sim_ended: false,
        }
    }

    fn check_bounds(&self, when: &str) {
        for r in 0..self.shadow.num_resources() {
            let free = self.shadow.free_of(r);
            let cap = self.capacity.free_of(r);
            assert!(free >= -1e-6, "{when}: resource {r} went negative ({free})");
            assert!(free <= cap + 1e-6, "{when}: resource {r} free {free} exceeds capacity {cap}");
        }
    }
}

impl SimObserver for ConservationObserver {
    fn on_job_started(&mut self, start: &JobStart<'_>) {
        self.starts += 1;
        assert!(
            self.shadow.fits(&start.demand),
            "engine started job {} without room for it",
            start.job.id
        );
        let asn = self.shadow.alloc(&start.demand);
        assert_eq!(
            asn, start.assignment,
            "engine's flavour assignment diverged from the shadow replay (job {})",
            start.job.id
        );
        self.outstanding.push((start.job.id, start.demand, asn));
        self.check_bounds("after start");
        assert!(start.est_end >= start.now, "est_end precedes start");
        assert!(start.wasted_ssd_gb >= 0.0, "negative waste");
    }

    fn on_job_finished(&mut self, _now: f64, job: &Job, demand: &JobDemand) {
        self.finishes += 1;
        let pos = self
            .outstanding
            .iter()
            .position(|(id, _, _)| *id == job.id)
            .expect("finish without matching start");
        let (_, d, asn) = self.outstanding.swap_remove(pos);
        assert_eq!(&d, demand, "finish reports a different demand than the start");
        self.shadow.free(&d, asn);
        self.check_bounds("after finish");
    }

    fn on_sim_end(&mut self, _makespan: f64, _invocations: u64) {
        self.sim_ended = true;
        assert!(
            self.outstanding.is_empty(),
            "{} allocations never freed: {:?}",
            self.outstanding.len(),
            self.outstanding.iter().map(|(id, _, _)| *id).collect::<Vec<_>>()
        );
        assert_eq!(self.starts, self.finishes, "start/finish counts diverge");
        for r in 0..self.shadow.num_resources() {
            let free = self.shadow.free_of(r);
            let cap = self.capacity.free_of(r);
            assert!(
                (free - cap).abs() <= 1e-6,
                "resource {r} leaked: free {free} != capacity {cap}"
            );
        }
    }
}

fn run_with_observer(system: &SystemConfig, trace: &Trace, cfg: SimConfig, kind: PolicyKind) {
    let mut obs = ConservationObserver::new(system);
    let sim = Simulator::new(system, trace, cfg).unwrap();
    let ga = GaParams { generations: 15, ..GaParams::default() };
    let result = sim.run_observed(kind.build(ga), &mut [&mut obs]);
    assert!(obs.sim_ended, "on_sim_end never fired");
    assert_eq!(obs.starts, trace.len(), "every job starts exactly once");
    assert_eq!(result.records.len(), trace.len());
}

#[test]
fn conservation_holds_on_contended_cori_trace() {
    let profile = MachineProfile::cori().scaled(0.05);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 80, seed: 77, load_factor: 1.4, ..Default::default() },
    );
    for algo in [BackfillAlgorithm::Easy, BackfillAlgorithm::Conservative] {
        let cfg = SimConfig { backfill_algorithm: algo, ..SimConfig::default() };
        run_with_observer(&profile.system, &trace, cfg, PolicyKind::BbSched);
    }
}

#[test]
fn conservation_holds_under_wfp_and_queue_scope() {
    let profile = MachineProfile::theta().scaled(0.05);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 80, seed: 13, load_factor: 1.3, ..Default::default() },
    );
    let cfg = SimConfig {
        base: BaseScheduler::Wfp,
        backfill: bbsched_sim::BackfillScope::Queue,
        ..SimConfig::default()
    };
    run_with_observer(&profile.system, &trace, cfg, PolicyKind::BinPacking);
}

#[test]
fn conservation_holds_on_heterogeneous_ssd_system() {
    let system = SystemConfig {
        name: "ssd-invariant".into(),
        nodes: 16,
        bb_gb: 10_000.0,
        bb_reserved_gb: 500.0,
        nodes_128: 8,
        nodes_256: 8,
        extra_resources: Vec::new(),
    };
    let jobs: Vec<Job> = (0..60u64)
        .map(|i| {
            Job::new(i, i as f64 * 25.0, 1 + (i % 8) as u32, 200.0 + (i % 6) as f64 * 90.0, 900.0)
                .with_ssd(match i % 3 {
                    0 => 0.0,
                    1 => 100.0,
                    _ => 200.0,
                })
                .with_bb(if i % 4 == 0 { 1_500.0 } else { 0.0 })
        })
        .collect();
    let trace = Trace::from_jobs(jobs).unwrap();
    run_with_observer(&system, &trace, SimConfig::default(), PolicyKind::WeightedBb);
}
