//! Checkpoint-equivalence golden suite (DESIGN.md §12): interrupting a
//! run at **every** invocation boundary, round-tripping the snapshot
//! through its JSON wire encoding, and continuing in a freshly restored
//! driver must reproduce the uninterrupted run's decision stream byte
//! for byte — zero diffs, for both drivers of the service core:
//!
//! * the discrete-event simulator ([`Engine::run_until`] /
//!   [`Engine::snapshot`] / [`Engine::restore`]), cut at every event
//!   instant of the trace;
//! * the online replay driver ([`Replayer::snapshot`] /
//!   [`Replayer::restore`]), cut after every event of the equivalent
//!   wire stream (including cuts inside a same-instant batch).
//!
//! Cases cover a Cori-like trace (FCFS base) and a Theta-like trace
//! (WFP base), each under EASY and conservative backfilling.

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{DecisionLog, JobEvent, ReplaySnapshot, Replayer, SchedObserver};
use bbsched_sim::{
    Arrival, BackfillAlgorithm, BaseScheduler, Engine, EngineSnapshot, SimConfig, Simulator,
};
use bbsched_workloads::{generate, GeneratorConfig, MachineProfile, Trace};

fn make_trace(profile: &MachineProfile, n_jobs: usize) -> Trace {
    generate(
        profile,
        &GeneratorConfig { n_jobs, seed: 23, load_factor: 1.5, ..GeneratorConfig::default() },
    )
}

fn arrivals_of(profile: &MachineProfile, trace: &Trace, cfg: &SimConfig) -> Vec<Arrival> {
    let sim = Simulator::new(&profile.system, trace, cfg.clone()).expect("valid test config");
    trace
        .jobs()
        .iter()
        .cloned()
        .zip(sim.demands().iter().copied())
        .map(|(job, demand)| Arrival { job, demand })
        .collect()
}

/// Simulator driver: cut at every event instant (arrivals and simulated
/// completions — every instant at which an invocation runs).
fn check_engine_cuts(
    profile: &MachineProfile,
    base: BaseScheduler,
    algorithm: BackfillAlgorithm,
    n_jobs: usize,
) {
    let trace = make_trace(profile, n_jobs);
    let cfg = SimConfig { base, backfill_algorithm: algorithm, ..SimConfig::default() };
    let ga = GaParams { generations: 15, ..GaParams::default() };
    let policy = || PolicyKind::Baseline.build(ga);
    let arrivals = arrivals_of(profile, &trace, &cfg);

    let mut full_log = DecisionLog::new();
    let full_result = {
        let engine = Engine::new(&profile.system, cfg.clone(), policy(), vec![&mut full_log])
            .expect("valid test config");
        engine.run(arrivals.clone())
    };
    let full = full_log.into_lines();
    assert_eq!(full_result.jobs, n_jobs);

    // Every invocation boundary: each arrival instant and each completion
    // instant of the uninterrupted schedule.
    let mut instants: Vec<f64> = arrivals.iter().map(|a| a.job.submit).collect();
    instants.extend(decision_instants(&full));
    instants.sort_by(f64::total_cmp);
    instants.dedup();

    for &cut in &instants {
        let mut head_log = DecisionLog::new();
        let mut engine = Engine::new(&profile.system, cfg.clone(), policy(), vec![&mut head_log])
            .expect("valid test config");
        let mut stream = arrivals.clone().into_iter().peekable();
        engine.run_until(&mut stream, cut);
        let json = serde_json::to_string(&engine.snapshot()).expect("snapshot serializes");
        drop(engine);

        let snap: EngineSnapshot = serde_json::from_str(&json).expect("snapshot decodes");
        let mut tail_log = DecisionLog::new();
        let resumed =
            Engine::restore(snap, policy(), vec![&mut tail_log]).expect("snapshot restores");
        let summary = resumed.run(stream);
        assert_eq!(summary.makespan, full_result.makespan, "cut at t={cut}");

        let mut combined = head_log.into_lines();
        combined.extend(tail_log.into_lines());
        assert_eq!(
            combined, full,
            "{base:?}/{algorithm:?}: decision stream diverges when cut at t={cut}"
        );
    }
}

/// Extracts the `"t"` timestamp of every decision line: together with
/// the arrival instants these cover every invocation boundary at which
/// the schedule changed, so cutting at each one exercises snapshots of
/// every distinct mid-run state.
fn decision_instants(lines: &[String]) -> Vec<f64> {
    lines
        .iter()
        .filter_map(|l| {
            let key = "\"t\":";
            let at = l.find(key)? + key.len();
            let rest = &l[at..];
            let end = rest.find([',', '}'])?;
            rest[..end].trim().parse::<f64>().ok()
        })
        .collect()
}

/// Replay driver: cut after every wire event, resume in a fresh replayer
/// (fresh policy object, fresh observers), diff the concatenated stream.
fn check_replay_cuts(
    profile: &MachineProfile,
    base: BaseScheduler,
    algorithm: BackfillAlgorithm,
    n_jobs: usize,
) {
    let trace = make_trace(profile, n_jobs);
    let cfg = SimConfig { base, backfill_algorithm: algorithm, ..SimConfig::default() };
    let ga = GaParams { generations: 15, ..GaParams::default() };
    let kind = PolicyKind::Baseline;

    // The event stream a production feed would deliver: submits at trace
    // times, finishes at the simulated completion times.
    let result = Simulator::new(&profile.system, &trace, cfg.clone())
        .expect("valid test config")
        .run(kind.build(ga));
    let mut events: Vec<JobEvent> = trace.jobs().iter().cloned().map(JobEvent::Submit).collect();
    events.extend(result.records.iter().map(|r| JobEvent::Finish { id: r.id, time: r.end }));
    events.sort_by(|a, b| a.time().total_cmp(&b.time()));

    let full = {
        let mut log = DecisionLog::new();
        {
            let observers: Vec<&mut dyn SchedObserver> = vec![&mut log];
            let mut replayer =
                Replayer::new(&profile.system, cfg.sched(), kind.build(ga), observers)
                    .expect("valid test config");
            for event in &events {
                replayer.feed(event.clone()).expect("stream is valid");
            }
            replayer.finish().expect("final flush succeeds");
        }
        log.into_lines()
    };

    for cut in 0..=events.len() {
        let mut head_log = DecisionLog::new();
        let json;
        {
            let observers: Vec<&mut dyn SchedObserver> = vec![&mut head_log];
            let mut replayer =
                Replayer::new(&profile.system, cfg.sched(), kind.build(ga), observers)
                    .expect("valid test config");
            for event in &events[..cut] {
                replayer.feed(event.clone()).expect("stream is valid");
            }
            json = serde_json::to_string(&replayer.snapshot()).expect("snapshot serializes");
        }

        let snap: ReplaySnapshot = serde_json::from_str(&json).expect("snapshot decodes");
        let mut tail_log = DecisionLog::new();
        {
            let observers: Vec<&mut dyn SchedObserver> = vec![&mut tail_log];
            let mut replayer =
                Replayer::restore(snap, kind.build(ga), observers).expect("snapshot restores");
            for event in &events[cut..] {
                replayer.feed(event.clone()).expect("stream is valid");
            }
            let summary = replayer.finish().expect("final flush succeeds");
            assert_eq!(summary.left_waiting, 0, "cut at event {cut}");
            assert_eq!(summary.left_running, 0, "cut at event {cut}");
        }

        let mut combined = head_log.into_lines();
        combined.extend(tail_log.into_lines());
        assert_eq!(
            combined, full,
            "{base:?}/{algorithm:?}: replay stream diverges when cut at event {cut}"
        );
    }
}

#[test]
fn cori_fcfs_easy_engine_cuts_are_byte_identical() {
    check_engine_cuts(
        &MachineProfile::cori().scaled(0.03),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Easy,
        60,
    );
}

#[test]
fn cori_fcfs_conservative_engine_cuts_are_byte_identical() {
    check_engine_cuts(
        &MachineProfile::cori().scaled(0.03),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Conservative,
        60,
    );
}

#[test]
fn theta_wfp_easy_engine_cuts_are_byte_identical() {
    check_engine_cuts(
        &MachineProfile::theta().scaled(0.03),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Easy,
        60,
    );
}

#[test]
fn theta_wfp_conservative_engine_cuts_are_byte_identical() {
    check_engine_cuts(
        &MachineProfile::theta().scaled(0.03),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Conservative,
        60,
    );
}

#[test]
fn cori_fcfs_easy_replay_cuts_are_byte_identical() {
    check_replay_cuts(
        &MachineProfile::cori().scaled(0.03),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Easy,
        60,
    );
}

#[test]
fn cori_fcfs_conservative_replay_cuts_are_byte_identical() {
    check_replay_cuts(
        &MachineProfile::cori().scaled(0.03),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Conservative,
        60,
    );
}

#[test]
fn theta_wfp_easy_replay_cuts_are_byte_identical() {
    check_replay_cuts(
        &MachineProfile::theta().scaled(0.03),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Easy,
        60,
    );
}

#[test]
fn theta_wfp_conservative_replay_cuts_are_byte_identical() {
    check_replay_cuts(
        &MachineProfile::theta().scaled(0.03),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Conservative,
        60,
    );
}
