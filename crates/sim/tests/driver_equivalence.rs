//! Driver-equivalence golden suite: the discrete-event simulator and the
//! online replay driver must emit **byte-identical** decision streams.
//!
//! The scheduler-service core (`bbsched-sched`) is supposed to be
//! driver-agnostic: all scheduling state lives behind
//! `SchedCore::{submit, job_finished, invoke}`, and a driver only decides
//! *when* those are called. This suite proves it end to end. Each case:
//!
//! 1. runs the simulator over a generated trace with a [`DecisionLog`]
//!    attached, collecting the canonical JSON decision lines;
//! 2. synthesizes the equivalent online event stream — one submit per
//!    trace job, one finish per simulated completion — and round-trips
//!    every event through the wire encoding
//!    ([`JobEvent::to_json_line`] / [`JobEvent::parse`]), so float
//!    bit-exactness across serialization is part of what is being tested;
//! 3. feeds the parsed events to a [`Replayer`] with its own
//!    [`DecisionLog`] and asserts the two streams are equal line by line.
//!
//! Cases cover both base schedulers (FCFS as on Cori, WFP as on Theta)
//! crossed with both live backfill disciplines (EASY and conservative),
//! on contended traces that exercise reservations, backfill holes, and
//! the starvation bound.

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{DecisionLog, JobEvent, Replayer, SchedObserver};
use bbsched_sim::{BackfillAlgorithm, BaseScheduler, SimConfig, SimResult, Simulator};
use bbsched_workloads::{generate, GeneratorConfig, MachineProfile, Trace};

/// Runs the simulator driver, returning the decision stream and the
/// result (whose records supply the completion times for the replay).
fn sim_stream(
    profile: &MachineProfile,
    trace: &Trace,
    cfg: &SimConfig,
    kind: PolicyKind,
    ga: GaParams,
) -> (Vec<String>, SimResult) {
    let mut log = DecisionLog::new();
    let result = Simulator::new(&profile.system, trace, cfg.clone())
        .expect("valid test config")
        .run_observed(kind.build(ga), &mut [&mut log]);
    (log.into_lines(), result)
}

/// Synthesizes the online event stream a production feed would deliver
/// for this schedule: submits at trace submit times, finishes at the
/// simulated completion times, merged in time order.
fn event_stream(trace: &Trace, result: &SimResult) -> Vec<JobEvent> {
    let mut events: Vec<JobEvent> = trace.jobs().iter().cloned().map(JobEvent::Submit).collect();
    events.extend(result.records.iter().map(|r| JobEvent::Finish { id: r.id, time: r.end }));
    // Stable sort: same-instant events keep submit-before-finish order,
    // though the replayer batches same-instant events so any order works.
    events.sort_by(|a, b| a.time().total_cmp(&b.time()));
    events
}

/// Replays `events` through the streaming driver (after a full wire
/// round-trip) and returns its decision stream.
fn replay_stream(
    profile: &MachineProfile,
    cfg: &SimConfig,
    kind: PolicyKind,
    ga: GaParams,
    events: &[JobEvent],
) -> Vec<String> {
    let mut log = DecisionLog::new();
    {
        let observers: Vec<&mut dyn SchedObserver> = vec![&mut log];
        let mut replayer = Replayer::new(&profile.system, cfg.sched(), kind.build(ga), observers)
            .expect("valid test config");
        for event in events {
            let line = event.to_json_line();
            let parsed = JobEvent::parse(&line)
                .unwrap_or_else(|e| panic!("wire round-trip failed on {line}: {e}"));
            assert_eq!(&parsed, event, "wire round-trip must be lossless");
            replayer.feed(parsed).expect("synthesized stream is valid");
        }
        let summary = replayer.finish().expect("final flush succeeds");
        assert_eq!(summary.left_waiting, 0, "replay must drain the queue");
        assert_eq!(summary.left_running, 0, "replay must drain the machine");
    }
    log.into_lines()
}

fn check_equivalence(
    profile: MachineProfile,
    base: BaseScheduler,
    algorithm: BackfillAlgorithm,
    kind: PolicyKind,
    n_jobs: usize,
) {
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs, seed: 11, load_factor: 1.4, ..GeneratorConfig::default() },
    );
    let cfg = SimConfig { base, backfill_algorithm: algorithm, ..SimConfig::default() };
    let ga = GaParams { generations: 20, ..GaParams::default() };

    let (sim_lines, result) = sim_stream(&profile, &trace, &cfg, kind, ga);
    assert_eq!(result.records.len(), n_jobs, "every job must run");
    assert!(
        sim_lines.iter().any(|l| l.contains("\"start\"")),
        "stream must contain start decisions"
    );

    let events = event_stream(&trace, &result);
    let replay_lines = replay_stream(&profile, &cfg, kind, ga, &events);

    assert_eq!(
        sim_lines.len(),
        replay_lines.len(),
        "{base:?}/{algorithm:?}: stream lengths diverge"
    );
    for (i, (s, r)) in sim_lines.iter().zip(&replay_lines).enumerate() {
        assert_eq!(s, r, "{base:?}/{algorithm:?}: decision {i} diverges");
    }
}

#[test]
fn fcfs_easy_streams_are_byte_identical() {
    check_equivalence(
        MachineProfile::cori().scaled(0.04),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Easy,
        PolicyKind::Baseline,
        120,
    );
}

#[test]
fn fcfs_conservative_streams_are_byte_identical() {
    check_equivalence(
        MachineProfile::cori().scaled(0.04),
        BaseScheduler::Fcfs,
        BackfillAlgorithm::Conservative,
        PolicyKind::Baseline,
        120,
    );
}

#[test]
fn wfp_easy_streams_are_byte_identical() {
    check_equivalence(
        MachineProfile::theta().scaled(0.04),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Easy,
        PolicyKind::Baseline,
        120,
    );
}

#[test]
fn wfp_conservative_streams_are_byte_identical() {
    check_equivalence(
        MachineProfile::theta().scaled(0.04),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Conservative,
        PolicyKind::Baseline,
        120,
    );
}

#[test]
fn ga_policy_streams_are_byte_identical() {
    // The GA-backed policy is seeded and deterministic; the equivalence
    // must hold through real optimizer-driven selections too.
    check_equivalence(
        MachineProfile::theta().scaled(0.04),
        BaseScheduler::Wfp,
        BackfillAlgorithm::Easy,
        PolicyKind::BbSched,
        80,
    );
}

#[test]
fn contended_streams_contain_reservations() {
    // Sanity on the vocabulary itself: a contended FCFS/EASY run must
    // publish reserve decisions for blocked heads, and they must survive
    // the driver swap byte-for-byte (covered above; here we pin presence).
    let profile = MachineProfile::cori().scaled(0.03);
    let trace = generate(
        &profile,
        &GeneratorConfig { n_jobs: 100, seed: 3, load_factor: 1.8, ..GeneratorConfig::default() },
    );
    let cfg = SimConfig::default();
    let ga = GaParams { generations: 15, ..GaParams::default() };
    let (lines, _) = sim_stream(&profile, &trace, &cfg, PolicyKind::Baseline, ga);
    assert!(
        lines.iter().any(|l| l.contains("\"reserve\"")),
        "a contended run must emit reserve decisions"
    );
}
