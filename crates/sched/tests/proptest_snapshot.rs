//! Property test for the explicit-state contract (DESIGN.md §12):
//! snapshotting [`SchedCore`] at a random point of a random
//! submit/finish/invoke interleaving, round-tripping the snapshot
//! through its JSON wire encoding, and restoring into a fresh core must
//! yield a *byte-identical continuation* — every subsequent invocation
//! of the restored core returns exactly the decisions of the
//! uninterrupted core, and the end-of-run snapshots are equal as JSON.
//!
//! The configuration matrix covers the paper's axes: R ∈ {2, 3}
//! resources (nodes+BB, nodes+BB+SSD), FCFS × WFP base scheduling,
//! EASY × conservative backfilling, and Baseline × BBSched (GA)
//! selection — the GA case exercises the snapshotted invocation counter
//! that seeds each per-invocation RNG stream.

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{
    clamp_demand, BackfillAlgorithm, BaseScheduler, Decision, SchedConfig, SchedCore,
};
use bbsched_workloads::{Job, SystemConfig};
use proptest::prelude::*;

fn system(r3: bool) -> SystemConfig {
    SystemConfig {
        name: "prop".into(),
        nodes: 16,
        bb_gb: 900.0,
        bb_reserved_gb: 0.0,
        nodes_128: if r3 { 8 } else { 0 },
        nodes_256: if r3 { 8 } else { 0 },
        extra_resources: Vec::new(),
    }
}

/// One encoded step: `(kind, a, b)`; `kind % 3` selects
/// submit / finish-one-running / invoke (same encoding as the
/// conservation proptest).
type Op = (u8, u16, u16);

/// Decodes the configuration selector into the §4 matrix cell.
fn config_of(sel: u8) -> (bool, SchedConfig, PolicyKind, GaParams) {
    let r3 = sel & 1 != 0;
    let cfg = SchedConfig {
        base: if sel & 2 != 0 { BaseScheduler::Wfp } else { BaseScheduler::Fcfs },
        backfill_algorithm: if sel & 4 != 0 {
            BackfillAlgorithm::Conservative
        } else {
            BackfillAlgorithm::Easy
        },
        ..SchedConfig::default()
    };
    let kind = if sel & 8 != 0 { PolicyKind::BbSched } else { PolicyKind::Baseline };
    let ga = GaParams { generations: 25, ..GaParams::default() };
    (r3, cfg, kind, ga)
}

fn check_snapshot_continuation(ops: &[Op], cut: usize, sel: u8) -> Result<(), TestCaseError> {
    let (r3, cfg, kind, ga) = config_of(sel);
    let sys = system(r3);
    let mut core =
        SchedCore::new(&sys, cfg.clone(), kind.build(ga), Vec::new()).expect("valid config");

    let mut now = 0.0f64;
    let mut next_id = 0u64;
    let mut running: Vec<u64> = Vec::new();

    // Applies one op to a core; `shadow` receives the same op and must
    // produce the identical decisions. `None` before the cut.
    let apply = |core: &mut SchedCore<'_>,
                 shadow: Option<&mut SchedCore<'_>>,
                 op: Op,
                 now: &mut f64,
                 next_id: &mut u64,
                 running: &mut Vec<u64>|
     -> Result<(), TestCaseError> {
        let (kind, a, b) = op;
        *now += f64::from(a % 5) * 0.5;
        match kind % 3 {
            0 => {
                let nodes = 1 + u32::from(a) % 20;
                let bb = f64::from(b % 1_100);
                let ssd = f64::from(b % 300);
                let walltime = 10.0 + f64::from(b % 300);
                let mut job = Job::new(*next_id, *now, nodes, walltime * 0.5, walltime).with_bb(bb);
                if r3 {
                    job = job.with_ssd(ssd);
                }
                let (demand, _) = clamp_demand(&sys, &job);
                core.submit(job.clone(), demand).expect("fresh id");
                if let Some(s) = shadow {
                    s.submit(job, demand).expect("fresh id in shadow");
                }
                *next_id += 1;
            }
            1 => {
                if !running.is_empty() {
                    let pos = usize::from(b) % running.len();
                    let id = running.swap_remove(pos);
                    core.job_finished(id, *now).expect("running job finishes");
                    if let Some(s) = shadow {
                        s.job_finished(id, *now).expect("running job finishes in shadow");
                    }
                }
            }
            _ => {
                let decisions: Vec<Decision> = core.invoke(*now).to_vec();
                for d in &decisions {
                    if let Decision::Start { id, .. } = *d {
                        running.push(id);
                    }
                }
                if let Some(s) = shadow {
                    let echoed: Vec<Decision> = s.invoke(*now).to_vec();
                    prop_assert_eq!(
                        &echoed,
                        &decisions,
                        "restored core diverged at t={} (sel {})",
                        *now,
                        sel
                    );
                }
            }
        }
        Ok(())
    };

    let cut = cut % (ops.len() + 1);
    for &op in &ops[..cut] {
        apply(&mut core, None, op, &mut now, &mut next_id, &mut running)?;
    }

    // Snapshot through the JSON wire encoding, restore under a freshly
    // built policy of the same kind.
    let snap = core.snapshot();
    let json = snap.to_json();
    let decoded = bbsched_sched::CoreSnapshot::from_json(&json).expect("wire round-trip");
    prop_assert_eq!(&decoded, &snap, "JSON wire encoding must be lossless");
    let mut restored =
        SchedCore::restore(decoded, kind.build(ga), Vec::new()).expect("snapshot restores");
    prop_assert_eq!(restored.snapshot().to_json(), json, "restore must be a fixed point");

    // Continue both cores in lockstep over the remaining ops.
    for &op in &ops[cut..] {
        apply(&mut core, Some(&mut restored), op, &mut now, &mut next_id, &mut running)?;
    }

    prop_assert_eq!(
        core.snapshot().to_json(),
        restored.snapshot().to_json(),
        "end-of-run state diverged (sel {})",
        sel
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Satellite: a snapshot at any boundary of any interleaving, in any
    /// cell of the R × base × backfill × policy matrix, restores to a
    /// byte-identical continuation.
    #[test]
    fn prop_snapshot_restores_to_byte_identical_continuation(
        ops in proptest::collection::vec((0u8..3, 0u16..10_000, 0u16..10_000), 1..48),
        cut in 0usize..48,
        sel in 0u8..16,
    ) {
        check_snapshot_continuation(&ops, cut, sel)?;
    }
}

/// Golden test pinning the `CoreSnapshot` JSON schema (version 1): a
/// deterministic scenario's snapshot must serialize to exactly the
/// checked-in bytes. A diff here means the wire schema changed — bump
/// [`bbsched_sched::CoreSnapshot::SCHEMA_VERSION`] and regenerate with
/// `cargo test -p bbsched-sched --test proptest_snapshot -- --ignored`.
fn golden_snapshot() -> bbsched_sched::CoreSnapshot {
    let sys = system(false);
    let cfg = SchedConfig {
        backfill_algorithm: BackfillAlgorithm::Conservative,
        ..SchedConfig::default()
    };
    let mut core =
        SchedCore::new(&sys, cfg, PolicyKind::Baseline.build(GaParams::default()), Vec::new())
            .expect("valid config");
    for (id, nodes, wall) in [(0u64, 10u32, 100.0f64), (1, 10, 80.0), (2, 4, 60.0), (3, 2, 40.0)] {
        let job = Job::new(id, id as f64, nodes, wall * 0.5, wall).with_bb(100.0 * id as f64);
        let (demand, _) = clamp_demand(&sys, &job);
        core.submit(job, demand).expect("fresh id");
    }
    core.invoke(5.0);
    core.job_finished(0, 50.0).expect("job 0 runs");
    core.invoke(50.0);
    core.snapshot()
}

fn golden_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/core_snapshot.json")
}

#[test]
fn golden_core_snapshot_schema_is_pinned() {
    let snap = golden_snapshot();
    let on_disk = std::fs::read_to_string(golden_path())
        .expect("tests/golden/core_snapshot.json exists — regenerate with `-- --ignored`");
    assert_eq!(
        snap.to_json(),
        on_disk.trim_end(),
        "CoreSnapshot wire schema changed: bump SCHEMA_VERSION and regenerate the golden file"
    );
    // And the pinned bytes still decode and restore.
    let decoded = bbsched_sched::CoreSnapshot::from_json(on_disk.trim_end()).expect("decodes");
    assert_eq!(decoded.schema_version, bbsched_sched::CoreSnapshot::SCHEMA_VERSION);
    let restored =
        SchedCore::restore(decoded, PolicyKind::Baseline.build(GaParams::default()), Vec::new())
            .expect("golden snapshot restores");
    assert_eq!(restored.snapshot().to_json(), on_disk.trim_end());
}

#[test]
#[ignore = "writes the checked-in golden snapshot; run after intentional schema changes"]
fn regenerate_golden_core_snapshot() {
    let snap = golden_snapshot();
    std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
    std::fs::write(golden_path(), format!("{}\n", snap.to_json())).unwrap();
}
