//! Property test: arbitrary interleavings of `submit` / `job_finished` /
//! `invoke` through the public [`SchedCore`] API never violate resource
//! conservation, never start a job twice, and always drain.
//!
//! This is the service-core analogue of the engine-invariants suite: no
//! driver, no event heap — just the raw API a production integration
//! would call, driven in randomized orders with randomized job shapes.
//! After every step the allocation ledger must balance against capacity
//! (`assert_conserved`), and once every submitted job is finished the
//! ledger must be empty (`assert_drained`).

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::{clamp_demand, Decision, SchedConfig, SchedCore, StartReason};
use bbsched_workloads::{Job, SystemConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn system(nodes: u32, bb_gb: f64) -> SystemConfig {
    SystemConfig {
        name: "prop".into(),
        nodes,
        bb_gb,
        bb_reserved_gb: 0.0,
        nodes_128: 0,
        nodes_256: 0,
        extra_resources: Vec::new(),
    }
}

/// One encoded step: `(kind, a, b)`; `kind % 3` selects
/// submit / finish-one-running / invoke.
type Op = (u8, u16, u16);

fn check_interleaving(ops: &[Op]) -> Result<(), TestCaseError> {
    let sys = system(16, 900.0);
    let mut core = SchedCore::new(
        &sys,
        SchedConfig::default(),
        PolicyKind::Baseline.build(GaParams::default()),
        Vec::new(),
    )
    .expect("valid config");

    let mut now = 0.0f64;
    let mut next_id = 0u64;
    let mut running: Vec<u64> = Vec::new();
    let mut ever_started: HashSet<u64> = HashSet::new();
    let mut submitted = 0usize;
    let mut finished = 0usize;

    let step = |core: &mut SchedCore<'_>,
                now: f64,
                running: &mut Vec<u64>,
                ever_started: &mut HashSet<u64>|
     -> Result<(), TestCaseError> {
        for d in core.invoke(now).to_vec() {
            if let Decision::Start { id, reason, est_end, .. } = d {
                prop_assert!(ever_started.insert(id), "job {id} started twice (reason {reason:?})");
                prop_assert!(est_end >= now, "est_end must not precede the start");
                prop_assert!(matches!(
                    reason,
                    StartReason::Policy | StartReason::Backfill | StartReason::Starvation
                ));
                running.push(id);
            }
        }
        core.ledger().assert_conserved();
        Ok(())
    };

    for &(kind, a, b) in ops {
        now += f64::from(a % 5) * 0.5;
        match kind % 3 {
            0 => {
                // Submit a job of randomized shape (possibly oversized —
                // clamped exactly as every driver clamps).
                let nodes = 1 + u32::from(a) % 20;
                let bb = f64::from(b % 1_100);
                let walltime = 10.0 + f64::from(b % 300);
                let job = Job::new(next_id, now, nodes, walltime * 0.5, walltime).with_bb(bb);
                let (demand, _) = clamp_demand(&sys, &job);
                prop_assert!(demand.nodes <= sys.nodes);
                core.submit(job, demand).expect("fresh id");
                next_id += 1;
                submitted += 1;
            }
            1 => {
                // Finish a random running job.
                if !running.is_empty() {
                    let pos = usize::from(b) % running.len();
                    let id = running.swap_remove(pos);
                    core.job_finished(id, now).expect("running job finishes cleanly");
                    finished += 1;
                    core.ledger().assert_conserved();
                }
            }
            _ => {
                step(&mut core, now, &mut running, &mut ever_started)?;
            }
        }
    }

    // Drain: alternate finishing everything running with invoking, until
    // the queue empties. Every job fits post-clamp, so this terminates.
    let mut guard = 0;
    while core.queue_len() > 0 || !running.is_empty() {
        now += 1.0;
        for id in running.drain(..) {
            core.job_finished(id, now).expect("running job finishes cleanly");
            finished += 1;
        }
        step(&mut core, now, &mut running, &mut ever_started)?;
        guard += 1;
        prop_assert!(guard < 10_000, "drain loop did not converge");
    }

    prop_assert_eq!(submitted, finished, "every submitted job must finish");
    prop_assert_eq!(ever_started.len(), submitted, "every submitted job must start");
    core.ledger().assert_conserved();
    core.assert_drained();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// Satellite: interleaved submit/finish/invoke keep the ledger
    /// conserved and drain completely through the bare service API.
    #[test]
    fn prop_core_api_interleavings_conserve_resources(
        ops in proptest::collection::vec((0u8..3, 0u16..10_000, 0u16..10_000), 1..80),
    ) {
        check_interleaving(&ops)?;
    }
}

/// JSON wire round-trip for randomized events (submit and finish), so the
/// replay driver's parser is exercised over the full float range the
/// generators produce.
#[test]
fn event_wire_roundtrip_on_awkward_floats() {
    use bbsched_sched::JobEvent;
    for (i, t) in
        [0.0, 0.1, 1.0 / 3.0, 86_399.999_999, 1e9 + 0.25, 123_456.789].into_iter().enumerate()
    {
        let job = Job::new(i as u64, t, 3, t * 0.5 + 1.0, t + 2.0).with_bb(t * 1.5);
        for event in [JobEvent::Submit(job), JobEvent::Finish { id: i as u64, time: t }] {
            let line = event.to_json_line();
            let back = JobEvent::parse(&line).expect("round-trip parses");
            assert_eq!(back, event, "lossy wire encoding for {line}");
        }
    }
}
