//! Crash-recovery integration tests for the durability layer
//! (DESIGN.md §13): a simulated daemon journals wire events and takes
//! rolling snapshots; the process is then "killed" at hostile points —
//! including every byte boundary inside the final journal record — and
//! recovery (newest valid snapshot + journal tail replay) must
//! reproduce the uninterrupted run's decision stream byte for byte.

use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sched::durability::{from_bytes, to_bytes, Encoding, Journal, SnapshotStore};
use bbsched_sched::{DecisionLog, JobEvent, ReplaySnapshot, Replayer, SchedConfig};
use bbsched_workloads::{Job, SystemConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-frame overhead of a journal record (u32 length + u64 checksum).
const FRAME_HEADER_LEN: usize = 12;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bbsched_crash_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn system() -> SystemConfig {
    SystemConfig {
        name: "crash-test".into(),
        nodes: 64,
        bb_gb: 4_000.0,
        bb_reserved_gb: 0.0,
        nodes_128: 0,
        nodes_256: 0,
        extra_resources: Vec::new(),
    }
}

fn policy() -> Box<dyn bbsched_policies::SelectionPolicy> {
    PolicyKind::Baseline.build(GaParams::default())
}

fn replayer(log: &mut DecisionLog) -> Replayer<'_> {
    Replayer::new(&system(), SchedConfig::default(), policy(), vec![log]).unwrap()
}

/// A valid wire stream interleaving submits and finishes: 24 submits at
/// t = 10 i, early finishes woven between later submits, the rest
/// finishing after the last arrival. Total capacity exceeds aggregate
/// demand, so every job is running when its finish event arrives.
fn events() -> Vec<JobEvent> {
    let mut timed: Vec<(f64, JobEvent)> = Vec::new();
    for i in 0..24u64 {
        let job = Job::new(i, i as f64 * 10.0, 1 + (i % 4) as u32, 50.0 + i as f64, 900.0);
        timed.push((job.submit, JobEvent::Submit(job)));
    }
    for i in 0..10u64 {
        let t = 85.0 + 10.0 * i as f64;
        timed.push((t, JobEvent::Finish { id: i, time: t }));
    }
    for i in 10..24u64 {
        let t = 300.0 + 7.0 * i as f64;
        timed.push((t, JobEvent::Finish { id: i, time: t }));
    }
    timed.sort_by(|a, b| a.0.total_cmp(&b.0));
    timed.into_iter().map(|(_, e)| e).collect()
}

/// Decision lines + summary of the uninterrupted run.
fn baseline(events: &[JobEvent]) -> (Vec<String>, bbsched_sched::ReplaySummary) {
    let mut log = DecisionLog::new();
    let summary = {
        let mut rp = replayer(&mut log);
        for e in events {
            rp.feed(e.clone()).unwrap();
        }
        rp.finish().unwrap()
    };
    (log.into_lines(), summary)
}

/// Decision lines an uninterrupted run has emitted after feeding the
/// first `p` events (pending batch unflushed — exactly the state a
/// snapshot at position `p` captures).
fn prefix_lines(events: &[JobEvent], p: usize) -> Vec<String> {
    let mut log = DecisionLog::new();
    {
        let mut rp = replayer(&mut log);
        for e in &events[..p] {
            rp.feed(e.clone()).unwrap();
        }
    }
    log.into_lines()
}

/// One daemon epoch: restore (or start fresh), replay the journal tail
/// beyond the snapshot, then feed + journal live events until `stop`,
/// snapshotting every `every` records. Returns the epoch's decisions.
fn daemon_epoch(
    events: &[JobEvent],
    wal: &std::path::Path,
    store: &SnapshotStore,
    every: u64,
    encoding: Encoding,
    stop: usize,
    finish: bool,
) -> (Vec<String>, Option<bbsched_sched::ReplaySummary>, usize) {
    let (mut journal, recovery) = Journal::open(wal).unwrap();
    let loaded = store.load_newest::<ReplaySnapshot>().unwrap();
    let mut log = DecisionLog::new();
    let (summary, snap_pos) = {
        let (mut rp, snap_pos) = match loaded {
            Some(l) => {
                let pos = l.position as usize;
                assert!(pos <= recovery.records.len(), "snapshot never outruns the journal");
                (Replayer::restore(l.value, policy(), vec![&mut log]).unwrap(), pos)
            }
            None => (replayer(&mut log), 0),
        };
        // Journal tail replay (not re-journaled).
        for record in &recovery.records[snap_pos..] {
            let line = std::str::from_utf8(record).unwrap();
            rp.feed(JobEvent::parse(line).unwrap()).unwrap();
        }
        // Live continuation, write-ahead journaled.
        let mut consumed = recovery.records.len();
        for e in &events[consumed..stop] {
            rp.feed(e.clone()).unwrap();
            journal.append_sync(e.to_json_line().as_bytes()).unwrap();
            consumed += 1;
            if every > 0 && (consumed as u64).is_multiple_of(every) {
                store.save(consumed as u64, &rp.snapshot(), encoding).unwrap();
            }
        }
        let summary = if finish { Some(rp.finish().unwrap()) } else { None };
        (summary, snap_pos)
    };
    (log.into_lines(), summary, snap_pos)
}

/// Truncates the journal inside its final frame at `cut_frac` of the
/// frame's bytes (1.0 = clean, nothing torn). Returns intact records.
fn tear_final_record(wal: &std::path::Path, last_payload_len: usize, cut_frac: f64) -> usize {
    let bytes = fs::read(wal).unwrap();
    let frame_len = FRAME_HEADER_LEN + last_payload_len;
    let frame_start = bytes.len() - frame_len;
    let cut = frame_start + ((frame_len as f64 * cut_frac) as usize).min(frame_len);
    fs::write(wal, &bytes[..cut]).unwrap();
    let (_, recovery) = Journal::open(wal).unwrap();
    recovery.records.len()
}

/// The tentpole guarantee, exhaustively: a daemon journaling every
/// event and snapshotting every 7 is killed with the journal cut at
/// *every byte boundary* of the final record. Recovery from the newest
/// snapshot + journal tail, then the remaining events, must emit
/// exactly the decisions the uninterrupted run emits after the
/// snapshot point — so snapshot-prefix + recovery output is the
/// uninterrupted stream, byte for byte.
#[test]
fn torn_journal_tail_recovers_byte_identical_at_every_cut() {
    let events = events();
    let (base_lines, base_summary) = baseline(&events);
    assert!(!base_lines.is_empty());

    let dir = tempdir("torn");
    let wal = dir.join("events.wal");
    let store = SnapshotStore::open(dir.join("snaps"), usize::MAX).unwrap();
    {
        let mut log = DecisionLog::new();
        let (mut journal, _) = Journal::open(&wal).unwrap();
        let mut rp = replayer(&mut log);
        store.save(0, &rp.snapshot(), Encoding::Binary).unwrap();
        for (i, e) in events.iter().enumerate() {
            rp.feed(e.clone()).unwrap();
            journal.append_sync(e.to_json_line().as_bytes()).unwrap();
            if (i + 1) % 7 == 0 {
                store.save((i + 1) as u64, &rp.snapshot(), Encoding::Binary).unwrap();
            }
        }
    }
    let full = fs::read(&wal).unwrap();
    let last_payload = events.last().unwrap().to_json_line();
    let final_frame_start = full.len() - (FRAME_HEADER_LEN + last_payload.len());

    for cut in final_frame_start..full.len() {
        let jpath = dir.join("cut.wal");
        fs::write(&jpath, &full[..cut]).unwrap();
        let (_, recovery) = Journal::open(&jpath).unwrap();
        assert_eq!(
            recovery.records.len(),
            events.len() - 1,
            "cut at byte {cut}: exactly the torn final record is dropped"
        );

        let (rec_lines, summary, snap_pos) =
            daemon_epoch(&events, &jpath, &store, 0, Encoding::Binary, events.len(), true);
        let prefix = prefix_lines(&events, snap_pos);
        assert_eq!(prefix.len() + rec_lines.len(), base_lines.len(), "cut at byte {cut}");
        assert_eq!(&base_lines[..prefix.len()], &prefix[..], "cut at byte {cut}");
        assert_eq!(&base_lines[prefix.len()..], &rec_lines[..], "cut at byte {cut}");
        assert_eq!(summary.unwrap(), base_summary, "cut at byte {cut}");
    }
}

/// Two full kill/recover cycles against one journal directory: crash
/// mid-record, recover, continue journaling, crash again, recover,
/// drain. The final recovery must still land exactly on the
/// uninterrupted run's suffix.
#[test]
fn repeated_crash_cycles_recover_byte_identical() {
    let events = events();
    let (base_lines, base_summary) = baseline(&events);

    let dir = tempdir("cycles");
    let wal = dir.join("events.wal");
    let store = SnapshotStore::open(dir.join("snaps"), 3).unwrap();

    // Epoch 1: fresh start, crash after journaling 17 records (the 17th
    // torn mid-frame).
    daemon_epoch(&events, &wal, &store, 5, Encoding::Binary, 17, false);
    let intact = tear_final_record(&wal, events[16].to_json_line().len(), 0.5);
    assert_eq!(intact, 16);

    // Epoch 2: recover, continue to 33 records, crash again (33rd torn
    // at a different offset).
    daemon_epoch(&events, &wal, &store, 5, Encoding::Json, 33, false);
    let intact = tear_final_record(&wal, events[32].to_json_line().len(), 0.2);
    assert_eq!(intact, 32);

    // Epoch 3: recover and drain to the end.
    let (rec_lines, summary, snap_pos) =
        daemon_epoch(&events, &wal, &store, 5, Encoding::Binary, events.len(), true);
    let prefix = prefix_lines(&events, snap_pos);
    assert_eq!(prefix.len() + rec_lines.len(), base_lines.len());
    assert_eq!(&base_lines[..prefix.len()], &prefix[..]);
    assert_eq!(&base_lines[prefix.len()..], &rec_lines[..]);
    assert_eq!(summary.unwrap(), base_summary);
}

/// Golden binary ↔ JSON equivalence on a warmed snapshot: both
/// encodings decode to the identical snapshot, the JSON container *is*
/// the golden serde_json wire form, the encodings self-identify via
/// magic bytes, and the binary form achieves the promised ≥2× size
/// reduction.
#[test]
fn binary_and_json_snapshot_encodings_are_equivalent() {
    let events = events();
    let mut log = DecisionLog::new();
    let snap = {
        let mut rp = replayer(&mut log);
        for e in &events[..30] {
            rp.feed(e.clone()).unwrap();
        }
        rp.snapshot()
    };
    assert_eq!(snap.events_fed, 30);

    let json = to_bytes(&snap, Encoding::Json);
    let binary = to_bytes(&snap, Encoding::Binary);
    assert_eq!(json, serde_json::to_vec(&snap).unwrap(), "JSON container is the wire form");

    let (from_json, ej) = from_bytes::<ReplaySnapshot>(&json).unwrap();
    let (from_binary, eb) = from_bytes::<ReplaySnapshot>(&binary).unwrap();
    assert_eq!(ej, Encoding::Json);
    assert_eq!(eb, Encoding::Binary);
    assert_eq!(from_json, snap);
    assert_eq!(from_binary, snap);
    assert_eq!(from_json, from_binary);

    assert!(
        binary.len() * 2 <= json.len(),
        "binary snapshot ({} B) must be at most half the JSON form ({} B)",
        binary.len(),
        json.len()
    );

    // Either encoding restores to a byte-identical continuation.
    let tail_from = |snap: ReplaySnapshot| {
        let mut log = DecisionLog::new();
        {
            let mut rp = Replayer::restore(snap, policy(), vec![&mut log]).unwrap();
            for e in &events[30..] {
                rp.feed(e.clone()).unwrap();
            }
            rp.finish().unwrap();
        }
        log.into_lines()
    };
    assert_eq!(tail_from(from_json), tail_from(from_binary));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized interleavings of submit/finish/invoke with snapshot
    /// cadence and crash position: kill after `crash_at` journaled
    /// records with the final record cut at a random byte fraction, in
    /// either snapshot encoding; recovery must be byte-identical.
    #[test]
    fn random_crash_points_recover_byte_identical(
        every in 1u64..9,
        crash_at in 1usize..48,
        cut_frac in 0.0f64..1.0,
        enc_sel in 0u8..2,
    ) {
        let events = events();
        prop_assert!(crash_at <= events.len());
        let encoding = if enc_sel == 1 { Encoding::Binary } else { Encoding::Json };
        let (base_lines, base_summary) = baseline(&events);

        let dir = tempdir("prop");
        let wal = dir.join("events.wal");
        let store = SnapshotStore::open(dir.join("snaps"), 4).unwrap();
        // Initial position-0 checkpoint, as the daemon writes.
        {
            let mut log = DecisionLog::new();
            let rp = replayer(&mut log);
            store.save(0, &rp.snapshot(), encoding).unwrap();
        }
        daemon_epoch(&events, &wal, &store, every, encoding, crash_at, false);
        let intact = tear_final_record(&wal, events[crash_at - 1].to_json_line().len(), cut_frac);
        prop_assert!(intact == crash_at || intact == crash_at - 1);
        // The daemon snapshots only after append_sync returns, so a crash
        // that tears the final record predates any snapshot at that
        // position; drop such snapshots to keep the simulation honest.
        for pos in store.positions().unwrap() {
            if pos > intact as u64 {
                fs::remove_file(store.path_for(pos)).unwrap();
            }
        }

        let (rec_lines, summary, snap_pos) =
            daemon_epoch(&events, &wal, &store, every, encoding, events.len(), true);
        let prefix = prefix_lines(&events, snap_pos);
        prop_assert_eq!(prefix.len() + rec_lines.len(), base_lines.len());
        prop_assert_eq!(&base_lines[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&base_lines[prefix.len()..], &rec_lines[..]);
        prop_assert_eq!(summary.unwrap(), base_summary);
        fs::remove_dir_all(&dir).ok();
    }
}
