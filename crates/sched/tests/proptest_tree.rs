//! Property test: every query index inside [`AvailabilityProfile`] is
//! bit-identical to the linear evaluators it accelerates.
//!
//! The profile dispatches queries to one of three evaluators — the
//! column scan (pooled-resource machines), the hierarchical segment tree
//! (flavoured machines at 192+ segments), or the linear skyline walk
//! (everything else) — and the dispatch must be pure acceleration:
//! indistinguishable from the linear walk, which in turn must match the
//! frozen scan-everything [`LegacyProfile`]. This harness seeds large
//! machines with enough staggered releases to push profiles past the
//! tree threshold, then drives random start / finish / reserve
//! interleavings over R ∈ {2, 3, 4} systems (heterogeneous SSD flavours
//! included), asserting at every pass:
//!
//! 1. `earliest_start` / `fits_interval` / `state_at` from the
//!    dispatched path `==` the `*_linear` oracles `==` `LegacyProfile`,
//!    both on a freshly folded profile and after reservations have
//!    split segments and invalidated the skyline watermark;
//! 2. post-`reserve` boundaries and states are bit-identical between
//!    the indexed profile and `LegacyProfile`;
//! 3. `advance_origin` (the replay fast path's origin drop) agrees with
//!    a from-scratch clamp-fold at the advanced instant.
//!
//! Debug builds double the coverage for free: the dispatched queries
//! internally cross-check the scan and tree answers against the linear
//! walk via `debug_assert!` oracles on every call made here.

use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, SSD_LARGE_GB, SSD_SMALL_GB};
use bbsched_core::resource::{DemandSlot, FlavorSet, ResourceModel, ResourceSpec};
use bbsched_sched::{AllocLedger, AvailabilityProfile, LegacyProfile, ReleaseMirror};
use proptest::prelude::*;

/// One encoded operation: `(kind, a, b, c)` with `kind % 3` selecting
/// finish / query-pass / reserve-pass and the rest seeding demands.
type Op = (u8, u16, u16, u16);

/// Mirror of the profile's private tree threshold: the seed phase must
/// push flavoured profiles past it so the tree actually serves queries.
const TREE_MIN_SEGMENTS: usize = 192;

/// A system under test: its full pool, a demand generator mapping raw op
/// words onto (sometimes infeasible) probe demands, and how many
/// staggered seed jobs to start before the random interleaving begins.
struct SystemUnderTest {
    pool: PoolState,
    demand: fn(u16, u16, u16) -> JobDemand,
    seed_jobs: usize,
    /// Seed-phase per-node SSD demand (flavoured systems only).
    seed_ssd: fn(usize) -> f64,
}

fn systems() -> Vec<SystemUnderTest> {
    // R = 2, pooled only: big enough for 230 concurrent single-node
    // jobs, so the column scan works 192-plus-segment profiles.
    let pooled = SystemUnderTest {
        pool: PoolState::cpu_bb(512, 50_000.0),
        demand: |a, b, _| JobDemand::cpu_bb(1 + u32::from(a) % 600, f64::from(b % 800) * 70.0),
        seed_jobs: 230,
        seed_ssd: |_| 0.0,
    };
    // R = 3, heterogeneous two-tier local SSDs: 256 flavoured nodes, so
    // the hierarchical tree engages once the seed jobs are running.
    let ssd = SystemUnderTest {
        pool: PoolState::with_ssd(128, 128, 30_000.0),
        demand: |a, b, c| {
            let ssd = match c % 4 {
                0 => 0.0,
                1 => 64.0,
                2 => 150.0,
                _ => 240.0,
            };
            JobDemand::cpu_bb_ssd(1 + u32::from(a) % 300, f64::from(b % 700) * 45.0, ssd)
        },
        seed_jobs: 225,
        seed_ssd: |i| match i % 8 {
            0..=3 => 0.0,
            4 | 5 => 64.0,
            6 => 150.0,
            _ => 240.0,
        },
    };
    // R = 4: flavoured SSDs plus an extra pooled resource (GPUs).
    let model = ResourceModel::new(vec![
        ResourceSpec::pooled("nodes", 256.0, DemandSlot::Nodes),
        ResourceSpec::pooled("bb_gb", 25_000.0, DemandSlot::BbGb),
        ResourceSpec::per_node(
            "ssd",
            FlavorSet::two_tier(SSD_SMALL_GB, 128, SSD_LARGE_GB, 128),
            DemandSlot::SsdPerNode,
        ),
        ResourceSpec::pooled("gpus", 512.0, DemandSlot::Extra(0)),
    ])
    .expect("4-resource test model is valid");
    let four = SystemUnderTest {
        pool: PoolState::from_model(&model),
        demand: |a, b, c| {
            let ssd = if c % 3 == 0 { 0.0 } else { f64::from(c % 200) };
            JobDemand::cpu_bb_ssd(1 + u32::from(a) % 280, f64::from(b % 600) * 35.0, ssd)
                .with_extra(0, f64::from(c % 520))
        },
        seed_jobs: 225,
        seed_ssd: |i| if i % 3 == 0 { 64.0 } else { 0.0 },
    };
    vec![pooled, ssd, four]
}

/// Asserts the three evaluators agree on one query shape.
fn check_queries(
    profile: &AvailabilityProfile,
    legacy: &LegacyProfile,
    d: &JobDemand,
    now: f64,
    dur: f64,
) -> Result<(), TestCaseError> {
    let t = profile.earliest_start(d, now, dur);
    prop_assert_eq!(t, profile.earliest_start_linear(d, now, dur), "dispatch vs linear walk");
    prop_assert_eq!(t, legacy.earliest_start(d, now, dur), "dispatch vs LegacyProfile");
    for off in [0.0, 0.25, 4.0, 33.0] {
        let fits = profile.fits_interval(d, now + off, dur);
        prop_assert_eq!(fits, profile.fits_interval_linear(d, now + off, dur));
        prop_assert_eq!(fits, legacy.fits_interval(d, now + off, dur));
        prop_assert_eq!(profile.state_at(now + off), legacy.state_at(now + off));
    }
    Ok(())
}

/// Drives one interleaving on one system, checking evaluator agreement
/// at every pass.
fn check_interleaving(sut: &SystemUnderTest, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ledger = AllocLedger::new(sut.pool);
    let mut mirror = ReleaseMirror::new();
    let mut profile = AvailabilityProfile::default();
    let mut now = 0.0f64;
    let mut running: Vec<usize> = Vec::new();

    // Seed: staggered single-node jobs with distinct release times, so
    // the profile opens with one segment per seed job and the tree (on
    // flavoured machines) is the evaluator actually under test.
    for i in 0..sut.seed_jobs {
        let d = JobDemand::cpu_bb_ssd(1, f64::from(i as u16 % 50) * 4.0, (sut.seed_ssd)(i));
        if ledger.fits(&d) {
            ledger.start(i, d, 400.0 + i as f64 * 7.0);
            running.push(i);
        }
    }
    mirror.sync(&ledger);
    mirror.fold_into(now, *ledger.pool(), &mut profile);
    prop_assert!(
        profile.times().len() >= TREE_MIN_SEGMENTS,
        "seed phase must cross the tree threshold, got {} segments",
        profile.times().len()
    );
    let mut next_idx = sut.seed_jobs;

    for &(kind, a, b, c) in ops {
        now += f64::from(a % 9) * 0.75;
        match kind % 3 {
            0 => {
                // Finish a random running job, then start a probe-shaped
                // one when it fits (like the engine: no forced starts).
                if !running.is_empty() {
                    let pos = usize::from(a) % running.len();
                    ledger.finish(running.swap_remove(pos));
                }
                let d = (sut.demand)(a % 97, b, c);
                if ledger.fits(&d) {
                    ledger.start(next_idx, d, now + 1.0 + f64::from(b % 800));
                    running.push(next_idx);
                    next_idx += 1;
                }
            }
            1 => {
                // Query pass on a freshly folded profile: the fold must
                // equal a from-scratch build, and every evaluator must
                // agree — including after an `advance_origin`, the
                // replay fast path's in-place origin drop.
                mirror.sync(&ledger);
                mirror.fold_into(now, *ledger.pool(), &mut profile);
                let fresh =
                    AvailabilityProfile::new(now, *ledger.pool(), ledger.release_schedule());
                prop_assert_eq!(&profile, &fresh, "incremental fold diverged at t={}", now);
                let legacy = LegacyProfile::new(now, *ledger.pool(), ledger.release_schedule());
                let probe = (sut.demand)(b, c, a);
                check_queries(&profile, &legacy, &probe, now, 1.0 + f64::from(c % 300))?;

                let adv = now + f64::from(c % 40) * 0.3;
                let mut advanced = profile.clone();
                if advanced.advance_origin(adv) {
                    let at_adv =
                        AvailabilityProfile::new(adv, *ledger.pool(), ledger.release_schedule());
                    prop_assert_eq!(
                        &advanced,
                        &at_adv,
                        "advance_origin diverged from a fresh clamp-fold at t={}",
                        adv
                    );
                    let legacy_adv =
                        LegacyProfile::new(adv, *ledger.pool(), ledger.release_schedule());
                    check_queries(&advanced, &legacy_adv, &probe, adv, 1.0 + f64::from(b % 120))?;
                }
            }
            _ => {
                // Reserve pass: carve reservations identically into the
                // indexed profile and the legacy oracle (exactly how the
                // conservative strategy uses them), then re-query with
                // split segments and a partially invalidated skyline.
                mirror.sync(&ledger);
                mirror.fold_into(now, *ledger.pool(), &mut profile);
                let mut legacy = LegacyProfile::new(now, *ledger.pool(), ledger.release_schedule());
                for salt in 0..3u16 {
                    let rd = (sut.demand)(a ^ salt, c, b ^ salt);
                    let rdur = 1.0 + f64::from((b ^ salt) % 400);
                    let t = profile.earliest_start(&rd, now, rdur);
                    prop_assert_eq!(t, legacy.earliest_start(&rd, now, rdur));
                    if t.is_finite() {
                        profile.reserve(&rd, t, rdur);
                        legacy.reserve(&rd, t, rdur);
                    }
                }
                prop_assert_eq!(profile.times(), legacy.times(), "post-reserve boundaries");
                prop_assert_eq!(profile.states(), legacy.states(), "post-reserve states");
                check_queries(&profile, &legacy, &(sut.demand)(c, a, b), now, 2.0)?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Satellite: tree / column-scan / linear-skyline dispatch is
    /// bit-identical to the linear oracles and to `LegacyProfile` under
    /// random start/finish/reserve interleavings on R ∈ {2, 3, 4}
    /// systems with 192-plus-segment profiles.
    #[test]
    fn tree_profile_matches_skyline(
        ops in proptest::collection::vec(
            (0u8..3, 0u16..10_000, 0u16..10_000, 0u16..10_000), 1..40),
    ) {
        for sut in systems() {
            check_interleaving(&sut, &ops)?;
        }
    }
}
