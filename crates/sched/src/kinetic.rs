//! Kinetic priority index for the WFP queue: crossing-driven incremental
//! re-ordering (DESIGN.md §10.2).
//!
//! WFP scores drift continuously — `(wait/walltime)³ × nodes` grows with
//! every second of waiting — so the monolithic approach re-scores and
//! re-sorts the whole queue at every scheduling invocation. But the
//! *relative* order of two queued jobs changes only when their score
//! curves cross, and between invocations almost no pairs cross. This
//! module maintains the sorted order *kinetically*: alongside the sorted
//! queue it keeps, for every adjacent pair, a **certificate** — a sound
//! lower bound on the earliest future instant at which the pair's
//! comparator outcome could change — in a min-heap. An invocation at
//! `now` pops only the certificates that have expired, re-checks those
//! pairs with the exact comparator, bubbles any that actually inverted,
//! and re-certifies: amortised `O((k + 1)·log Q)` for `k` expiries
//! instead of `O(Q log Q)` re-sorting plus `O(Q)` re-scoring.
//!
//! When `k` approaches `Q` the incremental path is strictly worse than
//! sorting, so a **storm guard** bails the drain out to the full rebuild
//! past a settle budget, and sustained storms degrade gracefully to the
//! monolithic sort's cost: sort-only rebuilds that skip certification
//! entirely, with a certified rebuild every eighth invocation probing
//! for the storm's end (see [`KineticIndex::order`]).
//!
//! # Exactness
//!
//! The produced permutation is **byte-identical** to the cached-score
//! stable sort it replaces. Two facts carry the proof:
//!
//! * Swaps are decided solely by the *exact* comparator — descending
//!   f64 score ([`BaseScheduler::score`], bit-for-bit the evaluation the
//!   full sort uses), then ascending `(submit, id)`. Certificates only
//!   decide *when pairs get re-checked*, never what order results. Since
//!   `id` is unique the comparator is a strict total order, so "no
//!   adjacent pair inverted" pins the unique sorted permutation —
//!   stability never has to arbitrate, and bubbling adjacent inversions
//!   converges to exactly the order any correct sort would produce.
//! * Certificates are sound **lower bounds** (see below), so a pair that
//!   is *not* re-checked at `now` provably compares the same as when it
//!   was certified. No inversion can hide behind an unexpired
//!   certificate.
//!
//! Debug builds additionally assert the result against a full
//! re-sort oracle on **every** invocation (see
//! [`QueueManager::order`](crate::queue::QueueManager::order)).
//!
//! # Certificate soundness under floating point
//!
//! Work in cube-root space: with `c = ∛nodes / max(walltime, 1)` the
//! (real-valued) transformed score of a queued job is the line
//! `f(t) = c · (t − submit)`, and `score_A > score_B ⟺ f_A > f_B` over
//! reals. The evaluated f64 score applies 5 rounding steps (subtract,
//! divide, two `powi(3)` multiplies, one nodes multiply), each with
//! relative error ≤ 2⁻⁵³ **of its result** (no absolute/cancellation
//! term: `submit` and `now` are exact f64 inputs), so the evaluated
//! score is `s·(1+δ)` with `|δ| ≤ 5·2⁻⁵³`. We budget `ε = 2⁻⁴⁶`, a
//! 128× cushion that also swallows the rounding of the certificate
//! computation itself. An evaluated comparison (or an evaluated *tie*,
//! which would hand the decision to the `(submit, id)` tie-break) can
//! therefore disagree with the real one only inside the band
//! `|s_A − s_B| ≤ ε·(s_A + s_B)`. In cube-root space, with
//! `g = f_A − f_B ≥ 0` and `F = max(f_A, f_B)`:
//! `s_A − s_B = g·(f_A² + f_A f_B + f_B²) ≥ g·F²` while
//! `s_A + s_B ≤ 2F³`, so the band requires `g ≤ 2ε·F`. A pair is
//! certified safe while `g(t) > 2ε·F(t)`; bounding
//! `F(t) ≤ (c_A + c_B)·(t − min(submit))` and solving the linear
//! inequality gives the expiry, shaved by a relative `10⁻⁹` (≫ the
//! ~10⁻¹⁵ rounding of the solve) to stay strictly below the real
//! boundary. Pairs whose gap already sits inside the margin, or where a
//! job's submit lies in the future (degenerate in live use), get a
//! certificate of `next_up(now)`: checked again at the very next
//! distinct instant. Jobs with bit-equal `(nodes, walltime, submit)`
//! have bit-equal scores at every `now`, so the unique-`id` tie-break
//! fixes their order permanently: certificate `+∞`, never enqueued.
//!
//! # Transience
//!
//! The index is **never serialized**. [`QueueState`] stays the `(base,
//! queue)` pair of schema v1; restore (and any structural surgery the
//! incremental paths don't model) just marks the index dirty, and the
//! next [`KineticIndex::order`] rebuilds it from scratch with the same
//! full sort the monolithic path used — byte-identical by construction.
//!
//! [`BaseScheduler::score`]: crate::base_sched::BaseScheduler::score
//! [`QueueState`]: crate::queue::QueueState

use crate::base_sched::BaseScheduler;
use crate::jobset::JobSet;
use bbsched_workloads::Job;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Position sentinel: job not in the kinetically sorted prefix.
const ABSENT: u32 = u32::MAX;

/// Relative-error budget for one evaluated WFP score: 5 rounding steps
/// at ≤ 2⁻⁵³ each, budgeted at `2⁻⁴⁶` (128× cushion; see module docs).
const SCORE_EPS: f64 = 1.0 / (1u64 << 46) as f64;

/// Relative shave applied to a solved certificate expiry so rounding in
/// the solve itself (≈ 10⁻¹⁵ relative) can never push the certificate
/// past the real safety boundary.
const CERT_SHAVE: f64 = 1.0 - 1e-9;

/// A certificate heap entry: pair `(l, r)` of **job indices** (not
/// positions) certified until `t`. Entries are lazily invalidated: one
/// is live iff `l` and `r` are still adjacent (`pos[r] == pos[l] + 1`)
/// *and* `t` still bit-matches `cert[l]`. Re-pairing or re-certifying
/// overwrites `cert[l]`, orphaning any queued entries for the old pair;
/// a coincidental bit-match merely triggers a harmless idempotent
/// re-check.
#[derive(Clone, Copy, Debug)]
struct CertEntry {
    t: f64,
    l: u32,
    r: u32,
}

impl PartialEq for CertEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CertEntry {}
impl PartialOrd for CertEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CertEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.l.cmp(&other.l))
            .then_with(|| self.r.cmp(&other.r))
    }
}

/// Kinetic sorted-order index over the WFP waiting queue.
///
/// Owned by [`QueueManager`](crate::queue::QueueManager); every vector
/// indexed by job index is sized on demand. All of this is derived,
/// transient state — see the module docs.
#[derive(Clone, Debug)]
pub struct KineticIndex {
    /// Job index → position in the sorted prefix; [`ABSENT`] otherwise.
    pos: Vec<u32>,
    /// Job index → certificate expiry for the pair it *leads* (it and
    /// its right neighbour). `+∞` = permanent (or no pair).
    cert: Vec<f64>,
    /// Job index → `∛nodes / max(walltime, 1)` (cube-root-space slope),
    /// computed once per job.
    coeff: Vec<f64>,
    /// Min-heap of certificate expiries (via `Reverse`).
    heap: BinaryHeap<std::cmp::Reverse<CertEntry>>,
    /// Length of the kinetically sorted queue prefix; entries beyond it
    /// are arrivals pushed since the last [`KineticIndex::order`].
    sorted_len: usize,
    /// Minimum queue position whose occupant changed since the last
    /// order sealed, `usize::MAX` if none (see
    /// [`KineticIndex::stable_prefix`]).
    touched: usize,
    /// Sealed value of `touched` as of the last order.
    stable: usize,
    /// Structural state unknown (fresh/restored): next order rebuilds.
    dirty: bool,
    /// Crossing-storm streak. `0`: kinetic steady state. `1`: the drain
    /// guard just fired once (the rebuild stays certified — the storm
    /// may be a one-off catch-up batch). `≥2`: sustained storm — the
    /// rebuild skips certification entirely (sort-only, `dirty` stays
    /// set, cost ≈ the monolithic sort), probing with a certified
    /// rebuild every eighth rebuild to detect the storm ending. A drain
    /// that completes without tripping the guard resets the streak.
    storm: u32,
}

impl Default for KineticIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl KineticIndex {
    /// A fresh (dirty) index; the first [`KineticIndex::order`] builds it.
    pub fn new() -> Self {
        Self {
            pos: Vec::new(),
            cert: Vec::new(),
            coeff: Vec::new(),
            heap: BinaryHeap::new(),
            sorted_len: 0,
            touched: usize::MAX,
            stable: 0,
            dirty: true,
            storm: 0,
        }
    }

    /// Forgets all derived state; the next order rebuilds from the queue
    /// (used by restore, where only the wire-format queue survives).
    pub fn invalidate(&mut self) {
        self.heap.clear();
        self.sorted_len = 0;
        self.touched = usize::MAX;
        self.stable = 0;
        self.dirty = true;
        self.storm = 0;
    }

    /// Number of leading queue positions guaranteed to hold the same job
    /// as when the *previous* order call sealed — i.e. the prefix of the
    /// priority order that provably did not change across this
    /// invocation. Swaps, mid-queue inserts and removals lower it; pure
    /// tail appends do not. A rebuild (restore, first order) seals `0`.
    pub fn stable_prefix(&self) -> usize {
        self.stable
    }

    /// Records that `p` (and implicitly everything after it, which the
    /// caller shifted) no longer matches the last sealed order.
    pub fn touch(&mut self, p: usize) {
        self.touched = self.touched.min(p);
    }

    /// Removes every started job from `queue` (order-preserving compact,
    /// exactly `Vec::retain`'s result), repairing positions and marking
    /// the severed adjacencies for immediate re-certification.
    pub fn remove_started(&mut self, queue: &mut Vec<usize>, started: &JobSet) {
        let mut w = 0usize;
        let mut first_removed = usize::MAX;
        let mut removed_in_prefix = 0usize;
        for r in 0..queue.len() {
            let j = queue[r];
            if started.contains(j) {
                if first_removed == usize::MAX {
                    first_removed = r;
                }
                if r < self.sorted_len {
                    removed_in_prefix += 1;
                    self.pos[j] = ABSENT;
                    self.cert[j] = f64::INFINITY;
                    // The kept job to the left now faces a new right
                    // neighbour (or none): force a re-check at the next
                    // order. The heap entry for the *old* pair dies on
                    // the adjacency test; `-∞` expires instantly.
                    if w > 0 && w - 1 < self.sorted_len {
                        let l = queue[w - 1];
                        self.cert[l] = f64::NEG_INFINITY;
                        self.heap.push(std::cmp::Reverse(CertEntry {
                            t: f64::NEG_INFINITY,
                            l: l as u32,
                            r: l as u32, // re-resolved at expiry; see order()
                        }));
                    }
                }
            } else {
                if w != r {
                    queue[w] = j;
                    if r < self.sorted_len {
                        self.pos[j] = w as u32;
                    }
                }
                w += 1;
            }
        }
        let removed = queue.len() - w;
        queue.truncate(w);
        if removed > 0 {
            // Positions shifted within the old prefix stay members of the
            // sorted region; the prefix merely shrank.
            self.sorted_len -= removed_in_prefix;
            self.touch(first_removed);
        }
    }

    /// Establishes the exact WFP priority order of `queue` at `now` and
    /// seals the stable prefix. See the module docs for the algorithm
    /// and the exactness argument.
    pub fn order(&mut self, base: BaseScheduler, queue: &mut Vec<usize>, jobs: &[Job], now: f64) {
        self.ensure(jobs.len());
        debug_assert_eq!(base, BaseScheduler::Wfp);
        let pending = queue.len() - self.sorted_len;
        // Rebuild outright when the incremental path cannot win: unknown
        // structure, or more pending arrivals than sorted context. The
        // comparator is a strict total order, so sort and incremental
        // maintenance produce the same (unique) permutation.
        if self.dirty || pending > self.sorted_len {
            if self.storm > 0 {
                // Sort-only rebuilds leave `dirty` set; count them so the
                // periodic certified probe comes around.
                self.storm += 1;
            }
            self.rebuild(base, queue, jobs, now);
            self.seal(queue.len());
            return;
        }
        // 1. Drain expired certificates; re-check and bubble. A crossing
        // storm (a large batch of certificates expiring in one step, e.g.
        // right after a submit burst while every wait is still small) makes
        // the incremental path strictly worse than one rebuild: each
        // expired pair pays heap churn plus re-certification, while a
        // rebuild pays one sort plus exactly Q certifications. Bail out to
        // the rebuild once the drained count passes a fraction of Q —
        // the permutation is identical either way (unique total order),
        // so this is purely a cost regime switch. While a storm streak is
        // live the threshold drops to a cheap probe: the drain only needs
        // to prove the storm is over, not ride it out.
        let storm_bail = if self.storm > 0 { 64 } else { queue.len() / 8 + 16 };
        let mut drained = 0usize;
        while let Some(&std::cmp::Reverse(top)) = self.heap.peek() {
            if top.t > now {
                break;
            }
            self.heap.pop();
            let l = top.l as usize;
            if self.cert[l].to_bits() != top.t.to_bits() {
                continue; // re-certified since; entry is stale
            }
            let p = self.pos[l];
            if p == ABSENT {
                continue; // left job started/removed; pair is gone
            }
            let p = p as usize;
            if p + 1 >= self.sorted_len {
                // No right neighbour any more: nothing to maintain.
                self.cert[l] = f64::INFINITY;
                continue;
            }
            if top.r != top.l && self.pos[top.r as usize] != self.pos[top.l as usize] + 1 {
                continue; // pair split apart; entry is stale
            }
            drained += 1;
            if drained > storm_bail {
                self.storm += 1;
                self.rebuild(base, queue, jobs, now);
                self.seal(queue.len());
                return;
            }
            self.settle(base, queue, jobs, now, p);
        }
        // The drain completed under the bail threshold: any storm is over.
        self.storm = 0;
        // 2. Binary-insert arrivals pushed since the last invocation.
        // At the insertion instant an arrival's wait is zero, so under
        // live event-driven use it lands at the tail (score 0, newest
        // submit) and the memmove is empty; batched catch-up invocations
        // pay the general mid-queue insert.
        if pending > 0 {
            let mut incoming: Vec<usize> = queue.split_off(self.sorted_len);
            for j in incoming.drain(..) {
                self.insert_sorted(base, queue, jobs, now, j);
            }
        }
        self.seal(queue.len());
        // Housekeeping: lazily-invalidated entries accumulate; rebuild
        // the heap from live pairs when stale entries dominate.
        if self.heap.len() > 4 * queue.len() + 64 {
            self.reheap(queue);
        }
    }

    /// O(1) probe: would [`KineticIndex::order`] at `now` be a no-op
    /// (no pending arrivals, no expired or structurally stale
    /// certificates)? Used to skip even the drain loop's setup on the
    /// overwhelmingly common quiescent invocation.
    pub fn is_quiescent(&self, queue_len: usize, now: f64) -> bool {
        if self.dirty || self.sorted_len != queue_len {
            return false;
        }
        match self.heap.peek() {
            Some(&std::cmp::Reverse(top)) => top.t > now,
            None => true,
        }
    }

    /// Seals the stable prefix for this invocation and re-arms tracking.
    fn seal(&mut self, len: usize) {
        self.stable = self.touched.min(len);
        self.touched = usize::MAX;
    }

    /// Seal for a statically-ordered discipline (FCFS): the queue is
    /// already exact, only the touch ledger (mid-queue inserts,
    /// removals) feeds the stable prefix. No certificates are kept. The
    /// first seal of a fresh index seals `0`: across a restore the
    /// pre-snapshot touch ledger is gone, so nothing is certifiable.
    pub fn seal_static(&mut self, len: usize) {
        if self.dirty {
            self.touched = 0;
            self.dirty = false;
        }
        self.seal(len);
    }

    /// Re-checks pair `(p, p+1)` with the exact comparator at `now`,
    /// swapping and cascading to the disturbed neighbours if inverted,
    /// and re-certifies every pair it touches.
    fn settle(
        &mut self,
        base: BaseScheduler,
        queue: &mut [usize],
        jobs: &[Job],
        now: f64,
        p: usize,
    ) {
        let mut work = [0usize; 64];
        let mut work_len = 0usize;
        let mut overflow: Vec<usize> = Vec::new();
        let push = |work: &mut [usize; 64], work_len: &mut usize, ov: &mut Vec<usize>, p: usize| {
            if *work_len < work.len() {
                work[*work_len] = p;
                *work_len += 1;
            } else {
                ov.push(p);
            }
        };
        push(&mut work, &mut work_len, &mut overflow, p);
        while work_len > 0 || !overflow.is_empty() {
            let p = if work_len > 0 {
                work_len -= 1;
                work[work_len]
            } else {
                overflow.pop().unwrap()
            };
            if p + 1 >= self.sorted_len {
                continue;
            }
            let (a, b) = (queue[p], queue[p + 1]);
            if Self::exact_cmp(base, jobs, a, b, now) == Ordering::Greater {
                queue.swap(p, p + 1);
                self.pos[a] = (p + 1) as u32;
                self.pos[b] = p as u32;
                self.touch(p);
                // The swap disturbs the pairs on either side; each swap
                // strictly reduces the inversion count at `now`, so this
                // local cascade terminates in the sorted order.
                if p > 0 {
                    push(&mut work, &mut work_len, &mut overflow, p - 1);
                }
                push(&mut work, &mut work_len, &mut overflow, p + 1);
                self.certify(queue, jobs, now, p);
            } else {
                self.certify(queue, jobs, now, p);
            }
        }
    }

    /// Inserts arrival `j` at its exact comparator position within the
    /// sorted prefix (binary search; `O(log Q)` score evaluations).
    fn insert_sorted(
        &mut self,
        base: BaseScheduler,
        queue: &mut Vec<usize>,
        jobs: &[Job],
        now: f64,
        j: usize,
    ) {
        let p = queue[..self.sorted_len]
            .partition_point(|&q| Self::exact_cmp(base, jobs, q, j, now) == Ordering::Less);
        queue.insert(p, j);
        for (off, &q) in queue[p..].iter().enumerate() {
            self.pos[q] = (p + off) as u32;
        }
        self.sorted_len += 1;
        if p < self.sorted_len - 1 {
            self.touch(p);
        }
        // New adjacencies: `j` leads `(j, old queue[p])`, and the old
        // left neighbour now leads `(queue[p-1], j)`.
        self.certify(queue, jobs, now, p);
        if p > 0 {
            self.certify(queue, jobs, now, p - 1);
        }
    }

    /// Full rebuild: the cached-score stable sort of the monolithic
    /// path (identical permutation — unique total order), then fresh
    /// positions and certificates for every adjacent pair.
    fn rebuild(&mut self, base: BaseScheduler, queue: &mut [usize], jobs: &[Job], now: f64) {
        let mut scored: Vec<(f64, f64, u64, usize)> = queue
            .iter()
            .map(|&i| {
                let j = &jobs[i];
                (base.score(j, now), j.submit, j.id, i)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
                .then_with(|| a.2.cmp(&b.2))
        });
        for (p, e) in scored.iter().enumerate() {
            queue[p] = e.3;
            self.pos[e.3] = p as u32;
        }
        self.sorted_len = queue.len();
        // Storm hysteresis: in a sustained storm (streak ≥ 2) the
        // certificates built here would all expire by the next invocation
        // anyway, so skip certification and leave `dirty` set — the next
        // order re-sorts, at the monolithic path's cost. Every eighth
        // rebuild stays certified as a probe; the drain after it either
        // completes (storm over, streak resets) or trips the lowered bail
        // threshold immediately.
        if self.storm >= 2 && !self.storm.is_multiple_of(8) {
            self.heap.clear();
            self.dirty = true;
            self.touched = 0;
            return;
        }
        if self.storm > 1 {
            self.storm = 1; // probe issued; keep the streak live but bounded
        }
        // Batch the fresh certificates through `BinaryHeap::from` — O(Q)
        // heapify instead of Q individual O(log Q) pushes. This is the
        // hot cost of a crossing-storm rebuild (the sort itself is shared
        // with the monolithic path).
        let mut entries: Vec<std::cmp::Reverse<CertEntry>> = Vec::with_capacity(queue.len());
        for p in 0..queue.len() {
            let t = self.cert_time(queue, jobs, now, p);
            if t < f64::INFINITY {
                entries.push(std::cmp::Reverse(CertEntry {
                    t,
                    l: queue[p] as u32,
                    r: queue[p + 1] as u32,
                }));
            }
        }
        self.heap = std::collections::BinaryHeap::from(entries);
        self.dirty = false;
        self.touched = 0; // a rebuild certifies nothing about stability
    }

    /// Rebuilds the heap from the live pairs only (stale-entry purge).
    fn reheap(&mut self, queue: &[usize]) {
        let mut entries: Vec<std::cmp::Reverse<CertEntry>> = Vec::new();
        for p in 0..self.sorted_len.saturating_sub(1) {
            let l = queue[p];
            let t = self.cert[l];
            if t < f64::INFINITY {
                entries.push(std::cmp::Reverse(CertEntry {
                    t,
                    l: l as u32,
                    r: queue[p + 1] as u32,
                }));
            }
        }
        self.heap = std::collections::BinaryHeap::from(entries);
    }

    /// Computes and stores the certificate for the pair led by
    /// `queue[p]` (no-op when `p` is the last position) and pushes it
    /// onto the expiry heap. Requires the pair to compare non-inverted
    /// at `now`.
    fn certify(&mut self, queue: &[usize], jobs: &[Job], now: f64, p: usize) {
        let t = self.cert_time(queue, jobs, now, p);
        if t < f64::INFINITY {
            self.heap.push(std::cmp::Reverse(CertEntry {
                t,
                l: queue[p] as u32,
                r: queue[p + 1] as u32,
            }));
        }
    }

    /// Computes and stores the certificate expiry for the pair led by
    /// `queue[p]` without touching the heap (the rebuild batches its
    /// heap construction). Requires the pair to compare non-inverted at
    /// `now`.
    fn cert_time(&mut self, queue: &[usize], jobs: &[Job], now: f64, p: usize) -> f64 {
        let l = queue[p];
        if p + 1 >= self.sorted_len {
            self.cert[l] = f64::INFINITY;
            return f64::INFINITY;
        }
        let r = queue[p + 1];
        let (ja, jb) = (&jobs[l], &jobs[r]);
        let t = if ja.nodes == jb.nodes && ja.walltime == jb.walltime && ja.submit == jb.submit {
            // Bit-equal score inputs ⇒ bit-equal scores at every `now`;
            // the unique-id tie-break pins the order permanently.
            f64::INFINITY
        } else if now < ja.submit || now < jb.submit {
            // A wait is still clamped at zero: the linear model below
            // does not apply yet. Degenerate outside tests; re-check at
            // the next distinct instant.
            next_up(now)
        } else {
            let ca = self.slope(l, jobs);
            let cb = self.slope(r, jobs);
            // Cube-root space: g(t) = f_A(t) − f_B(t) must stay above
            // the float-ambiguity band 2ε·F(t) (module docs). Both sides
            // are linear in t; solve for the boundary.
            let g0 = ca * (now - ja.submit) - cb * (now - jb.submit);
            let band_slope = 2.0 * SCORE_EPS * (ca + cb);
            let band0 = band_slope * (now - ja.submit.min(jb.submit));
            let gap = g0 - band0;
            if gap <= 0.0 {
                // Already inside the ambiguity band (typically a fresh
                // zero-wait tie): safe *now* by the exact check that
                // preceded this call, but not certifiably beyond it.
                next_up(now)
            } else if ca - cb >= band_slope {
                // The real gap grows at least as fast as the band: safe
                // forever.
                f64::INFINITY
            } else {
                let expiry = now + gap / (band_slope - (ca - cb)) * CERT_SHAVE;
                if expiry <= now {
                    next_up(now)
                } else {
                    expiry.min(f64::MAX)
                }
            }
        };
        self.cert[l] = t;
        t
    }

    /// The exact comparator the full sort applies: descending evaluated
    /// score, then ascending submit, then ascending id.
    fn exact_cmp(base: BaseScheduler, jobs: &[Job], a: usize, b: usize, now: f64) -> Ordering {
        let (ja, jb) = (&jobs[a], &jobs[b]);
        let (sa, sb) = (base.score(ja, now), base.score(jb, now));
        sb.partial_cmp(&sa)
            .unwrap_or(Ordering::Equal)
            .then_with(|| ja.submit.partial_cmp(&jb.submit).unwrap_or(Ordering::Equal))
            .then_with(|| ja.id.cmp(&jb.id))
    }

    /// Cube-root-space slope of a job's score line, memoized per job.
    fn slope(&mut self, j: usize, jobs: &[Job]) -> f64 {
        let c = self.coeff[j];
        if c > 0.0 {
            return c;
        }
        let job = &jobs[j];
        let c = f64::from(job.nodes).cbrt() / job.walltime.max(1.0);
        self.coeff[j] = c;
        c
    }

    /// Sizes the job-indexed vectors.
    fn ensure(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
            self.cert.resize(n, f64::INFINITY);
            self.coeff.resize(n, 0.0);
        }
    }
}

/// Smallest f64 strictly greater than `x` (finite `x`); any future
/// invocation instant `now' > x` satisfies `now' ≥ next_up(x)`, so a
/// certificate of `next_up(x)` is re-checked at the very next distinct
/// instant while never expiring *at* `x` itself (which would loop).
fn next_up(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    if x == 0.0 {
        return f64::from_bits(1); // ±0.0 → smallest positive subnormal
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_is_strictly_greater_and_tight() {
        for &x in &[0.0, -0.0, 1.0, -1.0, 1.5e9, f64::MIN_POSITIVE, -f64::MIN_POSITIVE] {
            let up = next_up(x);
            assert!(up > x, "next_up({x}) = {up} not greater");
            // Tight: stepping one bit back down lands at or below x
            // (i.e. nothing representable lies strictly between).
            let back = if up > 0.0 {
                f64::from_bits(up.to_bits() - 1)
            } else if up == 0.0 {
                -f64::MIN_POSITIVE.min(f64::from_bits(1))
            } else {
                f64::from_bits(up.to_bits() + 1)
            };
            assert!(back <= x, "next_up({x}) = {up} skipped over {back}");
        }
    }

    #[test]
    fn cert_entry_orders_by_time_first() {
        let a = CertEntry { t: 1.0, l: 9, r: 10 };
        let b = CertEntry { t: 2.0, l: 0, r: 1 };
        assert!(a < b);
        let mut h = BinaryHeap::new();
        h.push(std::cmp::Reverse(b));
        h.push(std::cmp::Reverse(a));
        assert_eq!(h.pop().unwrap().0.t, 1.0);
    }
}
