//! Scheduler-service configuration.
//!
//! [`SchedConfig`] is everything a [`crate::SchedCore`] needs to run
//! scheduling invocations: base-scheduler choice, window and starvation
//! bounds, backfilling discipline and scope. Drivers wrap it with their
//! own knobs (the simulator adds trace-demand clamping behaviour, for
//! instance) and validate it up front, so a bad configuration is a typed
//! [`SchedError`], never a mid-invocation panic.

use crate::base_sched::BaseScheduler;
use crate::error::SchedError;
use bbsched_core::window::WindowConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the scheduler-service core.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Base scheduler ordering the queue (FCFS for Cori, WFP for Theta).
    pub base: BaseScheduler,
    /// Window size and starvation bound (§3.1).
    pub window: WindowConfig,
    /// Maximum queued jobs examined per backfilling pass (guards the
    /// per-invocation cost on pathological queues; only relevant with
    /// [`BackfillScope::Queue`]).
    pub max_backfill_scan: usize,
    /// Which jobs EASY backfilling may consider.
    pub backfill: BackfillScope,
    /// Backfilling algorithm: EASY (paper default) or conservative.
    pub backfill_algorithm: BackfillAlgorithm,
    /// Optional dynamic window sizing (§3.1: "the window size could be
    /// dynamically adjusted in response to system status. Job queue length
    /// often changes."). When set, overrides `window.size` per invocation.
    pub dynamic_window: Option<DynamicWindow>,
}

impl SchedConfig {
    /// Validates the whole configuration. Called by [`crate::SchedCore::new`],
    /// so an invalid config is a typed [`SchedError`], never a
    /// mid-invocation panic.
    pub fn validate(&self) -> Result<(), SchedError> {
        self.window.validate().map_err(SchedError::InvalidWindow)?;
        if let Some(d) = self.dynamic_window {
            d.validate()?;
        }
        Ok(())
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            base: BaseScheduler::Fcfs,
            window: WindowConfig::default(),
            max_backfill_scan: 2_000,
            backfill: BackfillScope::Window,
            backfill_algorithm: BackfillAlgorithm::Easy,
            dynamic_window: None,
        }
    }
}

/// Queue-length-driven window sizing: the window tracks a fraction of the
/// waiting queue, clamped to `[min, max]`. Larger queues get more
/// optimization; short queues preserve the site's order (§3.1's stated
/// trade-off).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicWindow {
    /// Smallest window ever used.
    pub min: usize,
    /// Largest window ever used (bounds the optimizer's search space).
    pub max: usize,
    /// Fraction of the queue length targeted.
    pub queue_fraction: f64,
}

impl Default for DynamicWindow {
    fn default() -> Self {
        Self { min: 10, max: 50, queue_fraction: 0.25 }
    }
}

impl DynamicWindow {
    /// Checks the bounds are usable: `min <= max` and a finite,
    /// non-negative queue fraction.
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.min > self.max {
            return Err(SchedError::InvalidDynamicWindow(format!(
                "min ({}) exceeds max ({})",
                self.min, self.max
            )));
        }
        if !self.queue_fraction.is_finite() || self.queue_fraction < 0.0 {
            return Err(SchedError::InvalidDynamicWindow(format!(
                "queue_fraction ({}) must be finite and >= 0",
                self.queue_fraction
            )));
        }
        Ok(())
    }

    /// Window size for a queue of `queue_len` jobs. Total for any inputs
    /// (validation rejects `min > max` up front, but this never panics
    /// regardless — a scheduling invocation is no place for one).
    pub fn size_for(&self, queue_len: usize) -> usize {
        let target = (queue_len as f64 * self.queue_fraction).round() as usize;
        target.max(self.min).min(self.max).max(1)
    }
}

/// The backfilling discipline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackfillAlgorithm {
    /// EASY (§2.1, used throughout the paper): reserve for the first
    /// blocked job only; candidates may not delay it.
    #[default]
    Easy,
    /// Conservative: every blocked candidate receives a reservation on a
    /// future-availability profile; a job starts now only if it delays
    /// none of the reservations ahead of it. Stronger fairness, fewer
    /// backfill opportunities. Uses the persistent, incrementally
    /// maintained profile (DESIGN.md §10).
    Conservative,
    /// The frozen pre-incremental conservative path: rebuilds the
    /// availability profile from the full release schedule on every pass
    /// ([`crate::legacy_profile::RebuildPerPassConservative`]). Produces
    /// bit-identical schedules to [`BackfillAlgorithm::Conservative`];
    /// kept only as the equivalence oracle and benchmark reference — do
    /// not use it for new work.
    ConservativeRebuild,
}

impl BackfillAlgorithm {
    /// The [`crate::BackfillStrategy`] implementing this discipline.
    pub fn strategy(self) -> Box<dyn crate::backfill::BackfillStrategy> {
        match self {
            BackfillAlgorithm::Easy => Box::new(crate::backfill::EasyBackfill),
            BackfillAlgorithm::Conservative => {
                Box::new(crate::backfill::ConservativeBackfill::default())
            }
            BackfillAlgorithm::ConservativeRebuild => {
                Box::new(crate::legacy_profile::RebuildPerPassConservative)
            }
        }
    }
}

/// Candidate scope for the EASY backfilling pass.
///
/// The paper runs window-based selection with EASY backfilling on top
/// (§4.3); with a full-queue scope, greedy backfilling over thousands of
/// queued jobs dominates the schedule and erases most of the difference
/// between selection policies — every method degenerates to queue-wide
/// first-fit. Restricting candidates to the scheduling window (the
/// default) keeps backfilling's fragmentation-mitigation role while
/// leaving job selection to the policy under study, which is the
/// experimental design the paper's comparisons require. The scope applies
/// identically to every method, so comparisons stay fair either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackfillScope {
    /// Only jobs inside the scheduling window may backfill.
    Window,
    /// Any waiting job may backfill (classic site-wide EASY), capped by
    /// `max_backfill_scan`.
    Queue,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_window_sizing_is_total() {
        let d = DynamicWindow { min: 10, max: 50, queue_fraction: 0.25 };
        assert_eq!(d.size_for(0), 10);
        assert_eq!(d.size_for(100), 25);
        assert_eq!(d.size_for(1_000), 50);
        let broken = DynamicWindow { min: 50, max: 10, queue_fraction: 0.25 };
        for q in [0usize, 40, 100, 10_000] {
            assert!(broken.size_for(q) >= 1);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = SchedConfig {
            dynamic_window: Some(DynamicWindow { min: 9, max: 3, queue_fraction: 0.5 }),
            ..SchedConfig::default()
        };
        assert!(matches!(bad.validate(), Err(SchedError::InvalidDynamicWindow(_))));
        assert!(SchedConfig::default().validate().is_ok());
    }
}
