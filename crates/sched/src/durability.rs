//! Durable checkpointing: a write-ahead event journal, rolling
//! snapshots, and the [`Driver`] trait they are written against.
//!
//! PR 7 made every driver's state explicit ([`crate::CoreSnapshot`],
//! [`crate::ReplaySnapshot`], the engine snapshot); this module makes
//! that state *durable*. Three pieces compose (DESIGN.md §13):
//!
//! * [`Journal`] — an append-only write-ahead log of wire lines
//!   (fsync'd per [`Journal::sync`]). The on-disk format is a magic
//!   header followed by length-prefixed, checksummed frames; recovery
//!   tolerates a torn tail — a truncated or corrupt final frame is
//!   detected, dropped, and the file truncated back to the last valid
//!   frame, never a panic.
//! * [`SnapshotStore`] — rolling checkpoints named by stream position,
//!   written atomically (temp file + fsync + rename + directory fsync)
//!   and pruned to the newest K. [`SnapshotStore::load_newest`] falls
//!   back to older snapshots when the newest is unreadable.
//! * [`Driver`] — the narrow trait every checkpointable driver
//!   implements ([`crate::Replayer`], the simulator engine, the `cli
//!   serve` daemon), so checkpoint writing is one generic code path
//!   instead of per-driver plumbing.
//!
//! Crash recovery composes them: newest valid snapshot + replay of the
//! journal tail reproduces the uninterrupted run's state — and, because
//! decisions are a pure function of the event prefix, its decision
//! stream — byte for byte.
//!
//! ## Binary encoding
//!
//! Snapshots carry either the golden JSON wire form (`schema_version:
//! 1`, unchanged) or a compact binary encoding of the *same* value
//! tree — an encoding, not a new schema. The two are negotiated by
//! magic bytes on read ([`from_bytes`]): binary files start with
//! `BBSNAP` + a version byte, everything else is parsed as JSON. The
//! binary form is tag-prefixed with LEB128 varints and an interned
//! string table, which is where the size win over JSON comes from —
//! field names repeat once per struct in JSON but are one-byte
//! back-references here.

use crate::error::SchedError;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// How a snapshot is encoded on disk. JSON is the golden wire form;
/// binary is a size-optimized encoding of the same value tree,
/// negotiated by magic bytes on read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// The versioned JSON wire form (DESIGN.md §12).
    Json,
    /// The compact tagged-binary form (DESIGN.md §13).
    Binary,
}

impl Encoding {
    /// The lowercase name (`json` | `binary`), as spelled on CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
        }
    }
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Encoding {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Ok(Encoding::Json),
            "binary" => Ok(Encoding::Binary),
            other => Err(format!("unknown snapshot encoding '{other}' (json|binary)")),
        }
    }
}

// ---------------------------------------------------------------------
// Binary value codec
// ---------------------------------------------------------------------

/// Magic prefix of a binary snapshot file; the byte after it is the
/// binary-container version. JSON files never start with it.
pub const BINARY_MAGIC: &[u8; 6] = b"BBSNAP";
/// Binary-container version written after [`BINARY_MAGIC`]. This
/// versions the *encoding*; the value tree inside still carries the
/// JSON-visible `schema_version: 1`.
pub const BINARY_VERSION: u8 = 1;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64_RAW: u8 = 0x05;
const TAG_F64_INT: u8 = 0x06;
const TAG_STR_NEW: u8 = 0x07;
const TAG_STR_REF: u8 = 0x08;
const TAG_SEQ: u8 = 0x09;
const TAG_MAP: u8 = 0x0a;

/// Decode recursion bound: corrupt input cannot drive the stack deeper
/// than this (well past any real snapshot's nesting).
const MAX_DEPTH: usize = 128;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Whether `f` round-trips exactly through the varint-integer encoding
/// (integral, within the f64-exact integer range, and not `-0.0`, whose
/// sign a varint cannot carry).
fn as_exact_int(f: f64) -> Option<i64> {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if f.is_finite() && f.trunc() == f && f.abs() <= EXACT && !(f == 0.0 && f.is_sign_negative()) {
        Some(f as i64)
    } else {
        None
    }
}

struct StrInterner {
    ids: HashMap<String, u64>,
}

impl StrInterner {
    fn write_str(&mut self, out: &mut Vec<u8>, s: &str) {
        if let Some(&id) = self.ids.get(s) {
            out.push(TAG_STR_REF);
            write_varint(out, id);
        } else {
            let id = self.ids.len() as u64;
            self.ids.insert(s.to_string(), id);
            out.push(TAG_STR_NEW);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn encode_into(v: &Value, out: &mut Vec<u8>, strs: &mut StrInterner) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            write_varint(out, *n);
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            write_varint(out, zigzag(*n));
        }
        Value::F64(f) => match as_exact_int(*f) {
            Some(i) => {
                out.push(TAG_F64_INT);
                write_varint(out, zigzag(i));
            }
            None => {
                out.push(TAG_F64_RAW);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        },
        Value::Str(s) => strs.write_str(out, s),
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_varint(out, items.len() as u64);
            for item in items {
                encode_into(item, out, strs);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_varint(out, entries.len() as u64);
            for (k, val) in entries {
                strs.write_str(out, k);
                encode_into(val, out, strs);
            }
        }
    }
}

/// Encodes a value tree in the tagged-binary form (no magic header —
/// [`to_bytes`] adds the container framing).
fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    let mut strs = StrInterner { ids: HashMap::new() };
    encode_into(v, &mut out, &mut strs);
    out
}

struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    strs: Vec<String>,
}

impl<'a> BinReader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, String> {
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of binary snapshot")?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err("varint overflows 64 bits".to_string())
    }

    fn str_value(&mut self, tag: u8) -> Result<String, String> {
        match tag {
            TAG_STR_NEW => {
                let len = self.varint()? as usize;
                if len > self.remaining() {
                    return Err(format!("string length {len} exceeds remaining input"));
                }
                let raw = &self.bytes[self.pos..self.pos + len];
                self.pos += len;
                let s = std::str::from_utf8(raw).map_err(|e| e.to_string())?.to_string();
                self.strs.push(s.clone());
                Ok(s)
            }
            TAG_STR_REF => {
                let id = self.varint()? as usize;
                self.strs
                    .get(id)
                    .cloned()
                    .ok_or_else(|| format!("string reference {id} out of range"))
            }
            other => Err(format!("expected a string tag, found 0x{other:02x}")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        let tag = self.byte()?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_U64 => Ok(Value::U64(self.varint()?)),
            TAG_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            TAG_F64_RAW => {
                if self.remaining() < 8 {
                    return Err("truncated float".to_string());
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
                self.pos += 8;
                Ok(Value::F64(f64::from_bits(u64::from_le_bytes(raw))))
            }
            TAG_F64_INT => Ok(Value::F64(unzigzag(self.varint()?) as f64)),
            TAG_STR_NEW | TAG_STR_REF => Ok(Value::Str(self.str_value(tag)?)),
            TAG_SEQ => {
                let len = self.varint()? as usize;
                if len > self.remaining() {
                    return Err(format!("sequence length {len} exceeds remaining input"));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let len = self.varint()? as usize;
                if len > self.remaining() {
                    return Err(format!("map length {len} exceeds remaining input"));
                }
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let tag = self.byte()?;
                    let key = self.str_value(tag)?;
                    entries.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Map(entries))
            }
            other => Err(format!("unknown binary tag 0x{other:02x}")),
        }
    }
}

/// Decodes a tagged-binary value tree (payload after the magic header).
fn decode_value(bytes: &[u8]) -> Result<Value, String> {
    let mut r = BinReader { bytes, pos: 0, strs: Vec::new() };
    let v = r.value(0)?;
    if r.pos != bytes.len() {
        return Err(format!("{} trailing bytes after the value", bytes.len() - r.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Container encode / decode (magic-byte negotiation)
// ---------------------------------------------------------------------

/// Serializes `value` in the given encoding: the JSON wire form
/// verbatim, or [`BINARY_MAGIC`] + version byte + the tagged-binary
/// tree. Both decode through [`from_bytes`].
pub fn to_bytes<T: Serialize + ?Sized>(value: &T, encoding: Encoding) -> Vec<u8> {
    match encoding {
        Encoding::Json => serde_json::to_vec(value).expect("snapshot values always serialize"),
        Encoding::Binary => {
            let tree = value.to_value();
            let body = encode_value(&tree);
            let mut out = Vec::with_capacity(BINARY_MAGIC.len() + 1 + body.len());
            out.extend_from_slice(BINARY_MAGIC);
            out.push(BINARY_VERSION);
            out.extend_from_slice(&body);
            out
        }
    }
}

/// Decodes a snapshot file's raw value tree, negotiating the encoding
/// by magic bytes: [`BINARY_MAGIC`] means binary, anything else is
/// parsed as JSON. Corruption is a typed error, never a panic.
pub fn value_from_bytes(bytes: &[u8]) -> Result<(Value, Encoding), SchedError> {
    if bytes.starts_with(BINARY_MAGIC) {
        let Some(&version) = bytes.get(BINARY_MAGIC.len()) else {
            return Err(SchedError::CorruptSnapshot(
                "binary snapshot truncated inside the magic header".to_string(),
            ));
        };
        if version != BINARY_VERSION {
            return Err(SchedError::CorruptSnapshot(format!(
                "binary snapshot container version {version} is not supported \
                 (expected {BINARY_VERSION})"
            )));
        }
        let v =
            decode_value(&bytes[BINARY_MAGIC.len() + 1..]).map_err(SchedError::CorruptSnapshot)?;
        Ok((v, Encoding::Binary))
    } else {
        let v = serde_json::value_from_slice(bytes)
            .map_err(|e| SchedError::CorruptSnapshot(e.to_string()))?;
        Ok((v, Encoding::Json))
    }
}

/// Decodes a typed snapshot, negotiating the encoding by magic bytes
/// (see [`value_from_bytes`]).
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<(T, Encoding), SchedError> {
    let (tree, encoding) = value_from_bytes(bytes)?;
    let value = T::from_value(&tree).map_err(|e| SchedError::CorruptSnapshot(e.to_string()))?;
    Ok((value, encoding))
}

// ---------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically *and durably*: temp file, fsync,
/// rename over the target, then a best-effort fsync of the containing
/// directory so the rename itself survives a power cut. A crash at any
/// point leaves either the old file or the new one, never a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                d.sync_all().ok();
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Write-ahead journal
// ---------------------------------------------------------------------

/// Magic prefix of a journal file, followed by a version byte and a
/// newline.
pub const JOURNAL_MAGIC: &[u8; 5] = b"BBWAL";
/// Journal container version written after [`JOURNAL_MAGIC`].
pub const JOURNAL_VERSION: u8 = 1;

const JOURNAL_HEADER_LEN: usize = 7; // magic + version + '\n'
const FRAME_HEADER_LEN: usize = 12; // u32 payload length + u64 checksum

fn journal_header() -> [u8; JOURNAL_HEADER_LEN] {
    let mut h = [0u8; JOURNAL_HEADER_LEN];
    h[..5].copy_from_slice(JOURNAL_MAGIC);
    h[5] = JOURNAL_VERSION;
    h[6] = b'\n';
    h
}

/// FNV-1a 64-bit — the per-frame payload checksum. Not cryptographic;
/// it only needs to catch torn writes and bit rot.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What [`Journal::open`] salvaged from an existing journal file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from the tail (a torn or corrupt final frame; 0 on
    /// a clean file). The file has already been truncated past them.
    pub dropped_bytes: u64,
}

/// An append-only write-ahead log of wire-format lines.
///
/// On-disk layout: a 7-byte header (`BBWAL` + version + `\n`), then
/// frames of `[u32 LE payload length][u64 LE FNV-1a checksum][payload]`.
/// [`Journal::open`] scans existing frames and stops at the first
/// truncated or corrupt one, truncating the file back to the last valid
/// frame (torn-tail tolerance); it never panics on garbage.
///
/// [`Journal::append`] buffers in the OS; call [`Journal::sync`] (or
/// [`Journal::append_sync`]) to make records durable before acting on
/// them — write-ahead means *journal first, apply second*.
pub struct Journal {
    file: File,
    records: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, salvaging every intact
    /// record. A file that is not a bbsched journal (bad magic) or has
    /// an unsupported version is a hard error — it is never clobbered.
    pub fn open(path: &Path) -> io::Result<(Self, JournalRecovery)> {
        let header = journal_header();
        let mut file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < JOURNAL_HEADER_LEN {
            // Empty, or a crash tore the header itself: rewrite it.
            if !header.starts_with(&bytes) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("'{}' is not a bbsched journal", path.display()),
                ));
            }
            let dropped = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            file.sync_data()?;
            return Ok((
                Journal { file, records: 0 },
                JournalRecovery { records: Vec::new(), dropped_bytes: dropped },
            ));
        }
        if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("'{}' is not a bbsched journal", path.display()),
            ));
        }
        if bytes[JOURNAL_MAGIC.len()..JOURNAL_HEADER_LEN] != header[JOURNAL_MAGIC.len()..] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal version {} in '{}' is not supported (expected {JOURNAL_VERSION})",
                    bytes[JOURNAL_MAGIC.len()],
                    path.display()
                ),
            ));
        }

        let mut records = Vec::new();
        let mut off = JOURNAL_HEADER_LEN;
        loop {
            if off + FRAME_HEADER_LEN > bytes.len() {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
            let sum = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().expect("8 bytes"));
            let Some(end) = off.checked_add(FRAME_HEADER_LEN).and_then(|s| s.checked_add(len))
            else {
                break;
            };
            if end > bytes.len() {
                break; // torn payload
            }
            let payload = &bytes[off + FRAME_HEADER_LEN..end];
            if fnv1a64(payload) != sum {
                break; // corrupt payload (or a frame boundary lie)
            }
            records.push(payload.to_vec());
            off = end;
        }

        let dropped = (bytes.len() - off) as u64;
        if dropped > 0 {
            file.set_len(off as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(off as u64))?;
        let n = records.len() as u64;
        Ok((Journal { file, records: n }, JournalRecovery { records, dropped_bytes: dropped }))
    }

    /// Records appended so far (salvaged + newly appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record (not yet durable — see [`Journal::sync`]).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "journal record exceeds 4 GiB")
        })?;
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Fsyncs everything appended so far.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Appends one record and fsyncs it — the write-ahead step.
    pub fn append_sync(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append(payload)?;
        self.sync()
    }
}

// ---------------------------------------------------------------------
// Rolling snapshot store
// ---------------------------------------------------------------------

/// A snapshot loaded by [`SnapshotStore::load_newest`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedSnapshot<T> {
    /// The stream position the snapshot was taken at (from its
    /// filename).
    pub position: u64,
    /// The decoded snapshot.
    pub value: T,
    /// The encoding the file carried.
    pub encoding: Encoding,
    /// Newer snapshots that were skipped because they failed to read or
    /// decode.
    pub skipped: usize,
    /// The file the snapshot was loaded from.
    pub path: PathBuf,
}

/// Rolling checkpoints in a directory: `snap-<position>.ckpt`, written
/// atomically ([`atomic_write`]) and pruned to the newest K.
pub struct SnapshotStore {
    dir: PathBuf,
    retain: usize,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store at `dir`, retaining the
    /// newest `retain` snapshots (at least 1).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, retain: retain.max(1) })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a snapshot at `position` lives in.
    pub fn path_for(&self, position: u64) -> PathBuf {
        self.dir.join(format!("snap-{position:012}.ckpt"))
    }

    /// Stream positions with a snapshot on disk, oldest first.
    pub fn positions(&self) -> io::Result<Vec<u64>> {
        let mut positions = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".ckpt")) {
                if let Ok(pos) = digits.parse::<u64>() {
                    positions.push(pos);
                }
            }
        }
        positions.sort_unstable();
        Ok(positions)
    }

    /// Writes a snapshot for `position` atomically, then prunes old
    /// ones down to the retention count.
    pub fn save<T: Serialize>(
        &self,
        position: u64,
        value: &T,
        encoding: Encoding,
    ) -> io::Result<PathBuf> {
        let path = self.path_for(position);
        atomic_write(&path, &to_bytes(value, encoding))?;
        self.prune()?;
        Ok(path)
    }

    fn prune(&self) -> io::Result<()> {
        let positions = self.positions()?;
        if positions.len() > self.retain {
            for &pos in &positions[..positions.len() - self.retain] {
                fs::remove_file(self.path_for(pos))?;
            }
        }
        Ok(())
    }

    /// Loads the newest snapshot that reads and decodes cleanly,
    /// falling back to older ones past any corrupt file. `Ok(None)`
    /// when no snapshot is loadable at all.
    pub fn load_newest<T: Deserialize>(&self) -> io::Result<Option<LoadedSnapshot<T>>> {
        let mut skipped = 0;
        for &position in self.positions()?.iter().rev() {
            let path = self.path_for(position);
            let Ok(bytes) = fs::read(&path) else {
                skipped += 1;
                continue;
            };
            match from_bytes::<T>(&bytes) {
                Ok((value, encoding)) => {
                    return Ok(Some(LoadedSnapshot { position, value, encoding, skipped, path }))
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------
// The Driver trait
// ---------------------------------------------------------------------

/// A checkpointable stream driver: anything that can capture its
/// complete state and name its position in the stream it consumes.
///
/// Implemented by [`crate::Replayer`] (position = events fed), the
/// simulator engine (position = invocations run), and the `cli serve`
/// daemon (position = input lines consumed), so checkpoint writing —
/// [`write_checkpoint`], [`Checkpointer`] — is one generic path.
pub trait Driver {
    /// The driver's complete serializable state.
    type Snapshot: Serialize + Deserialize;

    /// Captures the driver's complete state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Monotone progress counter: names rolling snapshots and decides
    /// checkpoint cadence.
    fn position(&self) -> u64;
}

/// Writes a driver's checkpoint to a single file, atomically and
/// durably ([`atomic_write`]) — the one write path every checkpointing
/// command routes through.
pub fn write_checkpoint<D: Driver>(driver: &D, path: &Path, encoding: Encoding) -> io::Result<()> {
    atomic_write(path, &to_bytes(&driver.snapshot(), encoding))
}

/// Reads a checkpoint file written by [`write_checkpoint`] (either
/// encoding; negotiated by magic bytes).
pub fn read_checkpoint<T: Deserialize>(path: &Path) -> io::Result<(T, Encoding)> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Rolling-checkpoint policy against the [`Driver`] trait: every
/// `every` positions, save the driver's snapshot into the store.
pub struct Checkpointer {
    store: SnapshotStore,
    every: u64,
    encoding: Encoding,
}

impl Checkpointer {
    /// A checkpointer saving into `store` every `every` positions
    /// (0 = only on explicit [`Checkpointer::save_now`] calls).
    pub fn new(store: SnapshotStore, every: u64, encoding: Encoding) -> Self {
        Self { store, every, encoding }
    }

    /// The underlying store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Saves the driver's snapshot unconditionally.
    pub fn save_now<D: Driver>(&self, driver: &D) -> io::Result<PathBuf> {
        self.store.save(driver.position(), &driver.snapshot(), self.encoding)
    }

    /// Saves when the driver's position hits the cadence.
    pub fn maybe_save<D: Driver>(&self, driver: &D) -> io::Result<Option<PathBuf>> {
        let pos = driver.position();
        if self.every > 0 && pos > 0 && pos.is_multiple_of(self.every) {
            self.save_now(driver).map(Some)
        } else {
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------
// Cheap inspection
// ---------------------------------------------------------------------

/// Shallow facts about a snapshot file, extracted from the value tree
/// without ever constructing a core (`cli snapshot inspect`).
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotInfo {
    /// The encoding the file carried.
    pub encoding: Encoding,
    /// What the file looks like, from its top-level shape.
    pub kind: &'static str,
    /// `schema_version` of the embedded core snapshot.
    pub schema_version: Option<u64>,
    /// Scheduling invocations run.
    pub invocations: Option<u64>,
    /// Jobs waiting in the queue.
    pub queue_depth: Option<usize>,
    /// Jobs currently running.
    pub running_jobs: Option<usize>,
    /// Jobs ever submitted.
    pub jobs_submitted: Option<usize>,
    /// The snapshotted policy's name.
    pub policy: Option<String>,
    /// The core's clock (s).
    pub clock: Option<f64>,
}

fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn val_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) if n >= 0 => Some(n as u64),
        _ => None,
    }
}

fn val_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(f) => Some(f),
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        _ => None,
    }
}

fn seq_len(v: &Value) -> Option<usize> {
    match v {
        Value::Seq(items) => Some(items.len()),
        _ => None,
    }
}

/// Finds the first (sub)map carrying a `schema_version` key — the
/// embedded [`crate::CoreSnapshot`] — wherever the wrapper nests it.
fn find_core(v: &Value) -> Option<&[(String, Value)]> {
    let map = v.as_map()?;
    if map_get(map, "schema_version").is_some() {
        return Some(map);
    }
    for (_, child) in map {
        if let Some(core) = find_core(child) {
            return Some(core);
        }
    }
    None
}

/// Inspects a snapshot file's bytes: encoding, wrapper kind, and the
/// embedded core's headline numbers — without loading a full core.
pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotInfo, SchedError> {
    let (tree, encoding) = value_from_bytes(bytes)?;
    let top = tree
        .as_map()
        .ok_or_else(|| SchedError::CorruptSnapshot("snapshot is not an object".to_string()))?;
    let kind = if map_get(top, "consumed").is_some() && map_get(top, "replay").is_some() {
        "daemon checkpoint"
    } else if map_get(top, "replay").is_some() {
        "replay checkpoint"
    } else if map_get(top, "finish_events").is_some() {
        "engine snapshot"
    } else if map_get(top, "events_fed").is_some() {
        "replay snapshot"
    } else if map_get(top, "schema_version").is_some() {
        "core snapshot"
    } else {
        "unknown"
    };
    let core = find_core(&tree).ok_or_else(|| {
        SchedError::CorruptSnapshot("no embedded core state (schema_version) found".to_string())
    })?;
    Ok(SnapshotInfo {
        encoding,
        kind,
        schema_version: map_get(core, "schema_version").and_then(val_u64),
        invocations: map_get(core, "invocations").and_then(val_u64),
        queue_depth: map_get(core, "queue")
            .and_then(Value::as_map)
            .and_then(|q| map_get(q, "queue"))
            .and_then(seq_len),
        running_jobs: map_get(core, "ledger")
            .and_then(Value::as_map)
            .and_then(|l| map_get(l, "running"))
            .and_then(seq_len),
        jobs_submitted: map_get(core, "jobs").and_then(seq_len),
        policy: map_get(core, "policy")
            .and_then(Value::as_map)
            .and_then(|p| map_get(p, "name"))
            .and_then(Value::as_str)
            .map(str::to_string),
        clock: map_get(core, "clock").and_then(val_f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bbsched_dur_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_value() -> Value {
        Value::Map(vec![
            ("schema_version".into(), Value::U64(1)),
            ("clock".into(), Value::F64(1234.5)),
            ("neg".into(), Value::I64(-42)),
            ("flag".into(), Value::Bool(true)),
            ("name".into(), Value::Str("Baseline".into())),
            (
                "jobs".into(),
                Value::Seq(
                    (0..20)
                        .map(|i| {
                            Value::Map(vec![
                                ("id".into(), Value::U64(i)),
                                ("submit".into(), Value::F64(i as f64 * 10.0)),
                                ("name".into(), Value::Str("Baseline".into())),
                                ("none".into(), Value::Null),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn varints_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut r = BinReader { bytes: &out, pos: 0, strs: Vec::new() };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.pos, out.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn binary_codec_round_trips_exactly() {
        let v = sample_value();
        let enc = encode_value(&v);
        assert_eq!(decode_value(&enc).unwrap(), v);

        // Floats that do not fit the varint fast path keep raw bits.
        for f in [-0.0, 0.1, f64::MAX, 1e300, 9_007_199_254_740_993.0, -1.5] {
            let v = Value::F64(f);
            let enc = encode_value(&v);
            match decode_value(&enc).unwrap() {
                Value::F64(g) => assert_eq!(g.to_bits(), f.to_bits(), "float {f} changed"),
                other => panic!("expected a float, got {other:?}"),
            }
        }
        assert_eq!(as_exact_int(-0.0), None, "-0.0 must not lose its sign");
        assert_eq!(as_exact_int(3.0), Some(3));
    }

    #[test]
    fn string_interning_shrinks_repeated_keys() {
        let v = sample_value();
        let binary = encode_value(&v);
        let json = serde_json::to_vec(&crate::service::RawValue(v)).unwrap();
        assert!(
            binary.len() * 2 <= json.len(),
            "binary ({}) should be at most half of JSON ({})",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn corrupt_binary_input_is_an_error_not_a_panic() {
        for bytes in [
            &b"\x09\xff\xff\xff\xff\x0f"[..], // huge sequence length
            &b"\x07\xff"[..],                 // string longer than input
            &b"\x08\x05"[..],                 // dangling string reference
            &b"\x7f"[..],                     // unknown tag
            &b"\x05\x01\x02"[..],             // truncated float
            &b""[..],                         // empty
        ] {
            assert!(decode_value(bytes).is_err());
        }
        // Deep nesting is bounded, not a stack overflow.
        let mut deep = vec![0u8; 0];
        for _ in 0..100_000 {
            deep.push(TAG_SEQ);
            deep.push(1);
        }
        deep.push(TAG_NULL);
        assert!(decode_value(&deep).is_err());
    }

    #[test]
    fn container_negotiates_by_magic() {
        let v = vec![1u64, 2, 3];
        let json = to_bytes(&v, Encoding::Json);
        let binary = to_bytes(&v, Encoding::Binary);
        assert!(json.starts_with(b"["));
        assert!(binary.starts_with(BINARY_MAGIC));
        assert_eq!(from_bytes::<Vec<u64>>(&json).unwrap(), (v.clone(), Encoding::Json));
        assert_eq!(from_bytes::<Vec<u64>>(&binary).unwrap(), (v, Encoding::Binary));

        let mut wrong_version = binary.clone();
        wrong_version[BINARY_MAGIC.len()] = 9;
        assert!(matches!(
            from_bytes::<Vec<u64>>(&wrong_version),
            Err(SchedError::CorruptSnapshot(_))
        ));
        assert!(from_bytes::<Vec<u64>>(b"not json").is_err());
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = tempdir("aw");
        let path = dir.join("out.bin");
        atomic_write(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        atomic_write(&path, b"world").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1, "no .tmp leftovers");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_round_trips_and_counts() {
        let dir = tempdir("jr");
        let path = dir.join("events.wal");
        {
            let (mut j, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec, JournalRecovery::default());
            j.append_sync(b"one").unwrap();
            j.append_sync(b"two").unwrap();
            assert_eq!(j.records(), 2);
        }
        let (mut j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(j.records(), 2);
        j.append_sync(b"three").unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_rejects_foreign_files() {
        let dir = tempdir("jf");
        let path = dir.join("not_a_journal");
        fs::write(&path, b"something else entirely").unwrap();
        assert!(Journal::open(&path).is_err());
        let versioned = dir.join("future_version");
        fs::write(&versioned, b"BBWAL\x02\n").unwrap();
        assert!(Journal::open(&versioned).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_drops_torn_tail_and_truncates() {
        let dir = tempdir("jt");
        let full = dir.join("full.wal");
        {
            let (mut j, _) = Journal::open(&full).unwrap();
            j.append_sync(b"alpha").unwrap();
            j.append_sync(b"beta-longer-payload").unwrap();
        }
        let bytes = fs::read(&full).unwrap();
        let first_frame_end = JOURNAL_HEADER_LEN + FRAME_HEADER_LEN + 5;
        // Cut anywhere inside the final frame: exactly the final record
        // is dropped, and the file is truncated back to the valid tail.
        for cut in first_frame_end..bytes.len() {
            let path = dir.join("cut.wal");
            fs::write(&path, &bytes[..cut]).unwrap();
            let (mut j, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.records, vec![b"alpha".to_vec()], "cut at byte {cut}");
            assert_eq!(rec.dropped_bytes, (cut - first_frame_end) as u64);
            assert_eq!(fs::metadata(&path).unwrap().len(), first_frame_end as u64);
            // The truncated journal accepts appends again.
            j.append_sync(b"gamma").unwrap();
            drop(j);
            let (_, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.records, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
        }
        // A corrupt byte inside the final payload drops it too.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let path = dir.join("corrupt.wal");
        fs::write(&path, &corrupt).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"alpha".to_vec()]);
        assert!(rec.dropped_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_store_retains_and_falls_back() {
        let dir = tempdir("ss");
        let store = SnapshotStore::open(dir.join("snaps"), 2).unwrap();
        for pos in [10u64, 20, 30, 40] {
            store.save(pos, &vec![pos, pos + 1], Encoding::Binary).unwrap();
        }
        assert_eq!(store.positions().unwrap(), vec![30, 40], "pruned to the newest 2");
        let loaded = store.load_newest::<Vec<u64>>().unwrap().unwrap();
        assert_eq!((loaded.position, loaded.value), (40, vec![40, 41]));
        assert_eq!(loaded.encoding, Encoding::Binary);
        assert_eq!(loaded.skipped, 0);

        // Corrupt the newest: load_newest falls back to the older one.
        fs::write(store.path_for(40), b"BBSNAP\x01garbage").unwrap();
        let loaded = store.load_newest::<Vec<u64>>().unwrap().unwrap();
        assert_eq!((loaded.position, loaded.value), (30, vec![30, 31]));
        assert_eq!(loaded.skipped, 1);

        // Corrupt everything: None, not a panic.
        fs::write(store.path_for(30), b"}{").unwrap();
        assert!(store.load_newest::<Vec<u64>>().unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_reads_shallow_facts_from_both_encodings() {
        let tree = sample_value();
        let wrapper = Value::Map(vec![
            ("replay".into(), Value::Map(vec![("core".into(), tree)])),
            ("consumed".into(), Value::U64(7)),
        ]);
        let raw = crate::service::RawValue(wrapper);
        for encoding in [Encoding::Json, Encoding::Binary] {
            let bytes = to_bytes(&raw, encoding);
            let info = inspect_bytes(&bytes).unwrap();
            assert_eq!(info.encoding, encoding);
            assert_eq!(info.kind, "daemon checkpoint");
            assert_eq!(info.schema_version, Some(1));
            assert_eq!(info.jobs_submitted, Some(20));
            assert_eq!(info.clock, Some(1234.5));
        }
        assert!(inspect_bytes(b"[1,2,3]").is_err());
        assert!(inspect_bytes(b"{\"no\":\"core\"}").is_err());
    }
}
