//! The waiting queue: base-scheduler priority order, kept incrementally.
//!
//! [`QueueManager`] owns the queue of waiting job indices and the ordering
//! discipline of the configured [`BaseScheduler`]:
//!
//! * **FCFS** is a *static* total order — `(submit, id)` ascending — so
//!   the queue is kept sorted incrementally: each arrival is inserted at
//!   its binary-searched position and no per-invocation re-sort ever
//!   happens. This replaces the monolithic loop's full
//!   `O(n log n)`-per-invocation sort with `O(log n)` per arrival.
//! * **WFP** scores are time-dependent (`(wait/walltime)³ × nodes` grows
//!   every second), so the queue *must* be re-scored and re-sorted at
//!   every scheduling invocation. Each job's score is computed **once**
//!   into a reused buffer and the sort compares cached values — the
//!   comparator chain is unchanged, so the permutation is identical to
//!   the recompute-in-comparator sort, without the `O(n log n)` redundant
//!   score evaluations per invocation.
//!
//! Both disciplines produce byte-identical orderings to the old full
//! re-sort: FCFS because `(submit, id)` is the same strict total order the
//! sort used, WFP because scores are deterministic per `(job, now)` and
//! the (stable) sort applies the same comparator to the same values.
//! Property tests below check both claims on random queues.
//!
//! Started-job cleanup subtracts a [`JobSet`] bitset inside `retain`, so
//! each membership probe is a shift-and-mask instead of a hash — the
//! `started.contains`-per-element pattern stays linear in the queue
//! length with a tiny constant even on 100k-job traces.

use crate::base_sched::BaseScheduler;
use crate::jobset::JobSet;
use crate::kinetic::KineticIndex;
use bbsched_workloads::Job;

/// The engine's waiting queue, ordered by base-scheduler priority.
#[derive(Clone, Debug)]
pub struct QueueManager {
    base: BaseScheduler,
    /// Indices into the engine's job table, highest priority first.
    queue: Vec<usize>,
    /// Kinetic sorted-order index (WFP only): certificates on adjacent
    /// pairs turn the per-invocation re-sort into crossing-driven
    /// incremental maintenance. Transient — never serialized; rebuilt
    /// from `queue` after restore (see `crate::kinetic`).
    kinetic: KineticIndex,
}

impl QueueManager {
    /// An empty queue under the given base scheduler.
    pub fn new(base: BaseScheduler) -> Self {
        Self { base, queue: Vec::new(), kinetic: KineticIndex::new() }
    }

    /// The ordering discipline.
    pub fn base(&self) -> BaseScheduler {
        self.base
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The queue in priority order (valid after [`QueueManager::order`]).
    pub fn as_slice(&self) -> &[usize] {
        &self.queue
    }

    /// Enqueues an arrived job.
    ///
    /// FCFS inserts at the job's sorted `(submit, id)` position; WFP
    /// appends (its order is rebuilt per invocation anyway).
    pub fn push(&mut self, idx: usize, jobs: &[Job]) {
        match self.base {
            BaseScheduler::Fcfs => {
                let key = |i: usize| (jobs[i].submit, jobs[i].id);
                let (submit, id) = key(idx);
                let pos = self.queue.partition_point(|&q| {
                    let (qs, qid) = key(q);
                    qs.total_cmp(&submit).then(qid.cmp(&id)).is_lt()
                });
                if pos < self.queue.len() {
                    // A mid-queue insert disturbs the sealed order; a
                    // tail append does not (see `stable_prefix`).
                    self.kinetic.touch(pos);
                }
                self.queue.insert(pos, idx);
            }
            // WFP arrivals append; `order` folds them into the kinetic
            // index at the next invocation (where, with zero wait, they
            // land at the tail anyway under live event-driven use).
            BaseScheduler::Wfp => self.queue.push(idx),
        }
    }

    /// Establishes priority order for a scheduling invocation at `now`
    /// and seals the invocation's [`QueueManager::stable_prefix`].
    ///
    /// FCFS is already sorted (checked in debug builds). WFP delegates
    /// to the kinetic index: only adjacent pairs whose score-crossing
    /// certificates expired by `now` are re-checked (and bubbled if they
    /// actually inverted), and arrivals are binary-inserted — amortised
    /// `O((k + 1)·log Q)` against the old `O(Q)` re-score plus
    /// `O(Q log Q)` sort, with the quiescent no-crossing case a single
    /// heap peek. The permutation is byte-identical to the cached-score
    /// stable sort (see `crate::kinetic` for the argument); debug builds
    /// assert that against a full re-sort oracle on every invocation.
    pub fn order(&mut self, jobs: &[Job], now: f64) {
        match self.base {
            BaseScheduler::Fcfs => {
                debug_assert!(
                    self.queue.windows(2).all(|w| {
                        let a = (jobs[w[0]].submit, jobs[w[0]].id);
                        let b = (jobs[w[1]].submit, jobs[w[1]].id);
                        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_lt()
                    }),
                    "incremental FCFS order violated"
                );
                self.kinetic.seal_static(self.queue.len());
            }
            BaseScheduler::Wfp => {
                self.kinetic.order(self.base, &mut self.queue, jobs, now);
                #[cfg(debug_assertions)]
                self.assert_wfp_oracle(jobs, now);
            }
        }
    }

    /// Number of leading queue positions that provably hold the same
    /// jobs, in the same order, as the previous invocation's sealed
    /// order (valid after [`QueueManager::order`]; a restore or rebuild
    /// seals `0`). Backfill's memoized replay uses this as an O(1)
    /// cache-prefix-unchanged witness.
    pub fn stable_prefix(&self) -> usize {
        self.kinetic.stable_prefix()
    }

    /// Debug oracle: the kinetic order must equal the full cached-score
    /// stable sort, every invocation (crate::kinetic's exactness claim).
    #[cfg(debug_assertions)]
    fn assert_wfp_oracle(&self, jobs: &[Job], now: f64) {
        let mut scores: Vec<(f64, f64, u64, usize)> = self
            .queue
            .iter()
            .map(|&i| {
                let j = &jobs[i];
                (self.base.score(j, now), j.submit, j.id, i)
            })
            .collect();
        scores.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.2.cmp(&b.2))
        });
        let oracle: Vec<usize> = scores.iter().map(|e| e.3).collect();
        assert_eq!(
            self.queue, oracle,
            "kinetic WFP order diverged from the full re-sort oracle at now={now}"
        );
    }

    /// Removes every started job, preserving the order of the rest.
    /// One linear pass with O(1) bitset probes; the kinetic index
    /// repairs its positions and re-certifies the severed adjacencies
    /// in the same pass.
    pub fn remove_started(&mut self, started: &JobSet) {
        if !started.is_empty() {
            self.kinetic.remove_started(&mut self.queue, started);
        }
    }

    /// Extracts the queue's owned state: the discipline and the waiting
    /// indices in their current order. The kinetic index is derived,
    /// per-run scratch and is not part of the state (schema v1's
    /// `(base, queue)` pair is unchanged).
    pub fn snapshot(&self) -> QueueState {
        QueueState { base: self.base, queue: self.queue.clone() }
    }

    /// Rebuilds a queue from extracted state. The kinetic index starts
    /// dirty, so the next [`QueueManager::order`] call re-establishes
    /// any time-dependent (WFP) ordering — and rebuilds the index —
    /// exactly as the full sort would have mid-run.
    pub fn restore(state: QueueState) -> Self {
        Self { base: state.base, queue: state.queue, kinetic: KineticIndex::new() }
    }
}

/// Owned state of a [`QueueManager`] (see [`QueueManager::snapshot`]).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueueState {
    /// The ordering discipline.
    pub base: BaseScheduler,
    /// Waiting job indices in the order they were held.
    pub queue: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_workloads::Job;
    use proptest::prelude::*;

    fn jobs_from(submits: &[(f64, u64)]) -> Vec<Job> {
        submits.iter().map(|&(s, id)| Job::new(id, s, 1, 10.0, 20.0)).collect()
    }

    #[test]
    fn fcfs_incremental_insert_orders_by_submit_then_id() {
        let jobs = jobs_from(&[(5.0, 0), (1.0, 1), (5.0, 2), (0.5, 3)]);
        let mut q = QueueManager::new(BaseScheduler::Fcfs);
        for i in 0..jobs.len() {
            q.push(i, &jobs);
        }
        q.order(&jobs, 100.0);
        assert_eq!(q.as_slice(), &[3, 1, 0, 2]);
    }

    #[test]
    fn wfp_reorders_per_invocation() {
        // Equal submit; WFP favours the larger job once waiting.
        let jobs = vec![Job::new(0, 0.0, 2, 10.0, 100.0), Job::new(1, 0.0, 512, 10.0, 100.0)];
        let mut q = QueueManager::new(BaseScheduler::Wfp);
        q.push(0, &jobs);
        q.push(1, &jobs);
        q.order(&jobs, 50.0);
        assert_eq!(q.as_slice(), &[1, 0]);
    }

    #[test]
    fn remove_started_preserves_order() {
        let jobs = jobs_from(&[(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]);
        let mut q = QueueManager::new(BaseScheduler::Fcfs);
        for i in 0..jobs.len() {
            q.push(i, &jobs);
        }
        let mut started = JobSet::new();
        started.insert(1);
        started.insert(3);
        q.remove_started(&started);
        assert_eq!(q.as_slice(), &[0, 2]);
    }

    /// Satellite regression: removing a large started set from a large
    /// queue must stay linear-ish. 200k queued jobs with half of them
    /// started completes in one `retain` pass over the bitset; a
    /// quadratic membership scan (list `contains` per element) would be
    /// ~10^10 operations and blow far past the generous timed bound even
    /// on slow CI machines.
    #[test]
    fn remove_started_large_queue_is_linearish() {
        const N: usize = 200_000;
        let jobs: Vec<Job> = (0..N).map(|i| Job::new(i as u64, i as f64, 1, 10.0, 20.0)).collect();
        let mut q = QueueManager::new(BaseScheduler::Fcfs);
        for i in 0..N {
            q.push(i, &jobs); // ascending (submit, id): appends, no memmove
        }
        let mut started = JobSet::new();
        for i in (0..N).step_by(2) {
            started.insert(i);
        }
        let t0 = std::time::Instant::now();
        q.remove_started(&started);
        let elapsed = t0.elapsed();
        assert_eq!(q.len(), N / 2);
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "large-queue removal took {elapsed:?}; linear bitset pass regressed"
        );
    }

    proptest! {
        /// Satellite invariant: pushing arrivals one by one into the FCFS
        /// queue yields exactly the order a full re-sort would produce, on
        /// random queues with duplicate submits and shuffled arrival order.
        #[test]
        fn prop_fcfs_incremental_equals_full_resort(
            submits in proptest::collection::vec((0u32..50, 0u64..1000), 1..60),
        ) {
            // Dedup ids (queue entries are distinct jobs).
            let mut seen = std::collections::HashSet::new();
            let submits: Vec<(f64, u64)> = submits
                .into_iter()
                .filter(|&(_, id)| seen.insert(id))
                .map(|(s, id)| (s as f64 * 0.5, id))
                .collect();
            let jobs = jobs_from(&submits);

            let mut incremental = QueueManager::new(BaseScheduler::Fcfs);
            for i in 0..jobs.len() {
                incremental.push(i, &jobs);
            }
            incremental.order(&jobs, 1_000.0);

            let mut full: Vec<usize> = (0..jobs.len()).collect();
            BaseScheduler::Fcfs.order(&mut full, &jobs, 1_000.0);

            prop_assert_eq!(incremental.as_slice(), &full[..]);
        }

        /// Tentpole invariant (kinetic WFP queue): the incremental order
        /// must equal the full cached-score re-sort at **every**
        /// invocation of a lifelike interleaving — arrival batches
        /// (including same-instant submits), mid-queue removals (job
        /// starts), and invocations at strictly advancing times. Job
        /// parameters are drawn from tiny sets (`r ∈ {2, 3}` distinct
        /// walltimes, power-of-two node counts, submits pinned to the
        /// arrival instant) so exact score ties and bit-equal
        /// `(submit, nodes, walltime)` classes are common — the regime
        /// where certificate and tie-break handling could silently
        /// diverge from the sort's stability.
        #[test]
        fn prop_kinetic_interleaved_equals_full_resort_every_invocation(
            r in 2usize..=3,
            steps in proptest::collection::vec((0u8..6, 0usize..5, 0u32..240), 1..40),
        ) {
            const WALLS: [f64; 3] = [600.0, 3_600.0, 60.0];
            let mut jobs: Vec<Job> = Vec::new();
            let mut q = QueueManager::new(BaseScheduler::Wfp);
            let mut now = 0.0f64;
            let check = |q: &QueueManager, jobs: &[Job], now: f64| {
                let mut full: Vec<usize> = q.as_slice().to_vec();
                full.sort(); // oracle input order must not leak hints
                BaseScheduler::Wfp.order(&mut full, jobs, now);
                full
            };
            for (op, a, b) in steps {
                match op {
                    // Arrival batch: a+1 jobs submitted at this instant
                    // (same-submit ties guaranteed within the batch).
                    0 | 1 => {
                        for k in 0..=a {
                            let idx = jobs.len();
                            let nodes = 1u32 << ((b as usize + k) % 4);
                            let wall = WALLS[(b as usize + k) % r];
                            jobs.push(Job::new(idx as u64, now, nodes, wall * 0.5, wall));
                            q.push(idx, &jobs);
                        }
                    }
                    // Starts: remove a deterministic mid-queue subset.
                    2 | 3 => {
                        let mut started = JobSet::new();
                        for (p, &i) in q.as_slice().iter().enumerate() {
                            if (p + a) % 4 == 0 {
                                started.insert(i);
                            }
                        }
                        q.remove_started(&started);
                    }
                    // Invocation: advance time, order, compare to the
                    // full re-sort oracle.
                    _ => {
                        now += 1.0 + f64::from(b) * 7.0;
                        q.order(&jobs, now);
                        prop_assert_eq!(q.as_slice(), &check(&q, &jobs, now)[..]);
                    }
                }
            }
            now += 13.0;
            q.order(&jobs, now);
            prop_assert_eq!(q.as_slice(), &check(&q, &jobs, now)[..]);
        }

        /// The cached-score WFP re-sort must be the identical permutation
        /// to the recompute-in-comparator sort, including score ties
        /// (equal jobs) and submit-time ties.
        #[test]
        fn prop_wfp_cached_scores_equal_recompute_sort(
            specs in proptest::collection::vec(
                (0u32..100, 1u32..64, 1u32..40, 0u64..1000), 1..50),
            now in 100u32..5000,
        ) {
            let mut seen = std::collections::HashSet::new();
            let jobs: Vec<Job> = specs
                .into_iter()
                .filter(|&(_, _, _, id)| seen.insert(id))
                .map(|(s, nodes, wall, id)| {
                    Job::new(id, s as f64, nodes, wall as f64 * 30.0, wall as f64 * 60.0)
                })
                .collect();
            let now = now as f64;

            let mut q = QueueManager::new(BaseScheduler::Wfp);
            for i in 0..jobs.len() {
                q.push(i, &jobs);
            }
            q.order(&jobs, now);

            let mut full: Vec<usize> = (0..jobs.len()).collect();
            BaseScheduler::Wfp.order(&mut full, &jobs, now);

            prop_assert_eq!(q.as_slice(), &full[..]);
        }
    }
}
