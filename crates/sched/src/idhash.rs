//! A multiply–xorshift hasher for the integer-keyed maps on the
//! submit/finish hot path.
//!
//! Job ids and dense submission indexes are small trusted integers — the
//! ledger's running map, the id→idx map, and the completed-id set are all
//! touched once or twice per job, and SipHash (std's default, keyed for
//! HashDoS resistance) dominates those operations. Scheduler state is not
//! attacker-controlled input, so a single Fibonacci multiply with a
//! high-bit fold is sufficient dispersion for both hashbrown's low-bit
//! bucket index and its top-7-bit control tags.

use std::hash::{BuildHasherDefault, Hasher};

/// `2^64 / φ`, the classic Fibonacci-hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hasher specialized for single-integer keys; byte-slice input (e.g. a
/// derived `Hash` writing through `write`) still mixes correctly, just
/// less cheaply.
#[derive(Clone, Copy, Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PHI);
        }
        self.0 ^= self.0 >> 32;
    }

    fn write_u64(&mut self, i: u64) {
        let h = (self.0 ^ i).wrapping_mul(PHI);
        self.0 = h ^ (h >> 32);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Drop-in `BuildHasher` for `HashMap`/`HashSet` keyed by job ids or
/// dense indexes.
pub type BuildIdHasher = BuildHasherDefault<IdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_keys_disperse_in_low_and_high_bits() {
        // hashbrown masks low bits for the bucket and reads the top 7 for
        // control tags; sequential ids must not collapse in either.
        let mut low = std::collections::HashSet::new();
        let mut high = std::collections::HashSet::new();
        for i in 0..1024u64 {
            let mut h = IdHasher::default();
            h.write_u64(i);
            let v = h.finish();
            low.insert(v & 0x3FF);
            high.insert(v >> 57);
        }
        assert!(low.len() > 600, "low bits collapse: {} distinct", low.len());
        assert_eq!(high.len(), 128, "top-7-bit tags must all appear");
    }

    #[test]
    fn maps_with_the_id_hasher_behave() {
        let mut m: std::collections::HashMap<u64, usize, BuildIdHasher> =
            std::collections::HashMap::default();
        for i in 0..100 {
            assert!(m.insert(i, i as usize).is_none());
        }
        assert!(m.insert(7, 0).is_some());
        assert_eq!(m.len(), 100);
        assert_eq!(m[&42], 42);
    }
}
