//! # bbsched-sched
//!
//! The **driver-agnostic scheduler-service core** of the BBSched
//! reproduction: the six-phase scheduling invocation (base-scheduler
//! priority order, window fill, §3.1 starvation bound, multi-resource
//! policy selection, backfilling, bookkeeping) as a standalone,
//! snapshot-in/decisions-out service — the paper's "plugin for production
//! batch schedulers" (§3), no longer welded into a simulator's clock
//! loop.
//!
//! [`SchedCore`] owns the waiting queue, the allocation ledger, the
//! backfill strategy, the window/starvation state, and the selection
//! policy. A *driver* owns time: it feeds [`SchedCore::submit`] and
//! [`SchedCore::job_finished`], calls [`SchedCore::invoke`] at each
//! event instant, and applies the returned [`Decision`]s. Two drivers
//! ship today:
//!
//! * the discrete-event simulator (`bbsched-sim`) — virtual time, a
//!   completion-event heap fed by start decisions;
//! * the online replay driver ([`replay`], surfaced as `cli replay`) —
//!   real submission order from a newline-delimited JSON event stream.
//!
//! Both emit byte-identical decision streams for the same events, which
//! the driver-equivalence golden suites pin.
//!
//! ## Module map
//!
//! * [`service`] — [`SchedCore`], [`Decision`], the six-phase invocation;
//! * [`config`] — [`SchedConfig`], window sizing, backfill selection;
//! * [`queue`] — the waiting queue under the base scheduler's order
//!   (incrementally sorted for FCFS, re-scored per invocation for WFP);
//! * [`alloc`] — the allocation ledger: pool accounting with conservation
//!   checks, the incrementally maintained release order, and a
//!   generation-numbered start/finish delta log;
//! * [`backfill`] — EASY and conservative backfilling behind the
//!   [`BackfillStrategy`] trait, plus the availability-profile machinery
//!   (DESIGN.md §10);
//! * [`legacy_profile`] — the frozen rebuild-per-pass conservative path,
//!   kept as the equivalence oracle and benchmark reference;
//! * [`observer`] — the [`SchedObserver`] callbacks everything observable
//!   flows through; [`Recorder`] collects the classic [`SimResult`],
//!   [`DecisionLog`] the canonical decision stream;
//! * [`clamp`] — the capacity-clamping rule both drivers apply to
//!   submitted demands;
//! * [`replay`] — the online streaming driver;
//! * [`state`] — the explicit-state contract: [`CoreSnapshot`] and the
//!   versioned JSON wire encoding behind [`SchedCore::snapshot`],
//!   [`SchedCore::restore`], and [`SchedCore::fork`] (DESIGN.md §12);
//! * [`durability`] — the crash-safety layer: the [`Journal`]
//!   write-ahead log, rolling [`SnapshotStore`] checkpoints, the
//!   [`Driver`] trait the drivers implement, and the binary snapshot
//!   encoding negotiated alongside JSON (DESIGN.md §13).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod backfill;
pub mod base_sched;
pub mod clamp;
pub mod config;
pub mod durability;
pub mod error;
pub mod idhash;
pub mod jobset;
pub mod kinetic;
pub mod legacy_profile;
pub mod observer;
pub mod queue;
pub mod record;
pub mod replay;
pub mod service;
pub mod state;
mod tree;

pub use alloc::{AllocLedger, LedgerDelta, LedgerState, RunningJob};
pub use backfill::{
    shadow_and_leftover, AvailabilityProfile, BackfillCtx, BackfillStrategy, ConservativeBackfill,
    ConservativeState, EasyBackfill, MirrorState, ProfileState, ReleaseMirror,
};
pub use base_sched::BaseScheduler;
pub use clamp::clamp_demand;
pub use config::{BackfillAlgorithm, BackfillScope, DynamicWindow, SchedConfig};
pub use durability::{
    Checkpointer, Driver, Encoding, Journal, JournalRecovery, LoadedSnapshot, SnapshotInfo,
    SnapshotStore,
};
pub use error::SchedError;
pub use jobset::JobSet;
pub use legacy_profile::{LegacyProfile, RebuildPerPassConservative};
pub use observer::{DecisionLog, JobStart, Recorder, SchedObserver};
pub use queue::{QueueManager, QueueState};
pub use record::{JobRecord, SimResult, StartReason};
pub use replay::{JobEvent, ReplayError, ReplaySnapshot, ReplaySummary, Replayer};
pub use service::{Decision, SchedCore};
pub use state::{CoreSnapshot, PolicySnapshot};
