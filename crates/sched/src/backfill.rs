//! Backfilling: the scheduler core's hole-filling phase, as a strategy
//! family.
//!
//! The paper's experiments run **EASY** backfilling (§2.1: reserve for the
//! first blocked job only); this crate also ships **conservative**
//! backfilling (every blocked candidate gets a reservation on a
//! future-availability profile). Both are implementations of
//! [`BackfillStrategy`], invoked by [`crate::SchedCore`] once per
//! scheduling invocation after starvation forcing and policy selection;
//! plan-based disciplines in the style of Kopanski & Rzadca can slot in
//! as further implementations without touching any driver.
//!
//! A strategy sees the invocation through a [`BackfillCtx`]: the waiting
//! candidates (already scoped to window or queue by the core), the
//! blocked reservation head if the starvation phase produced one, fit
//! queries against the live pool, [`BackfillCtx::start`] to dispatch a
//! job, and [`BackfillCtx::reserve`] to publish a reservation into the
//! decision stream. `start(idx, credited)` distinguishes jobs the
//! strategy *credits* as backfilled from queue-head starts that merely
//! consumed freed capacity — the paper's `backfilled` accounting counts
//! only the former.
//!
//! This module also owns the EASY reservation math
//! ([`shadow_and_leftover`]) and the piecewise-constant
//! [`AvailabilityProfile`] behind conservative backfilling. Three layers
//! keep the conservative path off the quadratic cliff at large trace
//! sizes (DESIGN.md §10):
//!
//! * [`ReleaseMirror`] — a persistent, sorted copy of the running jobs'
//!   release schedule, kept current by replaying the allocation ledger's
//!   start/finish deltas ([`AllocLedger::deltas_since`]) instead of
//!   re-collecting and re-sorting the running set every pass;
//! * buffer-reusing profile folds — [`AvailabilityProfile`] is owned by
//!   the strategy across invocations and rebuilt in place from the
//!   mirror's already-sorted releases (no sort, no allocation); only the
//!   reservation carvings of the previous pass are discarded;
//! * a **skyline index** — per-resource suffix minima over the profile's
//!   segments, so `fits_interval`/`earliest_start` stop scanning every
//!   segment: boundaries before the probe are skipped by binary search,
//!   and the scan short-circuits as soon as the suffix minimum fits.

use crate::alloc::{AllocLedger, LedgerDelta, RunningJob};
use crate::error::SchedError;
use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;
use serde::{Deserialize, Serialize};

/// Tolerance for "finishes before the shadow time" comparisons.
pub(crate) const TIME_EPS: f64 = 1e-6;

/// EASY reservation math: the *shadow time* at which `head` could start if
/// nothing new ran past it (walltime estimates of running jobs, as a real
/// scheduler would use), and the *leftover* resources at that instant
/// beyond the head's claim. Anything fitting inside the leftover can run
/// arbitrarily long without delaying the head.
pub fn shadow_and_leftover(ledger: &AllocLedger, head: &JobDemand, now: f64) -> (f64, PoolState) {
    let pool = ledger.pool();
    if pool.fits(head) {
        let mut leftover = *pool;
        let _ = leftover.alloc(head);
        return (now, leftover);
    }
    // Walk the release schedule in (est_end, index) order — maintained
    // incrementally by the ledger, so no per-call rebuild or sort.
    let mut future = *pool;
    for (_, r) in ledger.release_order() {
        future.free(&r.demand, r.assignment);
        if future.fits(head) {
            let mut leftover = future;
            let _ = leftover.alloc(head);
            return (r.est_end, leftover);
        }
    }
    // The head can never fit — impossible once demands are clamped to
    // capacity; be safe in release builds anyway.
    debug_assert!(false, "unschedulable head survived clamping");
    (f64::INFINITY, PoolState::cpu_bb(0, 0.0))
}

/// One invocation's view of the scheduler core, handed to a
/// [`BackfillStrategy`].
///
/// Constructed by [`crate::SchedCore::invoke`]; the mutable surface is
/// exactly [`BackfillCtx::start`] and [`BackfillCtx::reserve`], so a
/// strategy cannot corrupt accounting — every dispatch goes through the
/// allocation ledger and the observers.
pub struct BackfillCtx<'e, 'o> {
    pub(crate) now: f64,
    pub(crate) waiting: &'e [usize],
    pub(crate) blocked_head: Option<usize>,
    pub(crate) max_scan: usize,
    pub(crate) core: &'e mut crate::service::CoreState<'o>,
}

impl<'e> BackfillCtx<'e, '_> {
    /// The invocation's simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Candidate job indices in priority order (window- or queue-scoped
    /// per [`crate::BackfillScope`], jobs already started this invocation
    /// filtered out at scoping time).
    pub fn waiting(&self) -> &'e [usize] {
        self.waiting
    }

    /// The starved job that could not start and owns the reservation, if
    /// the starvation phase produced one.
    pub fn blocked_head(&self) -> Option<usize> {
        self.blocked_head
    }

    /// Maximum candidates the strategy may examine.
    pub fn max_scan(&self) -> usize {
        self.max_scan
    }

    /// Whether job `idx` already started in this invocation.
    pub fn is_started(&self, idx: usize) -> bool {
        self.core.started.contains(idx)
    }

    /// The capacity-clamped demand of job `idx`.
    pub fn demand(&self, idx: usize) -> JobDemand {
        self.core.demands[idx]
    }

    /// The requested walltime of job `idx` (seconds, as submitted).
    pub fn walltime(&self, idx: usize) -> f64 {
        self.core.jobs[idx].walltime
    }

    /// The live free state.
    pub fn pool(&self) -> &PoolState {
        self.core.ledger.pool()
    }

    /// Whether job `idx` fits the free state right now.
    pub fn fits_now(&self, idx: usize) -> bool {
        self.core.ledger.fits(&self.core.demands[idx])
    }

    /// Read access to the allocation ledger (release order, delta log).
    pub fn ledger(&self) -> &AllocLedger {
        &self.core.ledger
    }

    /// Shadow time and leftover state for `head_idx` (see
    /// [`shadow_and_leftover`]).
    pub fn shadow_and_leftover(&self, head_idx: usize) -> (f64, PoolState) {
        shadow_and_leftover(&self.core.ledger, &self.core.demands[head_idx], self.now)
    }

    /// The running jobs' `(est_end, demand, assignment)` release schedule
    /// in deterministic `(est_end, index)` order — what
    /// [`AvailabilityProfile::new`] consumes. Allocates a fresh list per
    /// call; incremental strategies should maintain a [`ReleaseMirror`]
    /// instead.
    pub fn release_schedule(&self) -> Vec<(f64, JobDemand, NodeAssignment)> {
        self.core.ledger.release_schedule()
    }

    /// Starts job `idx` now with [`crate::StartReason::Backfill`].
    ///
    /// `credited` controls the run's `backfilled` counter: pass `true`
    /// for genuine backfill moves (the job jumped ahead using a hole),
    /// `false` for queue-head starts that simply consumed freed capacity.
    ///
    /// # Panics
    /// Panics if the job does not fit the free state (strategies must
    /// check first) or already started.
    pub fn start(&mut self, idx: usize, credited: bool) {
        self.core.start_job(idx, self.now, crate::record::StartReason::Backfill);
        if credited {
            self.core.backfill_credit += 1;
        }
    }

    /// Publishes a [`crate::Decision::Reserve`] for job `idx` at time
    /// `at` into the invocation's decision stream. Purely observational:
    /// the reservation's capacity bookkeeping stays inside the strategy;
    /// the next invocation recomputes it from scratch.
    pub fn reserve(&mut self, idx: usize, at: f64) {
        self.core.note_reservation(idx, at);
    }
}

/// A pluggable backfilling discipline.
///
/// Called once per scheduling invocation, after the starvation and policy
/// phases. The strategy may start any not-yet-started candidate from
/// [`BackfillCtx::waiting`] (plus the blocked head), subject to its own
/// no-delay rules; the engine handles all bookkeeping around it. The
/// strategy object lives as long as the engine, so implementations may
/// keep incremental state between passes (conservative backfilling keeps
/// its availability profile).
pub trait BackfillStrategy: Send {
    /// Display name (observer callbacks carry it).
    fn name(&self) -> &'static str;

    /// Runs one backfill pass.
    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>);

    /// State this strategy carries across invocations as a serde value
    /// tree, or `None` when it is stateless (EASY, the rebuild-per-pass
    /// reference). Stateful strategies override this together with
    /// [`BackfillStrategy::restore_state`].
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }

    /// Injects state exported by [`BackfillStrategy::snapshot_state`],
    /// validating it against the restored `ledger`. The default accepts
    /// nothing — handing persistent state to a stateless strategy is a
    /// corrupt snapshot worth diagnosing.
    fn restore_state(
        &mut self,
        state: &serde::Value,
        ledger: &AllocLedger,
    ) -> Result<(), SchedError> {
        let _ = (state, ledger);
        Err(SchedError::CorruptSnapshot(format!(
            "backfill strategy `{}` carries no cross-invocation state",
            self.name()
        )))
    }
}

/// EASY backfilling (§2.1, the paper's choice): reserve for the first
/// blocked job only; a candidate may start now if it finishes before the
/// head's shadow time or fits inside the head's leftover.
#[derive(Clone, Copy, Debug, Default)]
pub struct EasyBackfill;

impl BackfillStrategy for EasyBackfill {
    fn name(&self) -> &'static str {
        "EASY"
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        let waiting = ctx.waiting();
        // Start any fitting head outright (covers policies that left a
        // fitting job behind and the queue-front after backfill frees);
        // stop at the first job that does not fit — it becomes the
        // reservation head. A starved blocked job owns the reservation
        // regardless of queue position.
        let mut head: Option<usize> = None;
        let mut cursor = 0usize;
        while cursor < waiting.len() {
            let idx = waiting[cursor];
            if let Some(b) = ctx.blocked_head() {
                head = Some(b);
                break;
            }
            if ctx.is_started(idx) {
                cursor += 1;
                continue;
            }
            if ctx.fits_now(idx) {
                // Not credited: the queue head starting on freed capacity
                // is ordinary dispatch, not a backfill move.
                ctx.start(idx, false);
                cursor += 1;
            } else {
                head = Some(idx);
                break;
            }
        }

        let Some(head_idx) = head else { return };
        let (shadow, mut leftover) = ctx.shadow_and_leftover(head_idx);
        ctx.reserve(head_idx, shadow);
        for (scanned, &idx) in waiting.iter().enumerate() {
            if scanned >= ctx.max_scan() {
                break;
            }
            if ctx.is_started(idx) || idx == head_idx {
                continue;
            }
            let d = ctx.demand(idx);
            if !ctx.pool().fits(&d) {
                continue;
            }
            let ends_before_shadow = ctx.now() + ctx.walltime(idx) <= shadow + TIME_EPS;
            if ends_before_shadow || leftover.fits(&d) {
                if !ends_before_shadow {
                    let _ = leftover.alloc(&d);
                }
                ctx.start(idx, true);
            }
        }
    }
}

/// Conservative backfilling: every blocked candidate receives a
/// reservation on a future-availability profile; a job starts now only if
/// it delays none of the reservations ahead of it. Stronger fairness,
/// fewer backfill opportunities.
///
/// The strategy is stateful: it owns a [`ReleaseMirror`] synced from the
/// ledger's delta log and a persistent [`AvailabilityProfile`] refolded in
/// place each pass, so no pass allocates or sorts. Schedules are
/// bit-identical to the rebuild-per-pass reference
/// ([`crate::legacy_profile::RebuildPerPassConservative`]) — proven by the
/// golden-equivalence suite.
#[derive(Clone, Debug, Default)]
pub struct ConservativeBackfill {
    mirror: ReleaseMirror,
    profile: AvailabilityProfile,
    /// Per-pass candidate order scratch (blocked head first).
    ordered: Vec<usize>,
}

impl ConservativeBackfill {
    /// Extracts the strategy's owned cross-invocation state: the release
    /// mirror and the persistent availability profile (with its skyline
    /// watermark). The per-pass candidate ordering is scratch and is not
    /// part of the state.
    pub fn snapshot(&self) -> ConservativeState {
        ConservativeState { mirror: self.mirror.snapshot(), profile: self.profile.snapshot() }
    }

    /// Rebuilds the strategy from extracted state, validating the mirror
    /// against the restored `ledger` (see [`ReleaseMirror::restore`]) and
    /// the profile's shape. Corrupt state fails with a typed
    /// [`SchedError::CorruptSnapshot`] instead of panicking mid-pass.
    pub fn restore(state: ConservativeState, ledger: &AllocLedger) -> Result<Self, SchedError> {
        Ok(Self {
            mirror: ReleaseMirror::restore(state.mirror, ledger)?,
            profile: AvailabilityProfile::restore(state.profile)?,
            ordered: Vec::new(),
        })
    }
}

impl BackfillStrategy for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        Some(serde::Serialize::to_value(&self.snapshot()))
    }

    fn restore_state(
        &mut self,
        state: &serde::Value,
        ledger: &AllocLedger,
    ) -> Result<(), SchedError> {
        let state: ConservativeState = serde::Deserialize::from_value(state).map_err(|e| {
            SchedError::CorruptSnapshot(format!("conservative backfill state: {e}"))
        })?;
        *self = Self::restore(state, ledger)?;
        Ok(())
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        // Apply the starts/finishes since the previous pass to the sorted
        // release mirror, then refold the profile over the reused buffers
        // (dropping the previous pass's reservation carvings — the only
        // segments not derivable from the mirror).
        self.mirror.sync(ctx.ledger());
        self.mirror.fold_into(ctx.now(), *ctx.pool(), &mut self.profile);
        // Reservations for everyone; the starved blocked job (if any)
        // reserves first.
        self.ordered.clear();
        if let Some(b) = ctx.blocked_head() {
            self.ordered.push(b);
        }
        self.ordered
            .extend(ctx.waiting().iter().copied().filter(|&i| Some(i) != ctx.blocked_head()));
        for pos in 0..self.ordered.len() {
            if pos >= ctx.max_scan() {
                break;
            }
            let idx = self.ordered[pos];
            if ctx.is_started(idx) {
                continue;
            }
            let d = ctx.demand(idx);
            let walltime = ctx.walltime(idx).max(1.0);
            let t = self.profile.earliest_start(&d, ctx.now(), walltime);
            if t <= ctx.now() + TIME_EPS && ctx.pool().fits(&d) {
                ctx.start(idx, true);
                // Consume from the profile's "now" segments too.
                self.profile.reserve(&d, t, walltime);
            } else if t.is_finite() {
                self.profile.reserve(&d, t, walltime);
                ctx.reserve(idx, t);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The persistent release mirror feeding the profile fold.
// ---------------------------------------------------------------------------

/// One running job's release, as mirrored from the ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Release {
    est_end: f64,
    idx: usize,
    demand: JobDemand,
    asn: NodeAssignment,
}

/// A persistent, `(est_end, index)`-sorted copy of the ledger's release
/// schedule, kept current by replaying [`AllocLedger::deltas_since`]
/// between passes (falling back to a full resync if the delta log was
/// truncated). This is the "apply start/finish deltas instead of
/// rebuilding" half of the incremental profile; the fold itself is
/// [`ReleaseMirror::fold_into`].
#[derive(Clone, Debug, Default)]
pub struct ReleaseMirror {
    releases: Vec<Release>,
    /// Ledger generation the mirror reflects (`None` before first sync).
    synced: Option<u64>,
}

impl ReleaseMirror {
    /// An empty mirror (syncs fully on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mirrored releases (= running jobs at last sync).
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Brings the mirror up to date with `ledger` by applying the deltas
    /// logged since the last sync (O(deltas · log n) search plus memmove),
    /// or by a full resynchronization when the log has been truncated.
    pub fn sync(&mut self, ledger: &AllocLedger) {
        let applied = match self.synced {
            Some(gen) => match ledger.deltas_since(gen) {
                Some(deltas) => {
                    let mut ok = true;
                    for delta in deltas {
                        match *delta {
                            LedgerDelta::Start { idx, entry } => self.insert(idx, &entry),
                            LedgerDelta::Finish { idx, est_end } => {
                                if self.remove(idx, est_end).is_err() {
                                    // Desynchronized mirror (a finish for a
                                    // release it never saw): self-heal with
                                    // a full resync. Restore paths surface
                                    // this as a typed error instead — see
                                    // [`ConservativeBackfill::restore`].
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    ok
                }
                None => false,
            },
            None => false,
        };
        if !applied {
            self.resync_from(ledger);
        }
        self.synced = Some(ledger.generation());
        debug_assert!(
            self.releases.len() == ledger.running_count()
                && self
                    .releases
                    .iter()
                    .zip(ledger.release_order())
                    .all(|(m, (idx, r))| m.idx == idx && m.est_end == r.est_end),
            "release mirror desynchronized from the ledger"
        );
    }

    fn insert(&mut self, idx: usize, entry: &RunningJob) {
        let pos = self
            .releases
            .partition_point(|r| r.est_end.total_cmp(&entry.est_end).then(r.idx.cmp(&idx)).is_lt());
        self.releases.insert(
            pos,
            Release { est_end: entry.est_end, idx, demand: entry.demand, asn: entry.assignment },
        );
    }

    fn remove(&mut self, idx: usize, est_end: f64) -> Result<(), SchedError> {
        let pos = self
            .releases
            .binary_search_by(|r| r.est_end.total_cmp(&est_end).then(r.idx.cmp(&idx)))
            .map_err(|_| {
                SchedError::CorruptSnapshot(format!(
                    "mirror finish for job index {idx} (est_end {est_end}), which it never saw"
                ))
            })?;
        self.releases.remove(pos);
        Ok(())
    }

    /// Rebuilds the mirror wholesale from the ledger's release order.
    fn resync_from(&mut self, ledger: &AllocLedger) {
        self.releases.clear();
        self.releases.extend(ledger.release_order().map(|(idx, r)| Release {
            est_end: r.est_end,
            idx,
            demand: r.demand,
            asn: r.assignment,
        }));
    }

    /// Extracts the mirror's owned state: the sorted releases and the
    /// ledger generation they reflect.
    pub fn snapshot(&self) -> MirrorState {
        MirrorState {
            releases: self.releases.iter().map(|r| (r.est_end, r.idx, r.demand, r.asn)).collect(),
            synced: self.synced,
        }
    }

    /// Rebuilds a mirror from extracted state, *verbatim*, and validates
    /// it against the restored `ledger`: releases must be strictly
    /// `(est_end, index)` sorted, and replaying the ledger's deltas from
    /// the mirrored generation (on a probe copy — the restored mirror
    /// keeps its recorded lag, so restore is a fixed point of
    /// [`ReleaseMirror::snapshot`]) must land exactly on the ledger's
    /// release order. A mirror that desynchronizes during that replay —
    /// the condition the live path self-heals by resyncing — is reported
    /// here as a typed [`SchedError::CorruptSnapshot`] instead.
    pub fn restore(state: MirrorState, ledger: &AllocLedger) -> Result<Self, SchedError> {
        let releases: Vec<Release> = state
            .releases
            .iter()
            .map(|&(est_end, idx, demand, asn)| Release { est_end, idx, demand, asn })
            .collect();
        for w in releases.windows(2) {
            if !w[0].est_end.total_cmp(&w[1].est_end).then(w[0].idx.cmp(&w[1].idx)).is_lt() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "mirror releases out of (est_end, index) order at job index {}",
                    w[1].idx
                )));
            }
        }
        let mirror = Self { releases, synced: state.synced };
        // Strict replay on a probe copy: every delta must apply cleanly
        // and the result must equal the ledger's live release order. A
        // truncated delta log leaves nothing to verify incrementally (the
        // next pass will full-resync, exactly as the uninterrupted run
        // would have).
        let mut probe = mirror.clone();
        match probe.synced {
            Some(gen) => {
                if let Some(deltas) = ledger.deltas_since(gen) {
                    for delta in deltas {
                        match *delta {
                            LedgerDelta::Start { idx, entry } => probe.insert(idx, &entry),
                            LedgerDelta::Finish { idx, est_end } => probe.remove(idx, est_end)?,
                        }
                    }
                    if probe.releases.len() != ledger.running_count()
                        || !probe
                            .releases
                            .iter()
                            .zip(ledger.release_order())
                            .all(|(m, (idx, r))| m.idx == idx && m.est_end == r.est_end)
                    {
                        return Err(SchedError::CorruptSnapshot(
                            "mirror disagrees with the ledger's release order".into(),
                        ));
                    }
                }
            }
            None => {
                if !mirror.releases.is_empty() {
                    return Err(SchedError::CorruptSnapshot(
                        "mirror holds releases but records no synced generation".into(),
                    ));
                }
            }
        }
        Ok(mirror)
    }

    /// Refolds `profile` in place from the mirrored releases: origin at
    /// `now` with the live free state `pool`, one step per release. Same
    /// fold — bit for bit — as [`AvailabilityProfile::new`] over
    /// [`AllocLedger::release_schedule`], without the sort or the
    /// allocations.
    pub fn fold_into(&self, now: f64, pool: PoolState, profile: &mut AvailabilityProfile) {
        profile.rebuild_from_sorted(
            now,
            pool,
            self.releases.iter().map(|r| (r.est_end, r.demand, r.asn)),
        );
    }
}

// ---------------------------------------------------------------------------
// Future resource-availability profiles, the machinery behind conservative
// backfilling (formerly `crate::profile`).
// ---------------------------------------------------------------------------

/// A piecewise-constant view of free resources from "now" to infinity.
///
/// Built from the running jobs' estimated completions and updated as
/// reservations are placed. The profile tracks every resource the pool
/// registers — nodes, shared burst buffer, heterogeneous per-node flavour
/// pools, and any extra pooled resources. Per-node assignments within a
/// future segment use the same greedy smallest-sufficient-flavour rule as
/// live allocation; because reservations are capacity bookkeeping (not
/// placements), per-segment re-assignment is the standard conservative
/// approximation.
///
/// Invariant: `times` is strictly increasing, `times[0]` is the profile's
/// origin ("now"), and `states[i]` holds on `[times[i], times[i+1])`
/// (the last state holds forever).
///
/// Queries are indexed: boundaries before a probe are skipped by binary
/// search, and a **skyline** of per-resource suffix minima
/// ([`PoolState::component_min`] folded from the tail) lets a scan accept
/// as soon as everything from the current segment onward fits. The skyline
/// is rebuilt with the fold and partially invalidated by reservations
/// (`skyline_clean_from`); queries fall back to exact per-segment checks
/// inside the invalidated prefix, so results never depend on the index.
#[derive(Clone, Debug, Default)]
pub struct AvailabilityProfile {
    times: Vec<f64>,
    states: Vec<PoolState>,
    /// `skyline[i]` = component-wise minimum of `states[i..]`; valid for
    /// indices `>= skyline_clean_from`.
    skyline: Vec<PoolState>,
    skyline_clean_from: usize,
}

impl PartialEq for AvailabilityProfile {
    /// Profiles are equal when their piecewise-constant functions are:
    /// same boundaries, same states. The skyline is an acceleration index
    /// and takes no part in equality.
    fn eq(&self, other: &Self) -> bool {
        self.times == other.times && self.states == other.states
    }
}

impl AvailabilityProfile {
    /// Builds the profile from the current free state and the estimated
    /// completion times of running jobs. `releases` is a list of
    /// `(est_end, demand, assignment)` tuples; order does not matter.
    pub fn new(
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) -> Self {
        let mut rel: Vec<(f64, JobDemand, NodeAssignment)> =
            releases.into_iter().map(|(t, d, asn)| (t.max(now), d, asn)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut profile = Self::default();
        profile.rebuild_from_sorted(now, pool, rel);
        profile
    }

    /// Refolds the profile in place from releases **already sorted**
    /// ascending by time (ties in any deterministic order; times below
    /// `now` are clamped to it, which preserves sortedness). Reuses the
    /// internal buffers — no allocation once capacity is warm — and
    /// rebuilds the skyline index. This is the incremental path's fold:
    /// bit-identical to [`AvailabilityProfile::new`] on the same releases.
    ///
    /// # Panics
    /// Debug-panics if the releases are not sorted.
    pub fn rebuild_from_sorted(
        &mut self,
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) {
        self.times.clear();
        self.states.clear();
        self.times.push(now);
        self.states.push(pool);
        let mut prev = f64::NEG_INFINITY;
        for (t, d, asn) in releases {
            let t = t.max(now);
            debug_assert!(t >= prev, "rebuild_from_sorted wants ascending releases");
            prev = t;
            let last = *self.states.last().expect("profile never empty");
            let mut next = last;
            next.free(&d, asn);
            if (t - *self.times.last().unwrap()).abs() < 1e-12 {
                *self.states.last_mut().unwrap() = next;
            } else {
                self.times.push(t);
                self.states.push(next);
            }
        }
        self.rebuild_skyline();
    }

    /// Rebuilds the suffix-minima index over the current segments.
    fn rebuild_skyline(&mut self) {
        let n = self.states.len();
        self.skyline.clear();
        self.skyline.resize(n, self.states[n - 1]);
        for i in (0..n - 1).rev() {
            let folded = self.states[i].component_min(&self.skyline[i + 1]);
            self.skyline[i] = folded;
        }
        self.skyline_clean_from = 0;
    }

    /// Number of segments (diagnostic).
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// The boundary times (diagnostic / equivalence tests).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The per-segment states (diagnostic / equivalence tests).
    pub fn states(&self) -> &[PoolState] {
        &self.states
    }

    /// Free state at time `t` (clamped to the profile's origin).
    pub fn state_at(&self, t: f64) -> PoolState {
        let idx = match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.states[idx]
    }

    /// Whether the skyline entry at `i` is valid and fits `d` — meaning
    /// every segment from `i` onward fits `d`, so a scan can stop.
    #[inline]
    fn tail_fits(&self, i: usize, d: &JobDemand) -> bool {
        i >= self.skyline_clean_from && self.skyline[i].fits(d)
    }

    /// Whether `d` fits everywhere on `[start, start + duration)`.
    ///
    /// Boundaries at or before `start` are skipped by binary search; the
    /// in-range scan short-circuits once the suffix minimum fits.
    pub fn fits_interval(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        if !self.state_at(start).fits(d) {
            return false;
        }
        // First boundary strictly greater than `start`.
        let mut i = self.times.partition_point(|t| *t <= start);
        while i < self.times.len() && self.times[i] < end {
            if self.tail_fits(i, d) {
                return true;
            }
            if !self.states[i].fits(d) {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Earliest time `>= from` at which `d` fits for `duration`. Candidate
    /// instants are `from` and the profile's breakpoints (free resources
    /// only ever *increase* at breakpoints built from releases, but
    /// reservations can carve arbitrary shapes, so every breakpoint is a
    /// candidate). Returns `f64::INFINITY` if it never fits.
    ///
    /// Implemented as a single forward walk: when a segment inside the
    /// candidate's interval does not fit, every candidate up to that
    /// segment's boundary is doomed (its interval would contain the
    /// blocking segment), so the walk jumps straight to the next fitting
    /// breakpoint. Each segment is visited at most once — O(S) worst case
    /// instead of the O(S²) try-every-breakpoint scan — and the skyline
    /// accepts in O(1) once the remaining tail fits.
    pub fn earliest_start(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        let n = self.times.len();
        let mut cand = from;
        // First boundary strictly after the candidate.
        let mut i = self.times.partition_point(|t| *t <= from);
        if !self.state_at(from).fits(d) {
            // `from` fails in its own segment: advance to the first
            // breakpoint whose segment fits.
            while i < n && !self.states[i].fits(d) {
                i += 1;
            }
            if i == n {
                return f64::INFINITY;
            }
            cand = self.times[i];
            i += 1;
        }
        // Invariant: the segment containing `cand` fits, and every
        // boundary in (cand, times[i]) — none so far — fits.
        'candidate: loop {
            let end = cand + duration;
            while i < n && self.times[i] < end {
                if self.tail_fits(i, d) {
                    return cand;
                }
                if !self.states[i].fits(d) {
                    // Segment i blocks every candidate in (cand, times[i]]
                    // (their intervals all contain it, and times[i]'s own
                    // segment does not fit). Jump to the next fitting
                    // breakpoint.
                    i += 1;
                    while i < n && !self.states[i].fits(d) {
                        i += 1;
                    }
                    if i == n {
                        return f64::INFINITY;
                    }
                    cand = self.times[i];
                    i += 1;
                    continue 'candidate;
                }
                i += 1;
            }
            return cand;
        }
    }

    /// Carves a reservation for `d` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics (debug) if the demand does not fit the interval.
    pub fn reserve(&mut self, d: &JobDemand, start: f64, duration: f64) {
        debug_assert!(self.fits_interval(d, start, duration), "reserve without fit check");
        let end = start + duration;
        self.split_at(start);
        self.split_at(end);
        // First segment overlapping the reservation: the one containing
        // `start` (everything before it would fail the `seg_end <= start`
        // test anyway — skip it by binary search).
        let first = self.times.partition_point(|t| *t <= start).saturating_sub(1);
        let mut dirty_end = self.skyline_clean_from;
        for i in first..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= end {
                break;
            }
            let seg_end = self.times.get(i + 1).copied().unwrap_or(f64::INFINITY);
            if seg_end <= start {
                continue;
            }
            // Segment overlaps the reservation: subtract.
            let state = &mut self.states[i];
            debug_assert!(state.fits(d));
            let _ = state.alloc(d);
            dirty_end = dirty_end.max(i + 1);
        }
        // Suffix minima at or before a mutated segment may now overstate
        // availability; invalidate them (queries fall back to exact
        // per-segment checks there).
        self.skyline_clean_from = dirty_end;
    }

    /// Extracts the profile's owned state: boundaries, per-segment states,
    /// and the skyline watermark. The skyline values themselves are an
    /// index and are rebuilt on restore; entries at or beyond the
    /// watermark come out identical to the maintained ones (they are
    /// suffix minima over unmutated segments), and entries below it are
    /// never read, so queries answer exactly as the original would have.
    pub fn snapshot(&self) -> ProfileState {
        ProfileState {
            times: self.times.clone(),
            states: self.states.clone(),
            skyline_clean_from: self.skyline_clean_from,
        }
    }

    /// Rebuilds a profile from extracted state, validating shape: equal
    /// `times`/`states` lengths, strictly increasing finite boundaries,
    /// and a watermark within range.
    pub fn restore(state: ProfileState) -> Result<Self, SchedError> {
        if state.times.is_empty() && state.states.is_empty() && state.skyline_clean_from == 0 {
            // A never-folded profile (fresh strategy, no pass yet).
            return Ok(Self::default());
        }
        if state.times.is_empty() || state.times.len() != state.states.len() {
            return Err(SchedError::CorruptSnapshot(format!(
                "profile has {} boundaries for {} states",
                state.times.len(),
                state.states.len()
            )));
        }
        if state.times.iter().any(|t| !t.is_finite())
            || state.times.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(SchedError::CorruptSnapshot(
                "profile boundaries must be finite and strictly increasing".into(),
            ));
        }
        if state.skyline_clean_from > state.times.len() {
            return Err(SchedError::CorruptSnapshot(format!(
                "profile skyline watermark {} exceeds {} segments",
                state.skyline_clean_from,
                state.times.len()
            )));
        }
        let mut profile = Self {
            times: state.times,
            states: state.states,
            skyline: Vec::new(),
            skyline_clean_from: 0,
        };
        profile.rebuild_skyline();
        profile.skyline_clean_from = state.skyline_clean_from;
        Ok(profile)
    }

    /// Ensures `t` is a breakpoint (no-op if it already is or precedes the
    /// origin; infinite times are ignored).
    fn split_at(&mut self, t: f64) {
        if !t.is_finite() || t <= self.times[0] {
            return;
        }
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                let state = self.states[i - 1];
                self.times.insert(i, t);
                self.states.insert(i, state);
                // Keep the skyline index-aligned. Entries before `i` are
                // unchanged (the duplicate state was already folded into
                // them via the original segment); the new entry folds the
                // duplicate with the old suffix at `i`.
                if i < self.skyline_clean_from {
                    // Inside the invalidated prefix: value is never read.
                    self.skyline.insert(i, state);
                    self.skyline_clean_from += 1;
                } else {
                    let v = match self.skyline.get(i) {
                        Some(next) => state.component_min(next),
                        None => state,
                    };
                    self.skyline.insert(i, v);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Owned state types for the snapshot/restore contract (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Owned state of a [`ReleaseMirror`] (see [`ReleaseMirror::snapshot`]):
/// the `(est_end, index, demand, assignment)` releases in sorted order and
/// the ledger generation they reflect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MirrorState {
    /// Mirrored releases, `(est_end, index)`-sorted.
    pub releases: Vec<(f64, usize, JobDemand, NodeAssignment)>,
    /// Ledger generation the releases reflect (`None` before first sync).
    pub synced: Option<u64>,
}

/// Owned state of an [`AvailabilityProfile`] (see
/// [`AvailabilityProfile::snapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileState {
    /// Segment boundaries, strictly increasing; `times[0]` is the origin.
    pub times: Vec<f64>,
    /// Free state on `[times[i], times[i+1])`.
    pub states: Vec<PoolState>,
    /// Skyline validity watermark: suffix-minima entries before this index
    /// are invalidated by reservation carvings.
    pub skyline_clean_from: usize,
}

/// Owned cross-invocation state of a [`ConservativeBackfill`] strategy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConservativeState {
    /// The persistent release mirror.
    pub mirror: MirrorState,
    /// The persistent availability profile.
    pub profile: ProfileState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, bb: f64) -> JobDemand {
        JobDemand::cpu_bb(nodes, bb)
    }

    fn release(t: f64, nodes: u32, bb: f64) -> (f64, JobDemand, NodeAssignment) {
        (t, d(nodes, bb), NodeAssignment::two_tier(0, nodes))
    }

    #[test]
    fn shadow_math_uses_ledger_release_order() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        ledger.start(0, d(6, 0.0), 100.0);
        ledger.start(1, d(4, 50.0), 40.0);
        // Head needs 8 nodes: free now 0; at t=40, 4 nodes; at t=100, 10.
        let (shadow, leftover) = shadow_and_leftover(&ledger, &d(8, 0.0), 5.0);
        assert_eq!(shadow, 100.0);
        assert_eq!(leftover.nodes(), 2);
        // Head fits now -> shadow is "now".
        ledger.finish(0);
        let (shadow, _) = shadow_and_leftover(&ledger, &d(5, 0.0), 5.0);
        assert_eq!(shadow, 5.0);
    }

    #[test]
    fn profile_accumulates_releases() {
        let pool = PoolState::cpu_bb(4, 10.0); // 4 free now
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![release(10.0, 4, 20.0), release(20.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 3);
        assert_eq!(p.state_at(0.0).nodes(), 4);
        assert_eq!(p.state_at(10.0).nodes(), 8);
        assert_eq!(p.state_at(25.0).nodes(), 10);
        assert_eq!(p.state_at(25.0).bb_gb(), 30.0);
    }

    #[test]
    fn simultaneous_releases_merge() {
        let p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(0, 0.0),
            vec![release(5.0, 1, 0.0), release(5.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 2);
        assert_eq!(p.state_at(5.0).nodes(), 3);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 6, 0.0)]);
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 100.0), 0.0);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 100.0), 10.0);
        assert_eq!(p.earliest_start(&d(50, 0.0), 0.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn reservation_blocks_the_interval() {
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(4, 10.0), vec![release(10.0, 4, 0.0)]);
        // Reserve all 4 current nodes for [0, 30).
        p.reserve(&d(4, 5.0), 0.0, 30.0);
        assert_eq!(p.state_at(0.0).nodes(), 0);
        assert_eq!(p.state_at(15.0).nodes(), 4, "release at 10 still counted");
        assert_eq!(p.state_at(30.0).nodes(), 8, "reservation ends at 30");
        // A 4-node job now has to wait until t=10.
        assert_eq!(p.earliest_start(&d(4, 0.0), 0.0, 5.0), 10.0);
    }

    #[test]
    fn fits_interval_checks_interior_boundaries() {
        let mut p = AvailabilityProfile::new(0.0, PoolState::cpu_bb(8, 0.0), vec![]);
        // Reservation in the middle of a candidate interval.
        p.reserve(&d(6, 0.0), 10.0, 10.0);
        assert!(p.fits_interval(&d(4, 0.0), 0.0, 10.0));
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 15.0), "collides with [10,20)");
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }

    #[test]
    fn ssd_pools_tracked_through_profile() {
        let pool = PoolState::with_ssd(1, 1, 100.0);
        let big = JobDemand::cpu_bb_ssd(1, 0.0, 200.0);
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![(5.0, JobDemand::cpu_bb_ssd(2, 0.0, 200.0), NodeAssignment::two_tier(0, 2))],
        );
        // One 256 node free now; three at t=5.
        assert!(p.fits_interval(&big, 0.0, 1.0));
        let three = JobDemand::cpu_bb_ssd(3, 0.0, 200.0);
        assert_eq!(p.earliest_start(&three, 0.0, 1.0), 5.0);
    }

    #[test]
    fn conservative_chain_of_reservations() {
        // Classic scenario: 10 nodes; running job frees at t=10.
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 8, 0.0)]);
        // Head job needs 10 nodes -> reserved at t=10 for 20.
        let head = d(10, 0.0);
        let t = p.earliest_start(&head, 0.0, 20.0);
        assert_eq!(t, 10.0);
        p.reserve(&head, t, 20.0);
        // Second job (2 nodes, long): can start now ONLY if it ends by 10.
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 5.0), 0.0);
        assert_eq!(
            p.earliest_start(&d(2, 0.0), 0.0, 50.0),
            30.0,
            "long job must queue behind the head's reservation"
        );
    }

    #[test]
    fn mirror_tracks_ledger_incrementally() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(100, 1_000.0));
        let mut mirror = ReleaseMirror::new();
        mirror.sync(&ledger);
        assert!(mirror.is_empty());
        ledger.start(4, d(10, 50.0), 40.0);
        ledger.start(2, d(5, 0.0), 10.0);
        mirror.sync(&ledger);
        assert_eq!(mirror.len(), 2);
        ledger.finish(2);
        ledger.start(7, d(1, 0.0), 25.0);
        mirror.sync(&ledger);
        // Mirror order matches the ledger's (est_end, idx) order.
        let order: Vec<usize> = mirror.releases.iter().map(|r| r.idx).collect();
        assert_eq!(order, vec![7, 4]);
    }

    #[test]
    fn mirror_fold_equals_from_scratch_profile() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 500.0));
        let mut mirror = ReleaseMirror::new();
        let mut profile = AvailabilityProfile::default();
        ledger.start(0, d(8, 120.0), 90.0);
        ledger.start(1, d(16, 0.0), 30.0);
        ledger.start(2, d(4, 60.0), 90.0);
        mirror.sync(&ledger);
        mirror.fold_into(5.0, *ledger.pool(), &mut profile);
        let fresh = AvailabilityProfile::new(5.0, *ledger.pool(), ledger.release_schedule());
        assert_eq!(profile, fresh);
        // Reservations carved into the working profile vanish at the next
        // fold; only ledger deltas persist.
        profile.reserve(&d(30, 0.0), 30.0, 20.0);
        assert_ne!(profile, fresh);
        ledger.finish(1);
        mirror.sync(&ledger);
        mirror.fold_into(12.0, *ledger.pool(), &mut profile);
        let fresh = AvailabilityProfile::new(12.0, *ledger.pool(), ledger.release_schedule());
        assert_eq!(profile, fresh);
    }

    #[test]
    fn conservative_state_roundtrips_against_ledger() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 500.0));
        let mut strat = ConservativeBackfill::default();
        ledger.start(0, d(8, 120.0), 90.0);
        ledger.start(1, d(16, 0.0), 30.0);
        strat.mirror.sync(&ledger);
        strat.mirror.fold_into(5.0, *ledger.pool(), &mut strat.profile);
        strat.profile.reserve(&d(40, 0.0), 30.0, 20.0);

        let state = strat.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: ConservativeState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        let restored = ConservativeBackfill::restore(back, &ledger).unwrap();
        assert_eq!(restored.profile, strat.profile);
        assert_eq!(
            restored.profile.snapshot().skyline_clean_from,
            strat.profile.skyline_clean_from
        );
        assert_eq!(restored.mirror.snapshot().releases, strat.mirror.snapshot().releases);

        // The mirror keeps tracking the ledger after restore.
        let mut restored = restored;
        ledger.finish(1);
        restored.mirror.sync(&ledger);
        assert_eq!(restored.mirror.len(), 1);
    }

    #[test]
    fn mirror_restore_lagging_behind_ledger_replays_deltas() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 0.0));
        let mut mirror = ReleaseMirror::new();
        ledger.start(0, d(8, 0.0), 90.0);
        mirror.sync(&ledger);
        let state = mirror.snapshot();
        // Ledger moves on after the snapshot (as happens when backfill
        // starts jobs after the pass-start sync): restore validates by
        // replaying the deltas on a probe, but keeps the recorded lag so
        // it is a fixed point of snapshot.
        ledger.start(1, d(4, 0.0), 30.0);
        ledger.finish(0);
        let mut restored = ReleaseMirror::restore(state.clone(), &ledger).unwrap();
        assert_eq!(restored.snapshot(), state, "restore preserves the recorded lag verbatim");
        // The next live sync applies the same deltas the probe verified.
        restored.sync(&ledger);
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.snapshot().synced, Some(ledger.generation()));
    }

    #[test]
    fn corrupt_backfill_state_fails_typed() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 0.0));
        ledger.start(0, d(8, 0.0), 90.0);
        let mut mirror = ReleaseMirror::new();
        mirror.sync(&ledger);
        let good = mirror.snapshot();

        // Unsorted releases.
        let mut unsorted = good.clone();
        unsorted.releases.push(unsorted.releases[0]);
        assert!(matches!(
            ReleaseMirror::restore(unsorted, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // A mirrored release the ledger's delta replay then contradicts:
        // claim sync at the current generation but with bogus content.
        let mut bogus = good.clone();
        bogus.releases[0].0 = 123.0;
        assert!(matches!(
            ReleaseMirror::restore(bogus, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // Deltas that finish a release the mirror never saw.
        let empty = MirrorState { releases: Vec::new(), synced: Some(ledger.generation()) };
        ledger.finish(0);
        assert!(matches!(
            ReleaseMirror::restore(empty, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // Malformed profile shapes.
        let torn = ProfileState {
            times: vec![0.0, 10.0],
            states: vec![PoolState::cpu_bb(1, 0.0)],
            skyline_clean_from: 0,
        };
        assert!(matches!(AvailabilityProfile::restore(torn), Err(SchedError::CorruptSnapshot(_))));
        let unordered = ProfileState {
            times: vec![10.0, 0.0],
            states: vec![PoolState::cpu_bb(1, 0.0); 2],
            skyline_clean_from: 0,
        };
        assert!(matches!(
            AvailabilityProfile::restore(unordered),
            Err(SchedError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn skyline_survives_reservation_splits() {
        // A reservation splits segments and invalidates part of the
        // skyline; queries must stay exact either way.
        let mut p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(4, 100.0),
            vec![release(10.0, 4, 0.0), release(20.0, 2, 50.0)],
        );
        p.reserve(&d(6, 20.0), 10.0, 25.0);
        // [10, 35) holds 4+4-6=2 nodes until 20, then 4; after 35, 10.
        assert_eq!(p.state_at(12.0).nodes(), 2);
        assert_eq!(p.state_at(22.0).nodes(), 4);
        assert_eq!(p.state_at(40.0).nodes(), 10);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 5.0), 35.0);
        assert_eq!(p.earliest_start(&d(10, 0.0), 0.0, 1.0), 35.0);
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 12.0));
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }
}
