//! Backfilling: the scheduler core's hole-filling phase, as a strategy
//! family.
//!
//! The paper's experiments run **EASY** backfilling (§2.1: reserve for the
//! first blocked job only); this crate also ships **conservative**
//! backfilling (every blocked candidate gets a reservation on a
//! future-availability profile). Both are implementations of
//! [`BackfillStrategy`], invoked by [`crate::SchedCore`] once per
//! scheduling invocation after starvation forcing and policy selection;
//! plan-based disciplines in the style of Kopanski & Rzadca can slot in
//! as further implementations without touching any driver.
//!
//! A strategy sees the invocation through a [`BackfillCtx`]: the waiting
//! candidates (already scoped to window or queue by the core), the
//! blocked reservation head if the starvation phase produced one, fit
//! queries against the live pool, [`BackfillCtx::start`] to dispatch a
//! job, and [`BackfillCtx::reserve`] to publish a reservation into the
//! decision stream. `start(idx, credited)` distinguishes jobs the
//! strategy *credits* as backfilled from queue-head starts that merely
//! consumed freed capacity — the paper's `backfilled` accounting counts
//! only the former.
//!
//! This module also owns the EASY reservation math
//! ([`shadow_and_leftover`]) and the piecewise-constant
//! [`AvailabilityProfile`] behind conservative backfilling. Four layers
//! keep the conservative path off the quadratic cliff at large trace
//! sizes (DESIGN.md §10):
//!
//! * [`ReleaseMirror`] — a persistent, sorted copy of the running jobs'
//!   release schedule, kept current by replaying the allocation ledger's
//!   start/finish deltas ([`AllocLedger::deltas_since`]) instead of
//!   re-collecting and re-sorting the running set every pass;
//! * buffer-reusing profile folds — [`AvailabilityProfile`] is owned by
//!   the strategy across invocations and rebuilt in place from the
//!   mirror's already-sorted releases (no sort, no allocation); only the
//!   reservation carvings of the previous pass are discarded;
//! * **memoized pass replay** — an invocation that left the ledger
//!   untouched (a pure arrival) re-publishes the previous pass's
//!   reservations and advances the profile's origin in place
//!   ([`AvailabilityProfile::advance_origin`]) instead of refolding and
//!   re-querying every candidate, bit-identically (see the fast path in
//!   [`ConservativeBackfill`]'s pass);
//! * **query indexes** over the profile's segments, picked per machine
//!   shape: machines whose resources are all pooled (no per-node
//!   flavours) mirror the free counters into column-major arrays and
//!   answer `fits_interval`/`earliest_start` with a branchless
//!   SIMD-friendly chunk scan; machines with flavoured per-node
//!   resources at `TREE_MIN_SEGMENTS`-plus segments use a balanced
//!   tree (`crate::tree`) with per-resource minimum subtree
//!   aggregates to locate the first blocking segment in O(log S). The
//!   suffix-minima skyline accelerates the linear walk that remains the
//!   debug-build oracle for both.
//!
//! The EASY shadow walk ([`shadow_and_leftover`]) deliberately does *not*
//! use the indexes: it is a single early-exiting pass over the release
//! order per invocation, with no repeated queries over which an index
//! build could amortize (DESIGN.md §10).

use crate::alloc::{AllocLedger, LedgerDelta, RunningJob};
use crate::error::SchedError;
use crate::tree::ProfileTree;
use bbsched_core::pools::{FreeState, NodeAssignment, PoolState, FIT_EPS};
use bbsched_core::problem::JobDemand;
use bbsched_core::resource::MAX_RESOURCES;
use serde::{Deserialize, Serialize};

/// Tolerance for "finishes before the shadow time" comparisons.
pub(crate) const TIME_EPS: f64 = 1e-6;

/// Fit bitmask of the 8-segment chunk starting at `i` on a two-column
/// profile: bit `k` is set when segment `i + k` **fails** (`c0` short of
/// `n0`, exact, or `c1` short of `n1` beyond [`FIT_EPS`] — the
/// [`PoolState::free_fits`] comparisons). Branchless so the compiler can
/// turn it into SIMD compares.
#[inline]
fn scan_fail_mask8(c0: &[f64], c1: &[f64], n0: f64, n1: f64, i: usize) -> u32 {
    let a = &c0[i..i + 8];
    let b = &c1[i..i + 8];
    let mut m = 0u32;
    for k in 0..8 {
        m |= u32::from((a[k] < n0) | (b[k] + FIT_EPS < n1)) << k;
    }
    m
}

/// EASY reservation math: the *shadow time* at which `head` could start if
/// nothing new ran past it (walltime estimates of running jobs, as a real
/// scheduler would use), and the *leftover* resources at that instant
/// beyond the head's claim. Anything fitting inside the leftover can run
/// arbitrarily long without delaying the head.
pub fn shadow_and_leftover(ledger: &AllocLedger, head: &JobDemand, now: f64) -> (f64, PoolState) {
    let pool = ledger.pool();
    if pool.fits(head) {
        let mut leftover = *pool;
        let _ = leftover.alloc(head);
        return (now, leftover);
    }
    // Walk the release schedule in (est_end, index) order — maintained
    // incrementally by the ledger, so no per-call rebuild or sort.
    let mut future = *pool;
    for (_, r) in ledger.release_order() {
        future.free(&r.demand, r.assignment);
        if future.fits(head) {
            let mut leftover = future;
            let _ = leftover.alloc(head);
            return (r.est_end, leftover);
        }
    }
    // The head can never fit — impossible once demands are clamped to
    // capacity; be safe in release builds anyway.
    debug_assert!(false, "unschedulable head survived clamping");
    (f64::INFINITY, PoolState::cpu_bb(0, 0.0))
}

/// One invocation's view of the scheduler core, handed to a
/// [`BackfillStrategy`].
///
/// Constructed by [`crate::SchedCore::invoke`]; the mutable surface is
/// exactly [`BackfillCtx::start`] and [`BackfillCtx::reserve`], so a
/// strategy cannot corrupt accounting — every dispatch goes through the
/// allocation ledger and the observers.
pub struct BackfillCtx<'e, 'o> {
    pub(crate) now: f64,
    pub(crate) waiting: &'e [usize],
    pub(crate) blocked_head: Option<usize>,
    pub(crate) max_scan: usize,
    pub(crate) stable_prefix: usize,
    pub(crate) core: &'e mut crate::service::CoreState<'o>,
}

impl<'e> BackfillCtx<'e, '_> {
    /// The invocation's simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Candidate job indices in priority order (window- or queue-scoped
    /// per [`crate::BackfillScope`], jobs already started this invocation
    /// filtered out at scoping time).
    pub fn waiting(&self) -> &'e [usize] {
        self.waiting
    }

    /// The starved job that could not start and owns the reservation, if
    /// the starvation phase produced one.
    pub fn blocked_head(&self) -> Option<usize> {
        self.blocked_head
    }

    /// Maximum candidates the strategy may examine.
    pub fn max_scan(&self) -> usize {
        self.max_scan
    }

    /// Number of leading [`BackfillCtx::waiting`] entries certified
    /// unchanged — same jobs, same order — since the previous
    /// invocation's candidate list. `0` whenever the engine cannot prove
    /// the witness cheaply (window scope, jobs started this invocation,
    /// dependency filtering in play, a restore); strategies must then
    /// fall back to comparing. Conservative backfilling uses this for an
    /// O(1) replay-prefix check instead of an O(k) elementwise compare.
    pub fn stable_prefix(&self) -> usize {
        self.stable_prefix
    }

    /// Whether job `idx` already started in this invocation.
    pub fn is_started(&self, idx: usize) -> bool {
        self.core.started.contains(idx)
    }

    /// The capacity-clamped demand of job `idx`.
    pub fn demand(&self, idx: usize) -> JobDemand {
        self.core.demands[idx]
    }

    /// The requested walltime of job `idx` (seconds, as submitted).
    pub fn walltime(&self, idx: usize) -> f64 {
        self.core.jobs[idx].walltime
    }

    /// The live free state.
    pub fn pool(&self) -> &PoolState {
        self.core.ledger.pool()
    }

    /// Whether job `idx` fits the free state right now.
    pub fn fits_now(&self, idx: usize) -> bool {
        self.core.ledger.fits(&self.core.demands[idx])
    }

    /// Read access to the allocation ledger (release order, delta log).
    pub fn ledger(&self) -> &AllocLedger {
        &self.core.ledger
    }

    /// Shadow time and leftover state for `head_idx` (see
    /// [`shadow_and_leftover`]).
    pub fn shadow_and_leftover(&self, head_idx: usize) -> (f64, PoolState) {
        shadow_and_leftover(&self.core.ledger, &self.core.demands[head_idx], self.now)
    }

    /// The running jobs' `(est_end, demand, assignment)` release schedule
    /// in deterministic `(est_end, index)` order — what
    /// [`AvailabilityProfile::new`] consumes. Allocates a fresh list per
    /// call; incremental strategies should maintain a [`ReleaseMirror`]
    /// instead.
    pub fn release_schedule(&self) -> Vec<(f64, JobDemand, NodeAssignment)> {
        self.core.ledger.release_schedule()
    }

    /// Starts job `idx` now with [`crate::StartReason::Backfill`].
    ///
    /// `credited` controls the run's `backfilled` counter: pass `true`
    /// for genuine backfill moves (the job jumped ahead using a hole),
    /// `false` for queue-head starts that simply consumed freed capacity.
    ///
    /// # Panics
    /// Panics if the job does not fit the free state (strategies must
    /// check first) or already started.
    pub fn start(&mut self, idx: usize, credited: bool) {
        self.core.start_job(idx, self.now, crate::record::StartReason::Backfill);
        if credited {
            self.core.backfill_credit += 1;
        }
    }

    /// Publishes a [`crate::Decision::Reserve`] for job `idx` at time
    /// `at` into the invocation's decision stream. Purely observational:
    /// the reservation's capacity bookkeeping stays inside the strategy;
    /// the next invocation recomputes it from scratch.
    pub fn reserve(&mut self, idx: usize, at: f64) {
        self.core.note_reservation(idx, at);
    }
}

/// A pluggable backfilling discipline.
///
/// Called once per scheduling invocation, after the starvation and policy
/// phases. The strategy may start any not-yet-started candidate from
/// [`BackfillCtx::waiting`] (plus the blocked head), subject to its own
/// no-delay rules; the engine handles all bookkeeping around it. The
/// strategy object lives as long as the engine, so implementations may
/// keep incremental state between passes (conservative backfilling keeps
/// its availability profile).
pub trait BackfillStrategy: Send {
    /// Display name (observer callbacks carry it).
    fn name(&self) -> &'static str;

    /// Runs one backfill pass.
    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>);

    /// State this strategy carries across invocations as a serde value
    /// tree, or `None` when it is stateless (EASY, the rebuild-per-pass
    /// reference). Stateful strategies override this together with
    /// [`BackfillStrategy::restore_state`].
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }

    /// Injects state exported by [`BackfillStrategy::snapshot_state`],
    /// validating it against the restored `ledger`. The default accepts
    /// nothing — handing persistent state to a stateless strategy is a
    /// corrupt snapshot worth diagnosing.
    fn restore_state(
        &mut self,
        state: &serde::Value,
        ledger: &AllocLedger,
    ) -> Result<(), SchedError> {
        let _ = (state, ledger);
        Err(SchedError::CorruptSnapshot(format!(
            "backfill strategy `{}` carries no cross-invocation state",
            self.name()
        )))
    }
}

/// EASY backfilling (§2.1, the paper's choice): reserve for the first
/// blocked job only; a candidate may start now if it finishes before the
/// head's shadow time or fits inside the head's leftover.
#[derive(Clone, Copy, Debug, Default)]
pub struct EasyBackfill;

impl BackfillStrategy for EasyBackfill {
    fn name(&self) -> &'static str {
        "EASY"
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        let waiting = ctx.waiting();
        // Start any fitting head outright (covers policies that left a
        // fitting job behind and the queue-front after backfill frees);
        // stop at the first job that does not fit — it becomes the
        // reservation head. A starved blocked job owns the reservation
        // regardless of queue position.
        let mut head: Option<usize> = None;
        let mut cursor = 0usize;
        while cursor < waiting.len() {
            let idx = waiting[cursor];
            if let Some(b) = ctx.blocked_head() {
                head = Some(b);
                break;
            }
            if ctx.is_started(idx) {
                cursor += 1;
                continue;
            }
            if ctx.fits_now(idx) {
                // Not credited: the queue head starting on freed capacity
                // is ordinary dispatch, not a backfill move.
                ctx.start(idx, false);
                cursor += 1;
            } else {
                head = Some(idx);
                break;
            }
        }

        let Some(head_idx) = head else { return };
        let (shadow, mut leftover) = ctx.shadow_and_leftover(head_idx);
        ctx.reserve(head_idx, shadow);
        for (scanned, &idx) in waiting.iter().enumerate() {
            if scanned >= ctx.max_scan() {
                break;
            }
            if ctx.is_started(idx) || idx == head_idx {
                continue;
            }
            let d = ctx.demand(idx);
            if !ctx.pool().fits(&d) {
                continue;
            }
            let ends_before_shadow = ctx.now() + ctx.walltime(idx) <= shadow + TIME_EPS;
            if ends_before_shadow || leftover.fits(&d) {
                if !ends_before_shadow {
                    let _ = leftover.alloc(&d);
                }
                ctx.start(idx, true);
            }
        }
    }
}

/// Conservative backfilling: every blocked candidate receives a
/// reservation on a future-availability profile; a job starts now only if
/// it delays none of the reservations ahead of it. Stronger fairness,
/// fewer backfill opportunities.
///
/// The strategy is stateful: it owns a [`ReleaseMirror`] synced from the
/// ledger's delta log and a persistent [`AvailabilityProfile`] refolded in
/// place each pass, so no pass allocates or sorts. Invocations that left
/// the ledger untouched (pure arrivals) replay the previous pass's
/// memoized reservations instead of re-querying every candidate — see
/// the fast path in [`BackfillStrategy::pass`]. Schedules are
/// bit-identical to the rebuild-per-pass reference
/// ([`crate::legacy_profile::RebuildPerPassConservative`]) — proven by the
/// golden-equivalence suite.
#[derive(Clone, Debug, Default)]
pub struct ConservativeBackfill {
    mirror: ReleaseMirror,
    profile: AvailabilityProfile,
    /// Per-pass candidate order scratch (blocked head first).
    ordered: Vec<usize>,
    /// Memoized previous pass: the candidate prefix actually scanned
    /// (`cache_ordered`, position-aligned with `cache_outcome`) and each
    /// position's outcome — the reservation start for reserved jobs,
    /// `+inf` for candidates that never fit, `NaN` for already-started
    /// skips. Pure accelerator state for the replay fast path in
    /// [`ConservativeBackfill::pass`]: never serialized (snapshots are
    /// unchanged by it), cold after restore, and invalidated by any
    /// ledger change or queue reordering.
    cache_ordered: Vec<usize>,
    cache_outcome: Vec<f64>,
    /// Whether the memo was recorded by a pass with no blocked head —
    /// i.e. `cache_ordered` is literally a prefix of that pass's waiting
    /// list, with no reservation head prepended. Precondition for the
    /// O(1) stable-prefix replay witness in
    /// [`ConservativeBackfill::replay_valid`].
    cache_head_clean: bool,
    /// Minimum finite entry of `cache_outcome` (`+inf` when none):
    /// maintained on record so the "every memoized reservation still
    /// lies strictly in the future" replay condition is one comparison
    /// instead of an O(k) scan.
    cache_min_outcome: f64,
}

impl ConservativeBackfill {
    /// Extracts the strategy's owned cross-invocation state: the release
    /// mirror and the persistent availability profile (with its skyline
    /// watermark). The per-pass candidate ordering is scratch and is not
    /// part of the state.
    pub fn snapshot(&self) -> ConservativeState {
        ConservativeState { mirror: self.mirror.snapshot(), profile: self.profile.snapshot() }
    }

    /// Rebuilds the strategy from extracted state, validating the mirror
    /// against the restored `ledger` (see [`ReleaseMirror::restore`]) and
    /// the profile's shape. Corrupt state fails with a typed
    /// [`SchedError::CorruptSnapshot`] instead of panicking mid-pass.
    pub fn restore(state: ConservativeState, ledger: &AllocLedger) -> Result<Self, SchedError> {
        Ok(Self {
            mirror: ReleaseMirror::restore(state.mirror, ledger)?,
            profile: AvailabilityProfile::restore(state.profile)?,
            ..Self::default()
        })
    }

    /// Whether the memoized previous pass can replay against the current
    /// invocation (see the fast path in the `pass` body; the caller has
    /// already established that the ledger is unchanged): the scanned
    /// candidate prefix must be identical — position for position, which
    /// also pins the blocked head — must still fall inside the scan cap,
    /// and every memoized reservation must still lie strictly in the
    /// future (a start time that has come due must re-evaluate against
    /// the live pool instead). The future check is one comparison
    /// against the maintained [`ConservativeBackfill::cache_min_outcome`];
    /// the prefix check is O(1) whenever the engine's kinetic
    /// stable-prefix witness ([`BackfillCtx::stable_prefix`]) covers the
    /// memo, falling back to the elementwise compare otherwise.
    fn replay_valid(&self, ctx: &BackfillCtx<'_, '_>) -> bool {
        if self.cache_ordered.is_empty()
            || self.cache_ordered.len() > self.ordered.len().min(ctx.max_scan())
            || self.cache_min_outcome <= ctx.now() + TIME_EPS
        {
            return false;
        }
        // O(1) prefix witness: when the memo was recorded head-clean and
        // this pass is head-clean too, `ordered` is the waiting list in
        // both passes, and the queue's kinetic stable prefix certifies
        // the first `stable_prefix` waiting entries unchanged (the
        // engine only reports a non-zero witness when waiting == queue:
        // queue scope, nothing started this invocation, no dependency
        // filtering — and a pure-arrival ledger, which the caller
        // already established, pins the filter predicates themselves).
        // A memo no longer than the witness therefore matches without
        // being read.
        if self.cache_head_clean
            && ctx.blocked_head().is_none()
            && self.cache_ordered.len() <= ctx.stable_prefix()
        {
            debug_assert!(
                self.ordered[..self.cache_ordered.len()] == self.cache_ordered[..],
                "stable-prefix witness disagrees with the elementwise prefix compare"
            );
            return true;
        }
        self.ordered[..self.cache_ordered.len()] == self.cache_ordered[..]
    }

    /// Debug-only oracle for the replay fast path: re-derives the whole
    /// memoized prefix from a scratch refold — every query recomputed
    /// and asserted against its memoized outcome, every carve re-applied
    /// — and asserts the origin-advanced persistent profile is
    /// bit-identical (boundaries, free counters, skyline watermark) to
    /// that from-scratch recompute.
    #[cfg(debug_assertions)]
    fn verify_replay(&self, ctx: &BackfillCtx<'_, '_>) {
        let mut scratch = AvailabilityProfile::default();
        self.mirror.fold_into(ctx.now(), *ctx.pool(), &mut scratch);
        for (&idx, &t) in self.cache_ordered.iter().zip(&self.cache_outcome) {
            if t.is_nan() {
                assert!(ctx.is_started(idx), "memoized skip for job {idx}, which never started");
                continue;
            }
            let d = ctx.demand(idx);
            let walltime = ctx.walltime(idx).max(1.0);
            assert_eq!(
                t,
                scratch.earliest_start(&d, ctx.now(), walltime),
                "memoized outcome diverged from recompute for job {idx}"
            );
            if t.is_finite() {
                scratch.reserve(&d, t, walltime);
            }
        }
        assert!(
            scratch == self.profile
                && scratch.skyline_clean_from == self.profile.skyline_clean_from,
            "origin-advanced profile diverged from refold + recompute"
        );
    }
}

impl BackfillStrategy for ConservativeBackfill {
    fn name(&self) -> &'static str {
        "conservative"
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        Some(serde::Serialize::to_value(&self.snapshot()))
    }

    fn restore_state(
        &mut self,
        state: &serde::Value,
        ledger: &AllocLedger,
    ) -> Result<(), SchedError> {
        let state: ConservativeState = serde::Deserialize::from_value(state).map_err(|e| {
            SchedError::CorruptSnapshot(format!("conservative backfill state: {e}"))
        })?;
        *self = Self::restore(state, ledger)?;
        Ok(())
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        // Apply the starts/finishes since the previous pass to the sorted
        // release mirror, then refold the profile over the reused buffers
        // (dropping the previous pass's reservation carvings — the only
        // segments not derivable from the mirror).
        let unchanged = self.mirror.sync(ctx.ledger());
        // Reservations for everyone; the starved blocked job (if any)
        // reserves first.
        self.ordered.clear();
        if let Some(b) = ctx.blocked_head() {
            self.ordered.push(b);
        }
        self.ordered
            .extend(ctx.waiting().iter().copied().filter(|&i| Some(i) != ctx.blocked_head()));
        // Replay fast path. When the ledger is untouched since the
        // previous pass (a pure-arrival invocation — about half of all
        // passes under event-driven scheduling), a refold would produce
        // the same piecewise function on `[now, ∞)` as last pass's fold,
        // and every candidate the previous pass scanned gets the *same*
        // earliest start: free capacity only grows over time below the
        // first reservation, so a recompute rejects every candidate
        // start before the memoized one and accepts the memoized one.
        // The pass therefore skips both the refold and the per-candidate
        // query/reserve work entirely: the origin advances in place
        // (keeping the carves, which re-carving on the refold would
        // reproduce bit for bit — see
        // [`AvailabilityProfile::advance_origin`]) and only the memoized
        // reservation decisions are re-published. The memo applies only
        // while the scanned candidate prefix is unchanged (new arrivals
        // append at the tail under order-stable policies; any reorder,
        // removal, blocked-head change, or a memoized start time falling
        // due bails to a full recompute), so the published decisions
        // match the rebuild-per-pass reference exactly. New tail
        // candidates below are queried for real against the advanced
        // profile. Debug builds re-derive the whole pass from a scratch
        // refold and assert both the outcomes and the profile state.
        let begin = if unchanged && self.replay_valid(ctx) && self.profile.advance_origin(ctx.now())
        {
            for (&idx, &t) in self.cache_ordered.iter().zip(&self.cache_outcome) {
                if t.is_finite() {
                    ctx.reserve(idx, t);
                }
            }
            #[cfg(debug_assertions)]
            self.verify_replay(ctx);
            self.cache_ordered.len()
        } else {
            self.mirror.fold_into(ctx.now(), *ctx.pool(), &mut self.profile);
            self.cache_ordered.clear();
            self.cache_outcome.clear();
            self.cache_min_outcome = f64::INFINITY;
            0
        };
        // Per-pass dominance memo (see [`DominanceMemo`] for the
        // bit-exactness argument). On a replayed prefix, seed it from
        // the memoized outcomes so the fresh tail candidates start with
        // the same bounds a full scan would have accumulated by then.
        let mut memo = DominanceMemo::new();
        if begin > 0 {
            for (&idx, &t) in self.cache_ordered.iter().zip(&self.cache_outcome) {
                if t.is_finite() && t > ctx.now() + TIME_EPS {
                    memo.note(&ctx.demand(idx), ctx.walltime(idx).max(1.0), t);
                }
            }
        }
        for pos in begin..self.ordered.len() {
            if pos >= ctx.max_scan() {
                break;
            }
            let idx = self.ordered[pos];
            if ctx.is_started(idx) {
                self.cache_ordered.push(idx);
                self.cache_outcome.push(f64::NAN);
                continue;
            }
            let d = ctx.demand(idx);
            let walltime = ctx.walltime(idx).max(1.0);
            let t = match memo.bound(&d, walltime, ctx.now()) {
                None => f64::INFINITY,
                Some(from) => self.profile.earliest_start(&d, from, walltime),
            };
            if t <= ctx.now() + TIME_EPS && ctx.pool().fits(&d) {
                ctx.start(idx, true);
                // Consume from the profile's "now" segments too. The
                // start bumps the ledger generation, so this pass's memo
                // can never replay — record the position as a skip.
                self.profile.reserve(&d, t, walltime);
                self.cache_ordered.push(idx);
                self.cache_outcome.push(f64::NAN);
            } else if t.is_finite() {
                self.profile.reserve(&d, t, walltime);
                ctx.reserve(idx, t);
                self.cache_ordered.push(idx);
                self.cache_outcome.push(t);
                self.cache_min_outcome = self.cache_min_outcome.min(t);
                if t > ctx.now() + TIME_EPS {
                    memo.note(&d, walltime, t);
                }
            } else {
                self.cache_ordered.push(idx);
                self.cache_outcome.push(f64::INFINITY);
                memo.note_inf(&d, walltime);
            }
        }
        self.cache_head_clean = ctx.blocked_head().is_none();
    }
}

// ---------------------------------------------------------------------------
// Per-pass dominance memo for earliest-start queries.
// ---------------------------------------------------------------------------

/// Per-pass lower bounds on [`AvailabilityProfile::earliest_start`]
/// answers, transferred between candidates by demand dominance
/// (DESIGN.md §10.2).
///
/// Within one conservative pass every query starts from `now` and the
/// profile only ever *loses* free capacity — each reservation carves
/// space out, nothing is freed mid-pass. So when an earlier candidate
/// with demand `e` and duration `de` was answered `te`, a later
/// candidate asking for componentwise at least as much (`d ≥ e`,
/// `dur ≥ de`) cannot start before `te` either: every candidate start
/// `< te` already failed for the smaller, shorter request against a
/// profile that had at least as much free space then. The later query
/// may therefore begin its profile walk at `te` instead of `now`, and
/// the answer is **bit-identical** to the full walk's: `te` is itself a
/// profile boundary (the reservation at `te` split it in), and a start
/// strictly inside a segment never wins — if `[u, u+dur)` fits for an
/// interior `u`, the covering segment's left edge fits too and is
/// earlier — so the walk from `te` examines exactly the boundaries the
/// full walk would have accepted. An earlier *infinite* answer
/// transfers the same way: the dominated query is `+inf` without
/// walking at all. The replay oracle
/// ([`ConservativeBackfill::verify_replay`]) and the legacy-equivalence
/// golden suites re-derive every memoized outcome with plain full-walk
/// queries, so the argument is machine-checked continuously.
///
/// Entries are restricted to *plain* demands — no SSD, no extra
/// resources — which dominate on the three `(nodes, bb_gb, dur)`
/// components alone (their zero SSD/extra components are `≤` any
/// query's). Finite answers live in a prefix-max grid over
/// `⌈log₂ nodes⌉ × duration-bucket` cells, so a lookup probes two
/// cells — each re-validated componentwise — instead of scanning all
/// prior entries.
struct DominanceMemo {
    /// `grid[i][j]` = the latest-answered entry `(nodes, bb_gb, dur,
    /// t)` among noted entries with `nodes ≤ 2^i` and `dur ≤ DUR[j]`
    /// (prefix-max in both axes; `t = -inf` when empty).
    grid: [[(u32, f64, f64, f64); Self::DB]; Self::NB],
    /// Plain demands answered `+inf`, first few only (the check is
    /// linear; one infinite answer usually dominates the rest of the
    /// pass's big jobs).
    inf: [(u32, f64, f64); Self::INF_CAP],
    inf_len: usize,
}

impl DominanceMemo {
    const NB: usize = 12;
    const DB: usize = 8;
    const INF_CAP: usize = 8;
    /// Duration-bucket upper bounds (seconds): 1 min .. 2 days, then
    /// unbounded.
    const DUR: [f64; Self::DB] =
        [60.0, 300.0, 900.0, 3600.0, 10800.0, 43200.0, 172800.0, f64::INFINITY];

    fn new() -> Self {
        Self {
            grid: [[(0, 0.0, 0.0, f64::NEG_INFINITY); Self::DB]; Self::NB],
            inf: [(0, 0.0, 0.0); Self::INF_CAP],
            inf_len: 0,
        }
    }

    /// Whether `d` asks for nodes and burst buffer only — the demands
    /// whose dominance is decided by `(nodes, bb_gb, dur)` alone.
    fn plain(d: &JobDemand) -> bool {
        d.ssd_gb_per_node == 0.0 && d.extra.iter().all(|&x| x == 0.0)
    }

    /// Records the finite answer `t` for a reservation of `d` over
    /// `dur` seconds. Callers only note answers strictly beyond `now`
    /// (a bound of `now` is what queries start with anyway).
    fn note(&mut self, d: &JobDemand, dur: f64, t: f64) {
        if !Self::plain(d) {
            return;
        }
        let i0 = (32 - (d.nodes.max(1) - 1).leading_zeros()) as usize;
        if i0 >= Self::NB {
            return;
        }
        let j0 = Self::DUR.iter().position(|&e| dur <= e).unwrap_or(Self::DB - 1);
        // Prefix-max grid: cells are monotone along both axes, so stop
        // as soon as one already holds a later answer.
        for row in self.grid.iter_mut().skip(i0) {
            if t <= row[j0].3 {
                break;
            }
            for cell in row.iter_mut().skip(j0) {
                if t <= cell.3 {
                    break;
                }
                *cell = (d.nodes, d.bb_gb, dur, t);
            }
        }
    }

    /// Records that `d` over `dur` can never be placed this pass.
    fn note_inf(&mut self, d: &JobDemand, dur: f64) {
        if Self::plain(d) && self.inf_len < Self::INF_CAP {
            self.inf[self.inf_len] = (d.nodes, d.bb_gb, dur);
            self.inf_len += 1;
        }
    }

    /// The dominance bound for querying `d` over `dur` at `now`:
    /// `None` when a recorded infinite answer dominates (the query is
    /// `+inf`, skip the walk), otherwise the time the profile walk may
    /// start from. Probes the floor cell (largest bucket fully within
    /// the query's class) and the query's own ceiling cell; both are
    /// re-validated componentwise, so a miss can only weaken the bound
    /// back toward `now`, never unsound.
    fn bound(&self, d: &JobDemand, dur: f64, now: f64) -> Option<f64> {
        if self.inf[..self.inf_len]
            .iter()
            .any(|&(n, b, du)| n <= d.nodes && b <= d.bb_gb && du <= dur)
        {
            return None;
        }
        let mut from = now;
        if d.nodes >= 1 {
            let i1 = (31 - d.nodes.leading_zeros()) as usize;
            let i0 = ((32 - (d.nodes - 1).leading_zeros()) as usize).min(Self::NB - 1);
            let j1 = Self::DUR.iter().rposition(|&e| e <= dur).unwrap_or(0);
            let j0 = Self::DUR.iter().position(|&e| dur <= e).unwrap_or(Self::DB - 1);
            for &(i, j) in &[(i1, j1), (i0.max(i1), j0.max(j1))] {
                let cell = self.grid[i.min(Self::NB - 1)][j];
                if cell.3 > from && cell.0 <= d.nodes && cell.1 <= d.bb_gb && cell.2 <= dur {
                    from = cell.3;
                }
            }
        }
        Some(from)
    }
}

// ---------------------------------------------------------------------------
// The persistent release mirror feeding the profile fold.
// ---------------------------------------------------------------------------

/// One running job's release, as mirrored from the ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Release {
    est_end: f64,
    idx: usize,
    demand: JobDemand,
    asn: NodeAssignment,
}

/// A persistent, `(est_end, index)`-sorted copy of the ledger's release
/// schedule, kept current by replaying [`AllocLedger::deltas_since`]
/// between passes (falling back to a full resync if the delta log was
/// truncated). This is the "apply start/finish deltas instead of
/// rebuilding" half of the incremental profile; the fold itself is
/// [`ReleaseMirror::fold_into`].
#[derive(Clone, Debug, Default)]
pub struct ReleaseMirror {
    releases: Vec<Release>,
    /// Ledger generation the mirror reflects (`None` before first sync).
    synced: Option<u64>,
}

impl ReleaseMirror {
    /// An empty mirror (syncs fully on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mirrored releases (= running jobs at last sync).
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Brings the mirror up to date with `ledger` by applying the deltas
    /// logged since the last sync (O(deltas · log n) search plus memmove),
    /// or by a full resynchronization when the log has been truncated.
    ///
    /// Returns whether the mirror was **already current** — the ledger's
    /// generation is the one recorded at the previous sync, so no start
    /// or finish happened in between and nothing was applied. Callers use
    /// this as the "nothing changed" signal gating memoized-pass replay.
    pub fn sync(&mut self, ledger: &AllocLedger) -> bool {
        let unchanged = self.synced == Some(ledger.generation());
        let applied = match self.synced {
            Some(gen) => match ledger.deltas_since(gen) {
                Some(deltas) => {
                    let mut ok = true;
                    for delta in deltas {
                        match *delta {
                            LedgerDelta::Start { idx, entry } => self.insert(idx, &entry),
                            LedgerDelta::Finish { idx, est_end } => {
                                if self.remove(idx, est_end).is_err() {
                                    // Desynchronized mirror (a finish for a
                                    // release it never saw): self-heal with
                                    // a full resync. Restore paths surface
                                    // this as a typed error instead — see
                                    // [`ConservativeBackfill::restore`].
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    ok
                }
                None => false,
            },
            None => false,
        };
        if !applied {
            self.resync_from(ledger);
        }
        self.synced = Some(ledger.generation());
        debug_assert!(
            self.releases.len() == ledger.running_count()
                && self
                    .releases
                    .iter()
                    .zip(ledger.release_order())
                    .all(|(m, (idx, r))| m.idx == idx && m.est_end == r.est_end),
            "release mirror desynchronized from the ledger"
        );
        unchanged
    }

    fn insert(&mut self, idx: usize, entry: &RunningJob) {
        let pos = self
            .releases
            .partition_point(|r| r.est_end.total_cmp(&entry.est_end).then(r.idx.cmp(&idx)).is_lt());
        self.releases.insert(
            pos,
            Release { est_end: entry.est_end, idx, demand: entry.demand, asn: entry.assignment },
        );
    }

    fn remove(&mut self, idx: usize, est_end: f64) -> Result<(), SchedError> {
        let pos = self
            .releases
            .binary_search_by(|r| r.est_end.total_cmp(&est_end).then(r.idx.cmp(&idx)))
            .map_err(|_| {
                SchedError::CorruptSnapshot(format!(
                    "mirror finish for job index {idx} (est_end {est_end}), which it never saw"
                ))
            })?;
        self.releases.remove(pos);
        Ok(())
    }

    /// Rebuilds the mirror wholesale from the ledger's release order.
    fn resync_from(&mut self, ledger: &AllocLedger) {
        self.releases.clear();
        self.releases.extend(ledger.release_order().map(|(idx, r)| Release {
            est_end: r.est_end,
            idx,
            demand: r.demand,
            asn: r.assignment,
        }));
    }

    /// Extracts the mirror's owned state: the sorted releases and the
    /// ledger generation they reflect.
    pub fn snapshot(&self) -> MirrorState {
        MirrorState {
            releases: self.releases.iter().map(|r| (r.est_end, r.idx, r.demand, r.asn)).collect(),
            synced: self.synced,
        }
    }

    /// Rebuilds a mirror from extracted state, *verbatim*, and validates
    /// it against the restored `ledger`: releases must be strictly
    /// `(est_end, index)` sorted, and replaying the ledger's deltas from
    /// the mirrored generation (on a probe copy — the restored mirror
    /// keeps its recorded lag, so restore is a fixed point of
    /// [`ReleaseMirror::snapshot`]) must land exactly on the ledger's
    /// release order. A mirror that desynchronizes during that replay —
    /// the condition the live path self-heals by resyncing — is reported
    /// here as a typed [`SchedError::CorruptSnapshot`] instead.
    pub fn restore(state: MirrorState, ledger: &AllocLedger) -> Result<Self, SchedError> {
        let releases: Vec<Release> = state
            .releases
            .iter()
            .map(|&(est_end, idx, demand, asn)| Release { est_end, idx, demand, asn })
            .collect();
        for w in releases.windows(2) {
            if !w[0].est_end.total_cmp(&w[1].est_end).then(w[0].idx.cmp(&w[1].idx)).is_lt() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "mirror releases out of (est_end, index) order at job index {}",
                    w[1].idx
                )));
            }
        }
        let mirror = Self { releases, synced: state.synced };
        // Strict replay on a probe copy: every delta must apply cleanly
        // and the result must equal the ledger's live release order. A
        // truncated delta log leaves nothing to verify incrementally (the
        // next pass will full-resync, exactly as the uninterrupted run
        // would have).
        let mut probe = mirror.clone();
        match probe.synced {
            Some(gen) => {
                if let Some(deltas) = ledger.deltas_since(gen) {
                    for delta in deltas {
                        match *delta {
                            LedgerDelta::Start { idx, entry } => probe.insert(idx, &entry),
                            LedgerDelta::Finish { idx, est_end } => probe.remove(idx, est_end)?,
                        }
                    }
                    if probe.releases.len() != ledger.running_count()
                        || !probe
                            .releases
                            .iter()
                            .zip(ledger.release_order())
                            .all(|(m, (idx, r))| m.idx == idx && m.est_end == r.est_end)
                    {
                        return Err(SchedError::CorruptSnapshot(
                            "mirror disagrees with the ledger's release order".into(),
                        ));
                    }
                }
            }
            None => {
                if !mirror.releases.is_empty() {
                    return Err(SchedError::CorruptSnapshot(
                        "mirror holds releases but records no synced generation".into(),
                    ));
                }
            }
        }
        Ok(mirror)
    }

    /// Refolds `profile` in place from the mirrored releases: origin at
    /// `now` with the live free state `pool`, one step per release. Same
    /// fold — bit for bit — as [`AvailabilityProfile::new`] over
    /// [`AllocLedger::release_schedule`], without the sort or the
    /// allocations.
    pub fn fold_into(&self, now: f64, pool: PoolState, profile: &mut AvailabilityProfile) {
        profile.rebuild_from_sorted(
            now,
            pool,
            self.releases.iter().map(|r| (r.est_end, r.demand, r.asn)),
        );
    }
}

// ---------------------------------------------------------------------------
// Future resource-availability profiles, the machinery behind conservative
// backfilling (formerly `crate::profile`).
// ---------------------------------------------------------------------------

/// A piecewise-constant view of free resources from "now" to infinity.
///
/// Built from the running jobs' estimated completions and updated as
/// reservations are placed. The profile tracks every resource the pool
/// registers — nodes, shared burst buffer, heterogeneous per-node flavour
/// pools, and any extra pooled resources. Per-node assignments within a
/// future segment use the same greedy smallest-sufficient-flavour rule as
/// live allocation; because reservations are capacity bookkeeping (not
/// placements), per-segment re-assignment is the standard conservative
/// approximation.
///
/// Invariant: `times` is strictly increasing, `times[0]` is the profile's
/// origin ("now"), and `states[i]` holds on `[times[i], times[i+1])`
/// (the last state holds forever).
///
/// Storage is split: one [`PoolState`] **machine template** (topology,
/// capacities — identical across every segment of a profile by
/// construction, since all segments derive from the same pool) plus a
/// packed [`FreeState`] per segment holding only the mutable free
/// counters. Walks, suffix minima, and tree aggregates all operate on
/// the packed 64-byte states; full `PoolState`s are materialized only at
/// the API boundary (`state_at`, `states`, `snapshot`) by stamping the
/// free counters onto the template, so the snapshot wire format is
/// unchanged.
///
/// Queries dispatch to one of three evaluators, picked per machine
/// shape and segment count:
///
/// * **Column scan** (machines whose resources are all pooled — no
///   per-node flavours — which covers the CPU + burst-buffer
///   configurations the paper studies): the free counters are mirrored
///   into column-major arrays (`cols`) and the fit test over a run of
///   segments becomes a branchless 8-wide chunked compare per resource
///   column (`scan_fail_mask8`, compiled to SIMD), with window
///   boundaries checked once per chunk rather than once per candidate.
/// * **Hierarchical tree** (flavoured machines at
///   `TREE_MIN_SEGMENTS`-plus segments): a balanced `ProfileTree`
///   with per-resource minimum subtree aggregates answers
///   `earliest_start` in a single traversal that visits every node at
///   most once and `fits_interval` via "first blocking segment at or
///   after rank i" in O(log S), maintained through reservations
///   (`split_at` inserts, `reserve` refreshes a rank range). On pooled
///   machines the scan beats it — its subtree pruning degenerates to
///   near-linear visit counts with worse constants — so they never
///   build it (measured; see DESIGN.md §10).
/// * **Linear walk** (everything else, and the oracle): the sequential
///   packed-state walk with the suffix-minima skyline (O(1) accept once
///   the remaining tail fits).
///
/// The scan, tree, and skyline are acceleration indexes only — results
/// never depend on which evaluator answered, and debug builds
/// cross-check every scan and tree answer against the frozen
/// linear-scan queries
/// ([`AvailabilityProfile::fits_interval_linear`],
/// [`AvailabilityProfile::earliest_start_linear`]).
#[derive(Clone, Debug)]
pub struct AvailabilityProfile {
    times: Vec<f64>,
    /// Packed free counters of the segment on `[times[i], times[i+1])`
    /// (the last holds forever). The full state of segment `i` is
    /// `machine.with_free(&frees[i])`.
    frees: Vec<FreeState>,
    /// Topology/capacity template shared by every segment: the pool the
    /// profile was folded from. Its own free counters are never read —
    /// segment state always comes from `frees`.
    machine: PoolState,
    /// Hierarchical min index over `frees`; in-order rank `i` mirrors
    /// `frees[i]`. Engaged only on flavoured machines at or above
    /// `TREE_MIN_SEGMENTS` segments (column-scan machines never build
    /// it — see [`AvailabilityProfile::sync_tree`]).
    tree: ProfileTree,
    /// `skyline[i]` = component-wise minimum of `frees[i..]`; valid for
    /// indices `>= skyline_clean_from`. Accelerates the linear queries;
    /// left empty in release builds when the column scan serves this
    /// machine (see [`AvailabilityProfile::rebuild_skyline`]).
    skyline: Vec<FreeState>,
    /// Watermark below which skyline entries are invalidated by
    /// reservations. Part of the snapshot wire format ([`ProfileState`])
    /// and evolves identically whichever query path is active.
    skyline_clean_from: usize,
    /// Column-major (structure-of-arrays) mirror of `frees` for machines
    /// without a per-node resource: `cols[r][i]` is segment `i`'s free
    /// amount of resource `r`. Empty on flavoured machines. Lets the fit
    /// scan over segments run as a branchless chunked compare per
    /// resource column instead of a per-segment 64-byte state walk.
    cols: Vec<Vec<f64>>,
}

/// Segment count at or above which the hierarchical `ProfileTree`
/// engages, on the flavoured machines the column scan does not cover.
/// Below it the linear skyline walk answers queries: at small S a
/// sequential scan of packed 64-byte states beats the tree's
/// pointer-chasing descent, and skipping the tree also skips its
/// per-reservation aggregate maintenance (the dominant tree cost on
/// profiles with many reservations). Chosen from the `profile_ops/*`
/// micro-benches and the 2k/20k conservative simulation benches. On
/// pooled-resource machines no threshold rehabilitates the tree — its
/// aggregate pruning is exact arithmetic there, so a query's visit count
/// approaches the segment count with worse per-visit constants than the
/// column scan's SIMD compare — hence scan-served profiles keep it off
/// at every size (measured at 20k jobs; DESIGN.md §10).
const TREE_MIN_SEGMENTS: usize = 192;

impl Default for AvailabilityProfile {
    /// An empty, never-folded profile. `machine` is a zero-capacity
    /// placeholder; every caller folds (which replaces it) before
    /// querying.
    fn default() -> Self {
        Self {
            times: Vec::new(),
            frees: Vec::new(),
            machine: PoolState::cpu_bb(0, 0.0),
            tree: ProfileTree::default(),
            skyline: Vec::new(),
            skyline_clean_from: 0,
            cols: Vec::new(),
        }
    }
}

impl PartialEq for AvailabilityProfile {
    /// Profiles are equal when their piecewise-constant functions are:
    /// same boundaries, same machine shape, same per-segment free
    /// counters. The tree and skyline are acceleration indexes and take
    /// no part in equality.
    fn eq(&self, other: &Self) -> bool {
        self.times == other.times
            && self.frees == other.frees
            && (self.frees.is_empty() || self.machine.same_machine(&other.machine))
    }
}

impl AvailabilityProfile {
    /// Builds the profile from the current free state and the estimated
    /// completion times of running jobs. `releases` is a list of
    /// `(est_end, demand, assignment)` tuples; order does not matter.
    pub fn new(
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) -> Self {
        let mut rel: Vec<(f64, JobDemand, NodeAssignment)> =
            releases.into_iter().map(|(t, d, asn)| (t.max(now), d, asn)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut profile = Self::default();
        profile.rebuild_from_sorted(now, pool, rel);
        profile
    }

    /// Advances the profile's origin to `now` in place, *keeping* the
    /// reservation carves — the memoized-replay alternative to a refold.
    /// Valid only when the release set and pool are unchanged since the
    /// fold that produced this profile and every carve lies strictly
    /// beyond `now` (the caller establishes both): then the refold +
    /// carve-replay this replaces is the same piecewise function, and
    /// dropping the segments that ended at or before `now` reproduces it
    /// bit for bit — boundaries beyond `now` are untouched, the origin
    /// segment's counters already accumulate the releases a refold would
    /// clamp into the origin, and the skyline watermark shifts with the
    /// dropped segment count (its index-shifted evolution is identical).
    ///
    /// Returns `false` without mutating when the advance cannot
    /// reproduce the refold exactly: a boundary inside `(now, now +
    /// 1e-12)` would have been merged into the origin by the fold's
    /// boundary-dedup window, so the caller must refold instead.
    ///
    /// # Panics
    /// Debug-panics on a never-folded profile or if `now` precedes the
    /// current origin.
    pub fn advance_origin(&mut self, now: f64) -> bool {
        debug_assert!(!self.times.is_empty(), "advance_origin on a never-folded profile");
        debug_assert!(now >= self.times[0], "advance_origin cannot rewind the origin");
        let k = self.seg_index(now);
        if let Some(&t) = self.times.get(k + 1) {
            if t - now < 1e-12 {
                return false;
            }
        }
        if k > 0 {
            self.times.drain(..k);
            self.frees.drain(..k);
            for col in &mut self.cols {
                col.drain(..k);
            }
            if !self.skyline.is_empty() {
                self.skyline.drain(..k);
            }
            self.skyline_clean_from = self.skyline_clean_from.saturating_sub(k);
            // Ranks shifted: resync the tree index (scan machines keep it
            // off; threshold crossings mirror what a refold would do).
            self.sync_tree();
        }
        self.times[0] = now;
        true
    }

    /// Refolds the profile in place from releases **already sorted**
    /// ascending by time (ties in any deterministic order; times below
    /// `now` are clamped to it, which preserves sortedness). Reuses the
    /// internal buffers — no allocation once capacity is warm — and
    /// rebuilds the skyline index. This is the incremental path's fold:
    /// bit-identical to [`AvailabilityProfile::new`] on the same releases.
    ///
    /// # Panics
    /// Debug-panics if the releases are not sorted.
    pub fn rebuild_from_sorted(
        &mut self,
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) {
        self.times.clear();
        self.frees.clear();
        self.machine = pool;
        self.times.push(now);
        // Fold with a full-state accumulator (identical `free` arithmetic
        // to the pre-packing profile), storing only the packed free
        // counters per segment.
        let mut acc = pool;
        self.frees.push(acc.free_state());
        let mut prev = f64::NEG_INFINITY;
        for (t, d, asn) in releases {
            let t = t.max(now);
            debug_assert!(t >= prev, "rebuild_from_sorted wants ascending releases");
            prev = t;
            acc.free(&d, asn);
            if (t - *self.times.last().unwrap()).abs() < 1e-12 {
                *self.frees.last_mut().unwrap() = acc.free_state();
            } else {
                self.times.push(t);
                self.frees.push(acc.free_state());
            }
        }
        self.sync_scan();
        self.rebuild_skyline();
        self.sync_tree();
    }

    /// Engages or clears the tree index according to the segment count
    /// (see `TREE_MIN_SEGMENTS`). Machines served by the column scan
    /// never build the tree: the scan answers every query the tree would,
    /// faster, so the per-reservation aggregate maintenance would be pure
    /// overhead.
    fn sync_tree(&mut self) {
        if self.cols.is_empty() && self.frees.len() >= TREE_MIN_SEGMENTS {
            self.tree.rebuild(&self.machine, &self.frees);
        } else {
            self.tree.clear();
        }
    }

    /// Rebuilds the column-major free mirror (see
    /// [`AvailabilityProfile::scan_active`]) — cleared on machines with a
    /// per-node resource, whose fit checks go through the flavour pools.
    fn sync_scan(&mut self) {
        if self.machine.ssd_aware() {
            self.cols.clear();
            return;
        }
        let rlen = self.machine.resource_len();
        self.cols.truncate(rlen);
        self.cols.resize_with(rlen, Vec::new);
        for (r, col) in self.cols.iter_mut().enumerate() {
            col.clear();
            col.extend(self.frees.iter().map(|f| self.machine.free_component(f, r)));
        }
    }

    /// Whether the column scan answers queries for this profile.
    #[inline]
    fn scan_active(&self) -> bool {
        !self.cols.is_empty()
    }

    /// Rebuilds the suffix-minima index over the current segments.
    ///
    /// On column-scan machines in release builds the vector is left
    /// empty: the scan answers every production query, so the skyline
    /// would only accelerate the unused linear path while costing a
    /// 64-byte memmove on every reservation split. Debug builds keep it
    /// so the linear oracle the scan is cross-checked against stays
    /// exact and fast. The `skyline_clean_from` watermark is wire state
    /// and is maintained identically whether or not the vector exists.
    fn rebuild_skyline(&mut self) {
        self.skyline.clear();
        self.skyline_clean_from = 0;
        if self.scan_active() && !cfg!(debug_assertions) {
            return;
        }
        let n = self.frees.len();
        self.skyline.resize(n, self.frees[n - 1]);
        for i in (0..n - 1).rev() {
            self.skyline[i] = self.machine.free_component_min(&self.frees[i], &self.skyline[i + 1]);
        }
    }

    /// Number of segments (diagnostic).
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// The boundary times (diagnostic / equivalence tests).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The per-segment states, materialized (diagnostic / equivalence
    /// tests): segment `i` is the machine template stamped with the
    /// packed free counters `frees[i]`.
    pub fn states(&self) -> Vec<PoolState> {
        self.frees.iter().map(|f| self.machine.with_free(f)).collect()
    }

    /// Index of the segment containing time `t` (clamped to the origin).
    #[inline]
    fn seg_index(&self, t: f64) -> usize {
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Free state at time `t` (clamped to the profile's origin).
    pub fn state_at(&self, t: f64) -> PoolState {
        self.machine.with_free(&self.frees[self.seg_index(t)])
    }

    /// Whether `d` fits segment `i` (exact, on the packed state).
    #[inline]
    fn seg_fits(&self, i: usize, d: &JobDemand) -> bool {
        self.machine.free_fits(&self.frees[i], d)
    }

    /// Whether the skyline entry at `i` is valid and fits `d` — meaning
    /// every segment from `i` onward fits `d`, so a scan can stop.
    #[inline]
    fn tail_fits(&self, i: usize, d: &JobDemand) -> bool {
        i >= self.skyline_clean_from
            && i < self.skyline.len()
            && self.machine.free_fits(&self.skyline[i], d)
    }

    /// Whether `d` fits everywhere on `[start, start + duration)`.
    ///
    /// With the tree engaged, boundaries at or before `start` are skipped
    /// by binary search and the index locates the first blocking boundary
    /// in O(log S) — the interval fits iff that boundary is absent or
    /// at/after the interval's end (debug builds cross-check against
    /// [`AvailabilityProfile::fits_interval_linear`]). Small profiles
    /// take the linear skyline walk directly.
    pub fn fits_interval(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        if self.scan_active() {
            let fits = self.fits_interval_scan(d, start, duration);
            debug_assert_eq!(fits, self.fits_interval_linear(d, start, duration));
            return fits;
        }
        if !self.tree.is_active() {
            return self.fits_interval_linear(d, start, duration);
        }
        let end = start + duration;
        let fits = self.seg_fits(self.seg_index(start), d) && {
            // First boundary strictly greater than `start`.
            let i = self.times.partition_point(|t| *t <= start);
            match self.tree.first_blocking_at_or_after(i, d, &self.machine, &self.frees) {
                None => true,
                Some(b) => self.times[b] >= end,
            }
        };
        debug_assert_eq!(fits, self.fits_interval_linear(d, start, duration));
        fits
    }

    /// The frozen linear-scan `fits_interval` (suffix-minima skyline
    /// acceleration in debug builds): the oracle the tree-indexed
    /// [`AvailabilityProfile::fits_interval`] is checked against, kept
    /// public so equivalence tests can compare the two paths explicitly.
    pub fn fits_interval_linear(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        let i0 = self.seg_index(start);
        if self.tail_fits(i0, d) {
            // Every segment from `start`'s onward fits.
            return true;
        }
        if !self.seg_fits(i0, d) {
            return false;
        }
        // First boundary strictly greater than `start`.
        let mut i = self.times.partition_point(|t| *t <= start);
        while i < self.times.len() && self.times[i] < end {
            if self.tail_fits(i, d) {
                return true;
            }
            if !self.seg_fits(i, d) {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Earliest time `>= from` at which `d` fits for `duration`. Candidate
    /// instants are `from` and the profile's breakpoints (free resources
    /// only ever *increase* at breakpoints built from releases, but
    /// reservations can carve arbitrary shapes, so every breakpoint is a
    /// candidate). Returns `f64::INFINITY` if it never fits.
    ///
    /// With the tree engaged, the answer comes from a **single
    /// traversal** (`ProfileTree::find_earliest`): every tree node is
    /// visited at most once, subtrees whose minimum aggregate fits `d`
    /// are skipped whole, and candidate accept/advance decisions happen
    /// in-order during the descent — no per-candidate restart from the
    /// root. Identical returns to the walk, debug-asserted against
    /// [`AvailabilityProfile::earliest_start_linear`]. Small profiles
    /// take the linear skyline walk directly.
    pub fn earliest_start(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        if self.scan_active() {
            let found = self.earliest_start_scan(d, from, duration);
            debug_assert_eq!(
                found.to_bits(),
                self.earliest_start_linear(d, from, duration).to_bits()
            );
            return found;
        }
        if !self.tree.is_active() {
            return self.earliest_start_linear(d, from, duration);
        }
        let found =
            self.tree.find_earliest(&self.machine, &self.times, &self.frees, d, from, duration);
        debug_assert_eq!(found.to_bits(), self.earliest_start_linear(d, from, duration).to_bits());
        found
    }

    /// The frozen linear-walk `earliest_start` (suffix-minima skyline
    /// acceleration in debug builds): the oracle the tree-indexed
    /// [`AvailabilityProfile::earliest_start`] is checked against, kept
    /// public so equivalence tests can compare the two paths explicitly.
    ///
    /// Implemented as a single forward walk: when a segment inside the
    /// candidate's interval does not fit, every candidate up to that
    /// segment's boundary is doomed (its interval would contain the
    /// blocking segment), so the walk jumps straight to the next fitting
    /// breakpoint. Each segment is visited at most once — O(S) worst case
    /// instead of the O(S²) try-every-breakpoint scan — and the skyline
    /// accepts in O(1) once the remaining tail fits.
    pub fn earliest_start_linear(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        let n = self.times.len();
        if self.tail_fits(self.seg_index(from), d) {
            // Every segment from `from`'s onward fits: accept in O(1).
            return from;
        }
        let mut cand = from;
        // First boundary strictly after the candidate.
        let mut i = self.times.partition_point(|t| *t <= from);
        if !self.seg_fits(i.saturating_sub(1), d) {
            // `from` fails in its own segment: advance to the first
            // breakpoint whose segment fits.
            while i < n && !self.seg_fits(i, d) {
                i += 1;
            }
            if i == n {
                return f64::INFINITY;
            }
            cand = self.times[i];
            i += 1;
        }
        // Invariant: the segment containing `cand` fits, and every
        // boundary in (cand, times[i]) — none so far — fits.
        'candidate: loop {
            let end = cand + duration;
            while i < n && self.times[i] < end {
                if self.tail_fits(i, d) {
                    return cand;
                }
                if !self.seg_fits(i, d) {
                    // Segment i blocks every candidate in (cand, times[i]]
                    // (their intervals all contain it, and times[i]'s own
                    // segment does not fit). Jump to the next fitting
                    // breakpoint.
                    i += 1;
                    while i < n && !self.seg_fits(i, d) {
                        i += 1;
                    }
                    if i == n {
                        return f64::INFINITY;
                    }
                    cand = self.times[i];
                    i += 1;
                    continue 'candidate;
                }
                i += 1;
            }
            return cand;
        }
    }

    /// Per-resource fit thresholds of `d` for the column scan: segment
    /// `i` fits iff `cols[0][i] >= need[0]` (nodes, exact) and
    /// `cols[r][i] + 1e-9 >= need[r]` for every further resource — the
    /// same comparisons, in the same floating-point arithmetic, as
    /// [`PoolState::free_fits`] on an unflavoured machine.
    #[inline]
    fn scan_need(&self, d: &JobDemand) -> [f64; MAX_RESOURCES] {
        let mut need = [f64::NEG_INFINITY; MAX_RESOURCES];
        for (r, n) in need.iter_mut().enumerate().take(self.cols.len()) {
            *n = self.machine.demand_of(d, r);
        }
        need
    }

    /// Whether segment `j` fails the demand whose thresholds are `need`.
    #[inline]
    fn scan_fails_at(&self, need: &[f64; MAX_RESOURCES], j: usize) -> bool {
        if self.cols[0][j] < need[0] {
            return true;
        }
        for (col, &n) in self.cols.iter().zip(need.iter()).skip(1) {
            if col[j] + FIT_EPS < n {
                return true;
            }
        }
        false
    }

    /// First segment in `[i, lim)` that fails `need`, or `lim`. The
    /// two-resource layout (the paper's CPU + burst-buffer machine) runs
    /// as a chunked branchless compare over the columns so the compiler
    /// can vectorize it; other widths take the scalar loop.
    fn scan_next_fail(&self, need: &[f64; MAX_RESOURCES], mut i: usize, lim: usize) -> usize {
        if self.cols.len() == 2 && i < lim {
            let c0 = &self.cols[0][..lim];
            let c1 = &self.cols[1][..lim];
            let (n0, n1) = (need[0], need[1]);
            const W: usize = 8;
            while i + W <= lim {
                let a = &c0[i..i + W];
                let b = &c1[i..i + W];
                let mut any = false;
                for k in 0..W {
                    any |= (a[k] < n0) | (b[k] + FIT_EPS < n1);
                }
                if any {
                    break;
                }
                i += W;
            }
            while i < lim {
                if (c0[i] < n0) | (c1[i] + FIT_EPS < n1) {
                    return i;
                }
                i += 1;
            }
            return lim;
        }
        while i < lim {
            if self.scan_fails_at(need, i) {
                return i;
            }
            i += 1;
        }
        lim
    }

    /// First segment in `[i, lim)` that fits `need`, or `lim`.
    fn scan_next_fit(&self, need: &[f64; MAX_RESOURCES], mut i: usize, lim: usize) -> usize {
        if self.cols.len() == 2 && i < lim {
            let c0 = &self.cols[0][..lim];
            let c1 = &self.cols[1][..lim];
            let (n0, n1) = (need[0], need[1]);
            const W: usize = 8;
            while i + W <= lim {
                let a = &c0[i..i + W];
                let b = &c1[i..i + W];
                let mut all_fail = true;
                for k in 0..W {
                    all_fail &= (a[k] < n0) | (b[k] + FIT_EPS < n1);
                }
                if !all_fail {
                    break;
                }
                i += W;
            }
            while i < lim {
                if !((c0[i] < n0) | (c1[i] + FIT_EPS < n1)) {
                    return i;
                }
                i += 1;
            }
            return lim;
        }
        while i < lim {
            if !self.scan_fails_at(need, i) {
                return i;
            }
            i += 1;
        }
        lim
    }

    /// Column-scan `fits_interval`: same walk as
    /// [`AvailabilityProfile::fits_interval_linear`], with the in-window
    /// segment sweep vectorized over the resource columns.
    fn fits_interval_scan(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        let need = self.scan_need(d);
        if self.scan_fails_at(&need, self.seg_index(start)) {
            return false;
        }
        // First boundary strictly greater than `start`; scan stops at the
        // first boundary at or beyond the interval's end.
        let i = self.times.partition_point(|t| *t <= start);
        let lim = i + self.times[i..].partition_point(|t| *t < end);
        self.scan_next_fail(&need, i, lim) == lim
    }

    /// Column-scan `earliest_start`: the same candidate-advancing walk as
    /// [`AvailabilityProfile::earliest_start_linear`] — each segment is
    /// still visited at most once — but the forward sweep evaluates the
    /// fit predicate as a branchless 8-segment bitmask over the resource
    /// columns, with the window boundary checked once per chunk instead
    /// of once per segment (and no per-candidate binary search).
    fn earliest_start_scan(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        let n = self.times.len();
        let need = self.scan_need(d);
        let mut cand = from;
        // First boundary strictly after the candidate.
        let mut i = self.times.partition_point(|t| *t <= from);
        if self.scan_fails_at(&need, i.saturating_sub(1)) {
            // `from` fails in its own segment: advance to the first
            // breakpoint whose segment fits.
            i = self.scan_next_fit(&need, i, n);
            if i == n {
                return f64::INFINITY;
            }
            cand = self.times[i];
            i += 1;
        }
        if self.cols.len() == 2 {
            let c0 = &self.cols[0][..n];
            let c1 = &self.cols[1][..n];
            let times = &self.times[..n];
            let (n0, n1) = (need[0], need[1]);
            'candidate: loop {
                let end = cand + duration;
                while i + 8 <= n {
                    if times[i] >= end {
                        // The candidate's window closed with no block.
                        return cand;
                    }
                    let m = scan_fail_mask8(c0, c1, n0, n1, i);
                    if m != 0 {
                        let b = i + m.trailing_zeros() as usize;
                        if times[b] >= end {
                            return cand;
                        }
                        // Segment b blocks every candidate in
                        // (cand, times[b]]: jump to the next fit.
                        i = self.scan_next_fit(&need, b + 1, n);
                        if i == n {
                            return f64::INFINITY;
                        }
                        cand = times[i];
                        i += 1;
                        continue 'candidate;
                    }
                    i += 8;
                }
                while i < n {
                    if times[i] >= end {
                        return cand;
                    }
                    if (c0[i] < n0) | (c1[i] + FIT_EPS < n1) {
                        i = self.scan_next_fit(&need, i + 1, n);
                        if i == n {
                            return f64::INFINITY;
                        }
                        cand = times[i];
                        i += 1;
                        continue 'candidate;
                    }
                    i += 1;
                }
                return cand;
            }
        }
        loop {
            let end = cand + duration;
            let lim = i + self.times[i..].partition_point(|t| *t < end);
            let b = self.scan_next_fail(&need, i, lim);
            if b == lim {
                return cand;
            }
            // Segment b blocks every candidate in (cand, times[b]]: jump
            // to the next fitting breakpoint.
            i = self.scan_next_fit(&need, b + 1, n);
            if i == n {
                return f64::INFINITY;
            }
            cand = self.times[i];
            i += 1;
        }
    }

    /// Carves a reservation for `d` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics (debug) if the demand does not fit the interval.
    pub fn reserve(&mut self, d: &JobDemand, start: f64, duration: f64) {
        debug_assert!(self.fits_interval(d, start, duration), "reserve without fit check");
        let end = start + duration;
        // The splits return the rank of the boundary equal to (or at the
        // profile edge, clamping) each endpoint, so the carve range is
        // exactly `lo..hi` — no per-segment overlap tests needed.
        let lo = self.split_at(start);
        let hi = self.split_at(end);
        let (lo_mut, hi_mut) = (lo, hi);
        let machine = self.machine;
        // Subtract over the contiguous span. The interval fit was
        // established by the caller (debug-asserted above), so the
        // unchecked carve applies — same arithmetic as `free_alloc`,
        // minus the per-segment fit re-check.
        for f in &mut self.frees[lo_mut..hi_mut] {
            let _ = machine.free_carve(f, d);
        }
        let dirty_end = self.skyline_clean_from.max(hi_mut);
        // Mirror the carve into the columns as one tight subtraction per
        // resource: the same `free - demand` arithmetic `free_alloc`
        // applied to the packed states, so the mirrored values stay
        // bit-identical (debug-checked below).
        if lo_mut < hi_mut {
            for (r, col) in self.cols.iter_mut().enumerate() {
                let demand = machine.demand_of(d, r);
                for v in &mut col[lo_mut..hi_mut] {
                    *v -= demand;
                }
            }
            debug_assert!((lo_mut..hi_mut).all(|i| {
                (0..self.cols.len())
                    .all(|r| self.cols[r][i] == machine.free_component(&self.frees[i], r))
            }));
        }
        // Repair the tree index's aggregates over the mutated rank range
        // (the flat packed states above are its single source of truth).
        if self.tree.is_active() && lo_mut < hi_mut {
            self.tree.refresh_range(lo_mut, hi_mut, &self.machine, &self.frees);
        }
        // Suffix minima at or before a mutated segment may now overstate
        // availability; invalidate them (queries fall back to exact
        // per-segment checks there). Repairing the skyline in place was
        // measured instead and lost: carved minima propagate nearly the
        // whole prefix down, and valid-but-congestion-tight suffix entries
        // almost never accept mid-profile while costing a full state
        // compare per visited boundary.
        self.skyline_clean_from = dirty_end;
    }

    /// Extracts the profile's owned state: boundaries, per-segment states
    /// (materialized from the packed free counters — byte-identical to
    /// the pre-packing full states, since every segment shares the fold
    /// pool's topology and capacities), and the skyline watermark. The
    /// tree and skyline are **indexes, not state** — neither appears on
    /// the wire, and restore rebuilds them from the flat segments: the
    /// tree deterministically from the exact states, and the skyline with
    /// entries at or beyond the watermark identical to the maintained
    /// ones (they are suffix minima over unmutated segments) while
    /// entries below it are never read. Queries therefore answer exactly
    /// as the original would have, and the snapshot schema is unchanged
    /// by the indexing strategy.
    pub fn snapshot(&self) -> ProfileState {
        ProfileState {
            times: self.times.clone(),
            states: self.states(),
            skyline_clean_from: self.skyline_clean_from,
        }
    }

    /// Rebuilds a profile from extracted state, validating shape: equal
    /// `times`/`states` lengths, strictly increasing finite boundaries,
    /// and a watermark within range.
    pub fn restore(state: ProfileState) -> Result<Self, SchedError> {
        if state.times.is_empty() && state.states.is_empty() && state.skyline_clean_from == 0 {
            // A never-folded profile (fresh strategy, no pass yet).
            return Ok(Self::default());
        }
        if state.times.is_empty() || state.times.len() != state.states.len() {
            return Err(SchedError::CorruptSnapshot(format!(
                "profile has {} boundaries for {} states",
                state.times.len(),
                state.states.len()
            )));
        }
        if state.times.iter().any(|t| !t.is_finite())
            || state.times.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(SchedError::CorruptSnapshot(
                "profile boundaries must be finite and strictly increasing".into(),
            ));
        }
        if state.skyline_clean_from > state.times.len() {
            return Err(SchedError::CorruptSnapshot(format!(
                "profile skyline watermark {} exceeds {} segments",
                state.skyline_clean_from,
                state.times.len()
            )));
        }
        // Every segment of a folded profile derives from one pool, so all
        // must agree on topology and capacities — that shared machine
        // becomes the template the packed free counters are read against.
        let machine = state.states[0];
        if state.states.iter().any(|s| !s.same_machine(&machine)) {
            return Err(SchedError::CorruptSnapshot(
                "profile segments must share one machine topology and capacity".into(),
            ));
        }
        let mut profile = Self {
            times: state.times,
            frees: state.states.iter().map(|s| s.free_state()).collect(),
            machine,
            tree: ProfileTree::default(),
            skyline: Vec::new(),
            skyline_clean_from: 0,
            cols: Vec::new(),
        };
        profile.sync_scan();
        profile.rebuild_skyline();
        profile.sync_tree();
        profile.skyline_clean_from = state.skyline_clean_from;
        Ok(profile)
    }

    /// Ensures `t` is a breakpoint (no-op if it already is or precedes the
    /// origin; infinite times are ignored).
    fn split_at(&mut self, t: f64) -> usize {
        if !t.is_finite() {
            return self.times.len();
        }
        if t <= self.times[0] {
            return 0;
        }
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(i) => {
                let f = self.frees[i - 1];
                self.times.insert(i, t);
                self.frees.insert(i, f);
                for (r, col) in self.cols.iter_mut().enumerate() {
                    col.insert(i, self.machine.free_component(&f, r));
                }
                // Mirror the duplicate segment into the tree at the same
                // rank (O(log S) balanced insert; reads the new state
                // from the just-updated flat vector). Growing across the
                // activation threshold engages the index mid-pass.
                if self.tree.is_active() {
                    self.tree.insert(i, &self.machine, &self.frees);
                } else if self.cols.is_empty() && self.frees.len() >= TREE_MIN_SEGMENTS {
                    // Mid-pass activation (column-scan machines never
                    // engage the tree; see `sync_tree`).
                    self.tree.rebuild(&self.machine, &self.frees);
                }
                // Keep the skyline index-aligned (when maintained — see
                // `rebuild_skyline`). Entries before `i` are unchanged
                // (the duplicate state was already folded into them via
                // the original segment); the new entry folds the
                // duplicate with the old suffix at `i`. Inside the
                // invalidated prefix the value is never read. The
                // watermark shift below the invalidation point is wire
                // state and applies whether or not the vector exists.
                if i < self.skyline_clean_from {
                    if !self.skyline.is_empty() {
                        self.skyline.insert(i, f);
                    }
                    self.skyline_clean_from += 1;
                } else if !self.skyline.is_empty() {
                    let v = match self.skyline.get(i) {
                        Some(next) => self.machine.free_component_min(&f, next),
                        None => f,
                    };
                    self.skyline.insert(i, v);
                }
                i
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Owned state types for the snapshot/restore contract (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Owned state of a [`ReleaseMirror`] (see [`ReleaseMirror::snapshot`]):
/// the `(est_end, index, demand, assignment)` releases in sorted order and
/// the ledger generation they reflect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MirrorState {
    /// Mirrored releases, `(est_end, index)`-sorted.
    pub releases: Vec<(f64, usize, JobDemand, NodeAssignment)>,
    /// Ledger generation the releases reflect (`None` before first sync).
    pub synced: Option<u64>,
}

/// Owned state of an [`AvailabilityProfile`] (see
/// [`AvailabilityProfile::snapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileState {
    /// Segment boundaries, strictly increasing; `times[0]` is the origin.
    pub times: Vec<f64>,
    /// Free state on `[times[i], times[i+1])`.
    pub states: Vec<PoolState>,
    /// Skyline validity watermark: suffix-minima entries before this index
    /// are invalidated by reservation carvings.
    pub skyline_clean_from: usize,
}

/// Owned cross-invocation state of a [`ConservativeBackfill`] strategy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConservativeState {
    /// The persistent release mirror.
    pub mirror: MirrorState,
    /// The persistent availability profile.
    pub profile: ProfileState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(nodes: u32, bb: f64) -> JobDemand {
        JobDemand::cpu_bb(nodes, bb)
    }

    fn release(t: f64, nodes: u32, bb: f64) -> (f64, JobDemand, NodeAssignment) {
        (t, d(nodes, bb), NodeAssignment::two_tier(0, nodes))
    }

    #[test]
    fn shadow_math_uses_ledger_release_order() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        ledger.start(0, d(6, 0.0), 100.0);
        ledger.start(1, d(4, 50.0), 40.0);
        // Head needs 8 nodes: free now 0; at t=40, 4 nodes; at t=100, 10.
        let (shadow, leftover) = shadow_and_leftover(&ledger, &d(8, 0.0), 5.0);
        assert_eq!(shadow, 100.0);
        assert_eq!(leftover.nodes(), 2);
        // Head fits now -> shadow is "now".
        ledger.finish(0);
        let (shadow, _) = shadow_and_leftover(&ledger, &d(5, 0.0), 5.0);
        assert_eq!(shadow, 5.0);
    }

    #[test]
    fn profile_accumulates_releases() {
        let pool = PoolState::cpu_bb(4, 10.0); // 4 free now
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![release(10.0, 4, 20.0), release(20.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 3);
        assert_eq!(p.state_at(0.0).nodes(), 4);
        assert_eq!(p.state_at(10.0).nodes(), 8);
        assert_eq!(p.state_at(25.0).nodes(), 10);
        assert_eq!(p.state_at(25.0).bb_gb(), 30.0);
    }

    #[test]
    fn simultaneous_releases_merge() {
        let p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(0, 0.0),
            vec![release(5.0, 1, 0.0), release(5.0, 2, 0.0)],
        );
        assert_eq!(p.segments(), 2);
        assert_eq!(p.state_at(5.0).nodes(), 3);
    }

    #[test]
    fn earliest_start_waits_for_capacity() {
        let p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 6, 0.0)]);
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 100.0), 0.0);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 100.0), 10.0);
        assert_eq!(p.earliest_start(&d(50, 0.0), 0.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn reservation_blocks_the_interval() {
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(4, 10.0), vec![release(10.0, 4, 0.0)]);
        // Reserve all 4 current nodes for [0, 30).
        p.reserve(&d(4, 5.0), 0.0, 30.0);
        assert_eq!(p.state_at(0.0).nodes(), 0);
        assert_eq!(p.state_at(15.0).nodes(), 4, "release at 10 still counted");
        assert_eq!(p.state_at(30.0).nodes(), 8, "reservation ends at 30");
        // A 4-node job now has to wait until t=10.
        assert_eq!(p.earliest_start(&d(4, 0.0), 0.0, 5.0), 10.0);
    }

    #[test]
    fn fits_interval_checks_interior_boundaries() {
        let mut p = AvailabilityProfile::new(0.0, PoolState::cpu_bb(8, 0.0), vec![]);
        // Reservation in the middle of a candidate interval.
        p.reserve(&d(6, 0.0), 10.0, 10.0);
        assert!(p.fits_interval(&d(4, 0.0), 0.0, 10.0));
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 15.0), "collides with [10,20)");
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }

    #[test]
    fn ssd_pools_tracked_through_profile() {
        let pool = PoolState::with_ssd(1, 1, 100.0);
        let big = JobDemand::cpu_bb_ssd(1, 0.0, 200.0);
        let p = AvailabilityProfile::new(
            0.0,
            pool,
            vec![(5.0, JobDemand::cpu_bb_ssd(2, 0.0, 200.0), NodeAssignment::two_tier(0, 2))],
        );
        // One 256 node free now; three at t=5.
        assert!(p.fits_interval(&big, 0.0, 1.0));
        let three = JobDemand::cpu_bb_ssd(3, 0.0, 200.0);
        assert_eq!(p.earliest_start(&three, 0.0, 1.0), 5.0);
    }

    #[test]
    fn conservative_chain_of_reservations() {
        // Classic scenario: 10 nodes; running job frees at t=10.
        let mut p =
            AvailabilityProfile::new(0.0, PoolState::cpu_bb(2, 0.0), vec![release(10.0, 8, 0.0)]);
        // Head job needs 10 nodes -> reserved at t=10 for 20.
        let head = d(10, 0.0);
        let t = p.earliest_start(&head, 0.0, 20.0);
        assert_eq!(t, 10.0);
        p.reserve(&head, t, 20.0);
        // Second job (2 nodes, long): can start now ONLY if it ends by 10.
        assert_eq!(p.earliest_start(&d(2, 0.0), 0.0, 5.0), 0.0);
        assert_eq!(
            p.earliest_start(&d(2, 0.0), 0.0, 50.0),
            30.0,
            "long job must queue behind the head's reservation"
        );
    }

    #[test]
    fn mirror_tracks_ledger_incrementally() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(100, 1_000.0));
        let mut mirror = ReleaseMirror::new();
        mirror.sync(&ledger);
        assert!(mirror.is_empty());
        ledger.start(4, d(10, 50.0), 40.0);
        ledger.start(2, d(5, 0.0), 10.0);
        mirror.sync(&ledger);
        assert_eq!(mirror.len(), 2);
        ledger.finish(2);
        ledger.start(7, d(1, 0.0), 25.0);
        mirror.sync(&ledger);
        // Mirror order matches the ledger's (est_end, idx) order.
        let order: Vec<usize> = mirror.releases.iter().map(|r| r.idx).collect();
        assert_eq!(order, vec![7, 4]);
    }

    #[test]
    fn mirror_fold_equals_from_scratch_profile() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 500.0));
        let mut mirror = ReleaseMirror::new();
        let mut profile = AvailabilityProfile::default();
        ledger.start(0, d(8, 120.0), 90.0);
        ledger.start(1, d(16, 0.0), 30.0);
        ledger.start(2, d(4, 60.0), 90.0);
        mirror.sync(&ledger);
        mirror.fold_into(5.0, *ledger.pool(), &mut profile);
        let fresh = AvailabilityProfile::new(5.0, *ledger.pool(), ledger.release_schedule());
        assert_eq!(profile, fresh);
        // Reservations carved into the working profile vanish at the next
        // fold; only ledger deltas persist.
        profile.reserve(&d(30, 0.0), 30.0, 20.0);
        assert_ne!(profile, fresh);
        ledger.finish(1);
        mirror.sync(&ledger);
        mirror.fold_into(12.0, *ledger.pool(), &mut profile);
        let fresh = AvailabilityProfile::new(12.0, *ledger.pool(), ledger.release_schedule());
        assert_eq!(profile, fresh);
    }

    #[test]
    fn conservative_state_roundtrips_against_ledger() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 500.0));
        let mut strat = ConservativeBackfill::default();
        ledger.start(0, d(8, 120.0), 90.0);
        ledger.start(1, d(16, 0.0), 30.0);
        strat.mirror.sync(&ledger);
        strat.mirror.fold_into(5.0, *ledger.pool(), &mut strat.profile);
        strat.profile.reserve(&d(40, 0.0), 30.0, 20.0);

        let state = strat.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: ConservativeState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        let restored = ConservativeBackfill::restore(back, &ledger).unwrap();
        assert_eq!(restored.profile, strat.profile);
        assert_eq!(
            restored.profile.snapshot().skyline_clean_from,
            strat.profile.skyline_clean_from
        );
        assert_eq!(restored.mirror.snapshot().releases, strat.mirror.snapshot().releases);

        // The mirror keeps tracking the ledger after restore.
        let mut restored = restored;
        ledger.finish(1);
        restored.mirror.sync(&ledger);
        assert_eq!(restored.mirror.len(), 1);
    }

    #[test]
    fn mirror_restore_lagging_behind_ledger_replays_deltas() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 0.0));
        let mut mirror = ReleaseMirror::new();
        ledger.start(0, d(8, 0.0), 90.0);
        mirror.sync(&ledger);
        let state = mirror.snapshot();
        // Ledger moves on after the snapshot (as happens when backfill
        // starts jobs after the pass-start sync): restore validates by
        // replaying the deltas on a probe, but keeps the recorded lag so
        // it is a fixed point of snapshot.
        ledger.start(1, d(4, 0.0), 30.0);
        ledger.finish(0);
        let mut restored = ReleaseMirror::restore(state.clone(), &ledger).unwrap();
        assert_eq!(restored.snapshot(), state, "restore preserves the recorded lag verbatim");
        // The next live sync applies the same deltas the probe verified.
        restored.sync(&ledger);
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.snapshot().synced, Some(ledger.generation()));
    }

    #[test]
    fn corrupt_backfill_state_fails_typed() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(64, 0.0));
        ledger.start(0, d(8, 0.0), 90.0);
        let mut mirror = ReleaseMirror::new();
        mirror.sync(&ledger);
        let good = mirror.snapshot();

        // Unsorted releases.
        let mut unsorted = good.clone();
        unsorted.releases.push(unsorted.releases[0]);
        assert!(matches!(
            ReleaseMirror::restore(unsorted, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // A mirrored release the ledger's delta replay then contradicts:
        // claim sync at the current generation but with bogus content.
        let mut bogus = good.clone();
        bogus.releases[0].0 = 123.0;
        assert!(matches!(
            ReleaseMirror::restore(bogus, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // Deltas that finish a release the mirror never saw.
        let empty = MirrorState { releases: Vec::new(), synced: Some(ledger.generation()) };
        ledger.finish(0);
        assert!(matches!(
            ReleaseMirror::restore(empty, &ledger),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // Malformed profile shapes.
        let torn = ProfileState {
            times: vec![0.0, 10.0],
            states: vec![PoolState::cpu_bb(1, 0.0)],
            skyline_clean_from: 0,
        };
        assert!(matches!(AvailabilityProfile::restore(torn), Err(SchedError::CorruptSnapshot(_))));
        let unordered = ProfileState {
            times: vec![10.0, 0.0],
            states: vec![PoolState::cpu_bb(1, 0.0); 2],
            skyline_clean_from: 0,
        };
        assert!(matches!(
            AvailabilityProfile::restore(unordered),
            Err(SchedError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn skyline_survives_reservation_splits() {
        // A reservation splits segments and invalidates part of the
        // skyline; queries must stay exact either way.
        let mut p = AvailabilityProfile::new(
            0.0,
            PoolState::cpu_bb(4, 100.0),
            vec![release(10.0, 4, 0.0), release(20.0, 2, 50.0)],
        );
        p.reserve(&d(6, 20.0), 10.0, 25.0);
        // [10, 35) holds 4+4-6=2 nodes until 20, then 4; after 35, 10.
        assert_eq!(p.state_at(12.0).nodes(), 2);
        assert_eq!(p.state_at(22.0).nodes(), 4);
        assert_eq!(p.state_at(40.0).nodes(), 10);
        assert_eq!(p.earliest_start(&d(5, 0.0), 0.0, 5.0), 35.0);
        assert_eq!(p.earliest_start(&d(10, 0.0), 0.0, 1.0), 35.0);
        assert!(!p.fits_interval(&d(4, 0.0), 0.0, 12.0));
        assert!(p.fits_interval(&d(2, 0.0), 0.0, 100.0));
    }
}
