//! Observation hooks into the scheduler-service core.
//!
//! The core ([`crate::SchedCore`]) owns only the mechanics of a
//! scheduling invocation; everything a consumer might want to *collect* —
//! per-job records, live metrics, decision streams, a daemon's telemetry —
//! attaches through the [`SchedObserver`] trait instead of being welded
//! into the loop. The hooks are driver-agnostic: the same observer works
//! unchanged under the discrete-event simulator and the online replay
//! driver, because both raise exactly the callbacks the core raises.
//! [`Recorder`] is the first observer: it rebuilds exactly the
//! [`SimResult`] the historical monolithic `Simulator::run` produced.
//! [`DecisionLog`] is the second: it captures the canonical decision
//! stream ([`Decision::json_line`]) the replay driver emits.
//!
//! Callback order within one scheduling invocation:
//!
//! 1. [`SchedObserver::on_invocation_begin`] — the queue is non-empty and
//!    a scheduling pass is about to run;
//! 2. [`SchedObserver::on_window_built`] — the window phase selected its
//!    candidate jobs;
//! 3. zero or more [`SchedObserver::on_job_started`] — starvation
//!    forcing, then policy selection, then backfilling, in that order
//!    (the [`StartReason`] tells which phase started the job); each start
//!    and each reservation also raises [`SchedObserver::on_decision`];
//! 4. [`SchedObserver::on_backfill_pass`] — the backfill phase finished;
//! 5. [`SchedObserver::on_invocation_end`].
//!
//! [`SchedObserver::on_job_finished`] fires between invocations as the
//! driver reports completions, and [`SchedObserver::on_sim_end`] exactly
//! once when the driver declares the event stream over.

use crate::record::{JobRecord, SimResult, StartReason};
use crate::service::Decision;
use bbsched_core::pools::NodeAssignment;
use bbsched_core::problem::JobDemand;
use bbsched_workloads::{Job, SystemConfig};

/// Everything known about a job at the instant it starts.
#[derive(Clone, Debug)]
pub struct JobStart<'a> {
    /// Scheduling time of the start.
    pub now: f64,
    /// The job, as it was submitted.
    pub job: &'a Job,
    /// Capacity-clamped demand actually allocated.
    pub demand: JobDemand,
    /// Node split across per-node flavour pools.
    pub assignment: NodeAssignment,
    /// Wasted per-node capacity (GB) of this placement (0 off SSD systems).
    pub wasted_ssd_gb: f64,
    /// Estimated completion (`now + walltime`), the backfill planning time.
    pub est_end: f64,
    /// Which invocation phase started the job.
    pub reason: StartReason,
}

/// Callbacks the scheduler core raises as a run unfolds.
///
/// All methods have empty default bodies so observers implement only what
/// they care about. Observers run synchronously inside the invocation;
/// keep them cheap.
pub trait SchedObserver {
    /// A scheduling invocation is starting (the queue is non-empty).
    fn on_invocation_begin(&mut self, _now: f64, _invocation: u64, _queue_len: usize) {}

    /// The scheduling window was built; `window_ids` are the ids of the
    /// member jobs in base-scheduler priority order.
    fn on_window_built(&mut self, _now: f64, _window_ids: &[u64]) {}

    /// A job started (any phase; see [`JobStart::reason`]).
    fn on_job_started(&mut self, _start: &JobStart<'_>) {}

    /// The core made a decision ([`Decision::Start`] fires alongside
    /// [`SchedObserver::on_job_started`]; [`Decision::Reserve`] has no
    /// other callback).
    fn on_decision(&mut self, _now: f64, _decision: &Decision) {}

    /// The driver reported a job's completion.
    fn on_job_finished(&mut self, _now: f64, _job: &Job, _demand: &JobDemand) {}

    /// The backfill phase of this invocation finished. `started` counts
    /// only jobs the strategy itself credited as backfilled (the head of
    /// the queue starting because capacity freed up is not credited,
    /// matching the paper's accounting).
    fn on_backfill_pass(&mut self, _now: f64, _algorithm: &'static str, _started: usize) {}

    /// The scheduling invocation finished; `started` is the total number
    /// of jobs started by all phases of this invocation.
    fn on_invocation_end(&mut self, _now: f64, _started: usize) {}

    /// The driver declared the event stream over (the simulator: its
    /// event loop ran dry).
    fn on_sim_end(&mut self, _makespan: f64, _invocations: u64) {}
}

/// The core's first observer: collects [`JobRecord`]s and the run
/// counters, reproducing the historical `Simulator::run` result exactly.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    records: Vec<JobRecord>,
    makespan: f64,
    invocations: u64,
    backfilled: usize,
    starvation_forced: usize,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records collected so far (start order within the run, unsorted).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Packages the collected stream as a [`SimResult`]. Records are
    /// sorted by `(start, id)` exactly as the monolithic loop did.
    pub fn into_result(
        mut self,
        policy: String,
        base: String,
        system: SystemConfig,
        clamped_jobs: usize,
    ) -> SimResult {
        self.records.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.id.cmp(&b.id)));
        SimResult {
            policy,
            base,
            system,
            records: self.records,
            makespan: self.makespan,
            invocations: self.invocations,
            clamped_jobs,
            backfilled: self.backfilled,
            starvation_forced: self.starvation_forced,
        }
    }
}

impl SchedObserver for Recorder {
    fn on_invocation_begin(&mut self, _now: f64, _invocation: u64, _queue_len: usize) {
        self.invocations += 1;
    }

    fn on_job_started(&mut self, start: &JobStart<'_>) {
        let job = start.job;
        self.records.push(JobRecord {
            id: job.id,
            submit: job.submit,
            start: start.now,
            end: start.now + job.runtime,
            runtime: job.runtime,
            walltime: job.walltime,
            nodes: start.demand.nodes,
            bb_gb: start.demand.bb_gb,
            ssd_gb_per_node: start.demand.ssd_gb_per_node,
            extra: start.demand.extra,
            assignment: start.assignment,
            wasted_ssd_gb: start.wasted_ssd_gb,
            reason: start.reason,
        });
        if start.reason == StartReason::Starvation {
            self.starvation_forced += 1;
        }
    }

    fn on_job_finished(&mut self, now: f64, _job: &Job, _demand: &JobDemand) {
        self.makespan = self.makespan.max(now);
    }

    fn on_backfill_pass(&mut self, _now: f64, _algorithm: &'static str, started: usize) {
        self.backfilled += started;
    }
}

/// Captures the canonical decision stream: one [`Decision::json_line`]
/// per decision, in the order the core made them. Attaching one of these
/// to the simulator yields the exact byte stream `cli replay` prints for
/// the equivalent event file — the driver-equivalence suites diff the
/// two.
#[derive(Clone, Debug, Default)]
pub struct DecisionLog {
    lines: Vec<String>,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured decision lines, in decision order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the log, returning the lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

impl SchedObserver for DecisionLog {
    fn on_decision(&mut self, now: f64, decision: &Decision) {
        self.lines.push(decision.json_line(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_counts_reasons_and_backfill_credit() {
        let mut r = Recorder::new();
        let job = Job::new(3, 1.0, 4, 10.0, 20.0);
        let demand = JobDemand::cpu_bb(4, 0.0);
        for reason in [StartReason::Policy, StartReason::Starvation, StartReason::Backfill] {
            r.on_job_started(&JobStart {
                now: 5.0,
                job: &job,
                demand,
                assignment: NodeAssignment::default(),
                wasted_ssd_gb: 0.0,
                est_end: 25.0,
                reason,
            });
        }
        // Backfill credit comes from the pass callback, not the reason.
        r.on_backfill_pass(5.0, "EASY", 2);
        r.on_invocation_begin(5.0, 1, 3);
        r.on_job_finished(15.0, &job, &demand);
        let result = r.into_result("p".into(), "FCFS".into(), test_system(), 0);
        assert_eq!(result.records.len(), 3);
        assert_eq!(result.starvation_forced, 1);
        assert_eq!(result.backfilled, 2);
        assert_eq!(result.invocations, 1);
        assert_eq!(result.makespan, 15.0);
    }

    #[test]
    fn decision_log_captures_json_lines_in_order() {
        let mut log = DecisionLog::new();
        let start = Decision::Start { idx: 0, id: 1, reason: StartReason::Policy, est_end: 10.0 };
        let reserve = Decision::Reserve { idx: 1, id: 2, at: 10.0 };
        log.on_decision(0.0, &start);
        log.on_decision(0.0, &reserve);
        assert_eq!(log.lines().len(), 2);
        assert_eq!(log.lines()[0], start.json_line(0.0));
        assert_eq!(log.lines()[1], reserve.json_line(0.0));
        assert_eq!(log.into_lines().len(), 2);
    }

    fn test_system() -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes: 8,
            bb_gb: 10.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }
}
