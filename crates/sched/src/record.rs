//! Per-job execution records and the simulation result bundle.

use bbsched_core::pools::NodeAssignment;
use bbsched_core::resource::MAX_EXTRA;
use bbsched_workloads::SystemConfig;
use serde::{Deserialize, Serialize};

/// How a job came to start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartReason {
    /// Chosen by the multi-resource selection policy from the window.
    Policy,
    /// Started by EASY backfilling.
    Backfill,
    /// Forced by the §3.1 starvation bound.
    Starvation,
}

impl StartReason {
    /// Lower-case wire label used in decision-stream lines
    /// ([`crate::Decision::json_line`]).
    pub fn label(self) -> &'static str {
        match self {
            StartReason::Policy => "policy",
            StartReason::Backfill => "backfill",
            StartReason::Starvation => "starvation",
        }
    }
}

/// The outcome of one job's passage through the simulated system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Trace job id.
    pub id: u64,
    /// Submission time (s).
    pub submit: f64,
    /// Start time (s).
    pub start: f64,
    /// Completion time (s) = start + runtime.
    pub end: f64,
    /// Actual runtime (s).
    pub runtime: f64,
    /// Requested walltime (s).
    pub walltime: f64,
    /// Compute nodes used.
    pub nodes: u32,
    /// Shared burst buffer used (GB).
    pub bb_gb: f64,
    /// Local SSD request per node (GB).
    pub ssd_gb_per_node: f64,
    /// Demands on the system's extra resources, by registration slot.
    #[serde(default)]
    pub extra: [f64; MAX_EXTRA],
    /// Node split across the 128/256 GB SSD pools.
    pub assignment: NodeAssignment,
    /// Wasted local SSD (GB) over the job's nodes (0 on non-SSD systems).
    pub wasted_ssd_gb: f64,
    /// How the job started.
    pub reason: StartReason,
}

impl JobRecord {
    /// Wait time: submission to start (§4.2).
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }

    /// Response time: wait plus runtime.
    pub fn response(&self) -> f64 {
        self.end - self.submit
    }

    /// Slowdown: response time over runtime (§4.2).
    pub fn slowdown(&self) -> f64 {
        self.response() / self.runtime.max(f64::MIN_POSITIVE)
    }
}

/// Everything a simulation run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the selection policy that ran.
    pub policy: String,
    /// Name of the base scheduler.
    pub base: String,
    /// The simulated system.
    pub system: SystemConfig,
    /// Per-job records, in completion order. Every trace job appears
    /// exactly once.
    pub records: Vec<JobRecord>,
    /// Simulated makespan: time the last job completed (s).
    pub makespan: f64,
    /// Number of scheduling invocations performed.
    pub invocations: u64,
    /// Jobs whose demand had to be clamped to system capacity to avoid an
    /// unschedulable queue head (should be 0 on calibrated traces).
    pub clamped_jobs: usize,
    /// Jobs started through backfilling.
    pub backfilled: usize,
    /// Jobs force-started by the starvation bound.
    pub starvation_forced: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            id: 1,
            submit: 100.0,
            start: 160.0,
            end: 460.0,
            runtime: 300.0,
            walltime: 600.0,
            nodes: 4,
            bb_gb: 10.0,
            ssd_gb_per_node: 0.0,
            extra: [0.0; MAX_EXTRA],
            assignment: NodeAssignment::default(),
            wasted_ssd_gb: 0.0,
            reason: StartReason::Policy,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = record();
        assert_eq!(r.wait(), 60.0);
        assert_eq!(r.response(), 360.0);
        assert!((r.slowdown() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let r = record();
        let s = serde_json::to_string(&r).unwrap();
        let back: JobRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }
}
