//! Base schedulers: the site-policy priority order (§2.1).
//!
//! "BBSched is built as a plug-in to a base scheduler which enforces job
//! priority according to a site's policy." The paper pairs Cori workloads
//! with **FCFS** (Slurm's default order) and Theta workloads with **WFP**,
//! ALCF's utility-based policy that "periodically calculates a priority
//! increment for each waiting job" and favours large, old, short-walltime
//! jobs. We use Cobalt's published WFP score,
//! `(wait / walltime)³ × nodes`, recomputed at every scheduling invocation.

use bbsched_workloads::Job;
use serde::{Deserialize, Serialize};

/// The base scheduling policy ordering the waiting queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseScheduler {
    /// First-come, first-served (submit-time order). Used with Cori.
    Fcfs,
    /// WFP utility scheduling (Cobalt/ALCF). Used with Theta.
    Wfp,
}

impl BaseScheduler {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BaseScheduler::Fcfs => "FCFS",
            BaseScheduler::Wfp => "WFP",
        }
    }

    /// Priority score of a waiting job at time `now`; **higher runs
    /// earlier**.
    pub fn score(&self, job: &Job, now: f64) -> f64 {
        match self {
            // FCFS: earlier submission = higher priority.
            BaseScheduler::Fcfs => -job.submit,
            BaseScheduler::Wfp => {
                let wait = (now - job.submit).max(0.0);
                let walltime = job.walltime.max(1.0);
                (wait / walltime).powi(3) * f64::from(job.nodes)
            }
        }
    }

    /// Sorts queue entries (indices into `jobs`) by descending priority,
    /// breaking ties by submit time then id for determinism.
    pub fn order(&self, queue: &mut [usize], jobs: &[Job], now: f64) {
        queue.sort_by(|&a, &b| {
            let sa = self.score(&jobs[a], now);
            let sb = self.score(&jobs[b], now);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    jobs[a].submit.partial_cmp(&jobs[b].submit).unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| jobs[a].id.cmp(&jobs[b].id))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submit: f64, nodes: u32, walltime: f64) -> Job {
        Job::new(id, submit, nodes, walltime / 2.0, walltime)
    }

    #[test]
    fn fcfs_orders_by_submit() {
        let jobs = vec![job(0, 50.0, 1, 100.0), job(1, 10.0, 1, 100.0), job(2, 30.0, 1, 100.0)];
        let mut q = vec![0, 1, 2];
        BaseScheduler::Fcfs.order(&mut q, &jobs, 100.0);
        assert_eq!(q, vec![1, 2, 0]);
    }

    #[test]
    fn wfp_favours_large_jobs() {
        // Same wait and walltime, different sizes.
        let jobs = vec![job(0, 0.0, 8, 100.0), job(1, 0.0, 1024, 100.0)];
        let mut q = vec![0, 1];
        BaseScheduler::Wfp.order(&mut q, &jobs, 50.0);
        assert_eq!(q, vec![1, 0], "the 1024-node job outranks the 8-node job");
    }

    #[test]
    fn wfp_favours_short_walltime() {
        let jobs = vec![Job::new(0, 0.0, 100, 50.0, 36_000.0), Job::new(1, 0.0, 100, 50.0, 600.0)];
        let mut q = vec![0, 1];
        BaseScheduler::Wfp.order(&mut q, &jobs, 1_000.0);
        assert_eq!(q, vec![1, 0], "shorter walltime climbs faster");
    }

    #[test]
    fn wfp_priority_grows_with_wait() {
        let j = job(0, 0.0, 100, 1_000.0);
        let early = BaseScheduler::Wfp.score(&j, 100.0);
        let late = BaseScheduler::Wfp.score(&j, 10_000.0);
        assert!(late > early);
    }

    #[test]
    fn wfp_zero_wait_is_zero_score() {
        let j = job(0, 500.0, 100, 1_000.0);
        assert_eq!(BaseScheduler::Wfp.score(&j, 500.0), 0.0);
        // Clock skew (now < submit) clamps to zero rather than negative.
        assert_eq!(BaseScheduler::Wfp.score(&j, 400.0), 0.0);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let jobs = vec![job(5, 10.0, 1, 100.0), job(3, 10.0, 1, 100.0)];
        let mut q = vec![0, 1];
        BaseScheduler::Fcfs.order(&mut q, &jobs, 100.0);
        assert_eq!(q, vec![1, 0], "equal submit: lower id first");
    }
}
