//! A sparse-clearing bitset over job indices.
//!
//! The engine tracks "which jobs started during this invocation" and the
//! queue subtracts that set on cleanup. A `HashSet<usize>` makes every
//! membership probe hash and chase buckets — inside `Vec::retain` over a
//! long queue that is the dominant cleanup cost at large trace sizes.
//! [`JobSet`] stores one bit per job index, so probes are a shift and a
//! mask, and clearing touches only the words of bits actually set (the
//! handful of jobs started per invocation, not the whole trace).

/// A set of job indices backed by a bitset, with O(set bits) clearing.
#[derive(Clone, Debug, Default)]
pub struct JobSet {
    words: Vec<u64>,
    /// Members in insertion order (also the dirty-word list for clearing).
    members: Vec<usize>,
}

impl JobSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `idx` is a member.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        self.words.get(idx / 64).is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Inserts `idx`, growing the bitset as needed. Returns whether the
    /// index was newly inserted.
    pub fn insert(&mut self, idx: usize) -> bool {
        let word = idx / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (idx % 64);
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.members.push(idx);
        true
    }

    /// Members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().copied()
    }

    /// Empties the set, clearing only the words that have bits set.
    pub fn clear(&mut self) {
        for &idx in &self.members {
            self.words[idx / 64] = 0;
        }
        self.members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = JobSet::new();
        assert!(!s.contains(0));
        assert!(!s.contains(1_000));
        assert!(s.insert(5));
        assert!(s.insert(64));
        assert!(s.insert(1_000));
        assert!(!s.insert(5), "double insert reports existing membership");
        assert!(s.contains(5) && s.contains(64) && s.contains(1_000));
        assert!(!s.contains(6) && !s.contains(63) && !s.contains(999));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 1_000]);
    }

    #[test]
    fn clear_resets_all_members() {
        let mut s = JobSet::new();
        for i in [0usize, 63, 64, 127, 128, 900] {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        for i in [0usize, 63, 64, 127, 128, 900] {
            assert!(!s.contains(i), "bit {i} survived clear");
        }
        // The set is reusable after clearing.
        assert!(s.insert(63));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn probes_beyond_capacity_are_false() {
        let mut s = JobSet::new();
        s.insert(3);
        assert!(!s.contains(usize::MAX / 128));
    }
}
