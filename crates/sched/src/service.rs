//! The scheduler-service core: snapshot-in, decisions-out.
//!
//! BBSched is a *plugin* for production batch schedulers (§3: it sits on
//! top of Slurm/Cobalt and is handed the queue at every scheduling
//! invocation). [`SchedCore`] is that plugin as a standalone service: it
//! owns the waiting queue ([`crate::QueueManager`]), the allocation
//! ledger ([`crate::AllocLedger`]), the backfill strategy, the
//! window/starvation state, and the selection policy, and exposes a
//! narrow imperative API —
//!
//! * [`SchedCore::submit`] — a job (with its capacity-clamped demand)
//!   enters the queue;
//! * [`SchedCore::job_finished`] — a running job's resources return;
//! * [`SchedCore::invoke`] — run one scheduling invocation at `now` and
//!   return the [`Decision`]s it made.
//!
//! The core never advances time and never decides *when* to be invoked —
//! that is the driver's job. The discrete-event simulator
//! (`bbsched-sim`) is the first driver: it owns virtual time and the
//! completion-event heap, feeds arrivals/finishes in, and applies start
//! decisions by scheduling completion events. The online replay driver
//! ([`crate::replay`]) is the second: it steps through a newline-delimited
//! event stream in real submission order. Both produce byte-identical
//! decision streams for the same event sequence — proven by the
//! driver-equivalence golden suite.
//!
//! Every invocation runs the six phases the monolithic engine used to
//! inline:
//!
//! 1. the base scheduler establishes queue priority order (§2.1);
//! 2. the window (§3.1) is filled with the highest-priority jobs whose
//!    dependencies are complete;
//! 3. jobs past the starvation bound are force-started (or, if they no
//!    longer fit, become the reservation head so nothing delays them);
//! 4. the multi-resource selection policy picks window jobs to start;
//! 5. the backfill strategy starts any remaining candidate that fits now
//!    without delaying the reservation head, using *walltime estimates*
//!    exactly like a production scheduler;
//! 6. starvation bookkeeping and queue cleanup.

use crate::alloc::AllocLedger;
use crate::backfill::{BackfillCtx, BackfillStrategy};
use crate::config::{BackfillScope, SchedConfig};
use crate::error::SchedError;
use crate::idhash::BuildIdHasher;
use crate::jobset::JobSet;
use crate::observer::{JobStart, SchedObserver};
use crate::record::StartReason;
use crate::state::{CoreSnapshot, PolicySnapshot};
use bbsched_core::problem::JobDemand;
use bbsched_core::window::{fill_window, StarvationTracker};
use bbsched_policies::SelectionPolicy;
use bbsched_workloads::{Job, SystemConfig};
use serde::Value;
use std::collections::{HashMap, HashSet};

/// One scheduling decision, as returned by [`SchedCore::invoke`].
///
/// This is the core's entire output vocabulary. `Start` is binding — the
/// ledger has already allocated and the driver must consider the job
/// running until it reports [`SchedCore::job_finished`]. `Reserve` is
/// advisory planning state (the EASY shadow reservation, or a
/// conservative-backfill reservation): it tells the driver *why* a job
/// did not start, and where the strategy currently plans to place it; the
/// next invocation recomputes reservations from scratch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Job `id` starts now.
    Start {
        /// Dense submission index of the job (per [`SchedCore::submit`]).
        idx: usize,
        /// Trace/job id.
        id: u64,
        /// Which phase started the job.
        reason: StartReason,
        /// Walltime-estimated completion (`now + walltime`) — the time
        /// the ledger will hold the resources for planning purposes.
        est_end: f64,
    },
    /// Job `id` could not start; the backfill strategy reserved capacity
    /// for it at time `at`.
    Reserve {
        /// Dense submission index of the job.
        idx: usize,
        /// Trace/job id.
        id: u64,
        /// Reservation time on the availability profile (EASY: the
        /// shadow time).
        at: f64,
    },
}

impl Decision {
    /// Renders the decision as one canonical JSON line, stamped with the
    /// invocation time `now`. Both drivers emit this exact encoding
    /// (floats in shortest-round-trip form), which is what makes decision
    /// streams byte-comparable across drivers.
    pub fn json_line(&self, now: f64) -> String {
        let map = match *self {
            Decision::Start { id, reason, est_end, .. } => vec![
                ("t".to_string(), Value::F64(now)),
                ("decision".to_string(), Value::Str("start".to_string())),
                ("job".to_string(), Value::U64(id)),
                ("reason".to_string(), Value::Str(reason.label().to_string())),
                ("est_end".to_string(), Value::F64(est_end)),
            ],
            Decision::Reserve { id, at, .. } => vec![
                ("t".to_string(), Value::F64(now)),
                ("decision".to_string(), Value::Str("reserve".to_string())),
                ("job".to_string(), Value::U64(id)),
                ("at".to_string(), Value::F64(at)),
            ],
        };
        serde_json::to_string(&RawValue(Value::Map(map))).expect("decision maps always serialize")
    }
}

/// Adapter rendering an already-built [`Value`] tree through
/// `serde_json` (whose entry points take `impl Serialize`, which the
/// vendored `Value` itself does not implement).
pub(crate) struct RawValue(pub(crate) Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Per-invocation scratch buffers, owned by the core and reused across
/// invocations so the hot loop allocates nothing once capacities warm up.
#[derive(Default)]
struct Scratch {
    window_idx: Vec<usize>,
    window_ids: Vec<u64>,
    remaining: Vec<usize>,
    sel_demands: Vec<JobDemand>,
    waiting: Vec<usize>,
    started_ids: Vec<u64>,
}

/// Mutable state shared between the core and the backfill phase: the
/// job/demand tables, the allocation ledger, the observer set, and the
/// decision buffer. Split out so [`BackfillCtx`] can borrow it while the
/// invocation keeps hold of the queue and tracker.
pub(crate) struct CoreState<'o> {
    pub(crate) jobs: Vec<Job>,
    pub(crate) demands: Vec<JobDemand>,
    pub(crate) ledger: AllocLedger,
    pub(crate) observers: Vec<&'o mut dyn SchedObserver>,
    /// Jobs started during the current invocation (bitset: probed inside
    /// the queue-cleanup and backfill loops, cleared per invocation).
    pub(crate) started: JobSet,
    /// Backfill starts the strategy credited this pass (see
    /// [`BackfillCtx::start`]).
    pub(crate) backfill_credit: usize,
    /// Decisions of the current invocation, in the order they were made.
    pub(crate) decisions: Vec<Decision>,
    /// Invocation time, valid while an invocation is running (decision
    /// callbacks stamp it).
    pub(crate) now: f64,
}

impl CoreState<'_> {
    fn notify(&mut self, mut f: impl FnMut(&mut dyn SchedObserver)) {
        for o in self.observers.iter_mut() {
            f(*o);
        }
    }

    /// Allocates, records the start decision, and notifies observers.
    /// The single funnel every phase starts jobs through.
    pub(crate) fn start_job(&mut self, idx: usize, now: f64, reason: StartReason) {
        let job = &self.jobs[idx];
        let demand = self.demands[idx];
        let est_end = now + job.walltime;
        let assignment = self.ledger.start(idx, demand, est_end);
        let wasted_ssd_gb = self.ledger.pool().wasted_capacity_gb(&demand, &assignment);
        let decision = Decision::Start { idx, id: self.jobs[idx].id, reason, est_end };
        self.decisions.push(decision);
        let start = JobStart {
            now,
            job: &self.jobs[idx],
            demand,
            assignment,
            wasted_ssd_gb,
            est_end,
            reason,
        };
        for o in self.observers.iter_mut() {
            o.on_job_started(&start);
            o.on_decision(now, &decision);
        }
        self.started.insert(idx);
    }

    /// Records a reservation decision (see [`Decision::Reserve`]).
    pub(crate) fn note_reservation(&mut self, idx: usize, at: f64) {
        let decision = Decision::Reserve { idx, id: self.jobs[idx].id, at };
        self.decisions.push(decision);
        let now = self.now;
        self.notify(|o| o.on_decision(now, &decision));
    }
}

/// The driver-agnostic scheduler-service core. Construct with
/// [`SchedCore::new`], feed with [`SchedCore::submit`] and
/// [`SchedCore::job_finished`], and run scheduling invocations with
/// [`SchedCore::invoke`].
pub struct SchedCore<'o> {
    cfg: SchedConfig,
    policy: Box<dyn SelectionPolicy>,
    state: CoreState<'o>,
    queue: crate::queue::QueueManager,
    backfill: Box<dyn BackfillStrategy>,
    completed_ids: HashSet<u64, BuildIdHasher>,
    id_to_idx: HashMap<u64, usize, BuildIdHasher>,
    tracker: StarvationTracker,
    invocations: u64,
    /// Queued jobs that declared dependencies. While zero (the common
    /// trace shape), queue-scoped backfilling sees the queue itself as
    /// its candidate list, which makes the kinetic stable prefix a
    /// valid O(1) unchanged-prefix witness for the conservative
    /// strategy's memo replay (see [`BackfillCtx::stable_prefix`]).
    queued_with_deps: usize,
    scratch: Scratch,
}

impl<'o> SchedCore<'o> {
    /// A core scheduling `system`'s resources under `cfg` and `policy`,
    /// with the given observers attached. Fails on an invalid system or
    /// configuration.
    pub fn new(
        system: &SystemConfig,
        cfg: SchedConfig,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, SchedError> {
        system.validate()?;
        cfg.validate()?;
        let queue = crate::queue::QueueManager::new(cfg.base);
        let backfill = cfg.backfill_algorithm.strategy();
        Ok(Self {
            state: CoreState {
                jobs: Vec::new(),
                demands: Vec::new(),
                ledger: AllocLedger::new(system.pool_state()),
                observers,
                started: JobSet::new(),
                backfill_credit: 0,
                decisions: Vec::new(),
                now: 0.0,
            },
            cfg,
            policy,
            queue,
            backfill,
            completed_ids: HashSet::default(),
            id_to_idx: HashMap::default(),
            tracker: StarvationTracker::new(),
            invocations: 0,
            queued_with_deps: 0,
            scratch: Scratch::default(),
        })
    }

    /// Submits a job with its capacity-clamped `demand` (see
    /// [`crate::clamp_demand`]); it joins the waiting queue and becomes a
    /// candidate at the next invocation. Returns the job's dense
    /// submission index. Duplicate ids are rejected — the id is the
    /// handle [`SchedCore::job_finished`] keys on.
    ///
    /// Submission order need not follow submit *times*: the FCFS queue
    /// inserts by `(submit, id)` and WFP re-scores per invocation, so
    /// events arriving out of order within one invocation tick land in
    /// the same queue order.
    pub fn submit(&mut self, job: Job, demand: JobDemand) -> Result<usize, SchedError> {
        let idx = self.state.jobs.len();
        if self.id_to_idx.insert(job.id, idx).is_some() {
            return Err(SchedError::DuplicateJob(job.id));
        }
        self.state.jobs.push(job);
        self.state.demands.push(demand);
        if !self.state.jobs[idx].deps.is_empty() {
            self.queued_with_deps += 1;
        }
        self.queue.push(idx, &self.state.jobs);
        Ok(idx)
    }

    /// Reports that job `id` finished at `now`: its allocation returns to
    /// the pool and its dependents become window-eligible. Fails on an id
    /// that was never submitted or is not currently running.
    pub fn job_finished(&mut self, id: u64, now: f64) -> Result<(), SchedError> {
        let &idx = self.id_to_idx.get(&id).ok_or(SchedError::UnknownJob(id))?;
        if self.state.ledger.get(idx).is_none() {
            return Err(SchedError::UnknownJob(id));
        }
        let entry = self.state.ledger.finish(idx);
        self.completed_ids.insert(id);
        for o in self.state.observers.iter_mut() {
            o.on_job_finished(now, &self.state.jobs[idx], &entry.demand);
        }
        Ok(())
    }

    /// Runs one scheduling invocation at time `now` and returns the
    /// decisions it made, in order. An invocation with an empty queue is
    /// a no-op (it is not counted and raises no callbacks), so drivers
    /// may invoke unconditionally after every batch of events.
    ///
    /// Invocation times must not regress: the starvation bookkeeping and
    /// the backfill strategies' profiles assume monotonically
    /// non-decreasing `now` across calls.
    pub fn invoke(&mut self, now: f64) -> &[Decision] {
        self.state.decisions.clear();
        if self.queue.is_empty() {
            return &self.state.decisions;
        }
        self.invocations += 1;
        self.state.now = now;

        let invocation = self.invocations;
        let queue_len = self.queue.len();
        self.state.notify(|o| o.on_invocation_begin(now, invocation, queue_len));
        let mut scratch = std::mem::take(&mut self.scratch);

        // --- (1) base-scheduler priority order ---
        self.queue.order(&self.state.jobs, now);

        // --- (2) fill the window with dependency-satisfied jobs ---
        let window_size =
            self.cfg.dynamic_window.map(|d| d.size_for(queue_len)).unwrap_or(self.cfg.window.size);
        scratch.window_idx.clear();
        scratch.window_ids.clear();
        {
            let jobs = &self.state.jobs;
            let queue = self.queue.as_slice();
            let completed = &self.completed_ids;
            let deps_met =
                |qpos: usize| jobs[queue[qpos]].deps.iter().all(|d| completed.contains(d));
            let window_qpos = fill_window(queue_len, window_size, deps_met);
            scratch.window_idx.extend(window_qpos.iter().map(|&q| queue[q]));
            scratch.window_ids.extend(scratch.window_idx.iter().map(|&i| jobs[i].id));
        }
        {
            let window_ids = &scratch.window_ids;
            self.state.notify(|o| o.on_window_built(now, window_ids));
        }

        self.state.started.clear();

        // --- (3) starvation bound (§3.1) ---
        // Jobs past the bound start immediately when they fit. A starved
        // job that does not fit becomes the reservation head: optimization
        // continues, but only inside the slack that cannot delay it.
        let mut blocked_head: Option<usize> = None;
        for &idx in &scratch.window_idx {
            if self.tracker.is_starved(self.state.jobs[idx].id, self.cfg.window.starvation_bound) {
                if self.state.ledger.fits(&self.state.demands[idx]) {
                    self.state.start_job(idx, now, StartReason::Starvation);
                } else {
                    blocked_head = Some(idx);
                    break;
                }
            }
        }

        // --- (4) multi-resource selection from the window ---
        // With a starved reservation head, the policy sees only the
        // component-wise minimum of "free now" and "left over at the
        // head's shadow time" — any selection within that bound cannot
        // delay the head.
        let policy_avail = match blocked_head {
            None => *self.state.ledger.pool(),
            Some(b) => {
                let (_, leftover) = crate::backfill::shadow_and_leftover(
                    &self.state.ledger,
                    &self.state.demands[b],
                    now,
                );
                self.state.ledger.pool().component_min(&leftover)
            }
        };
        scratch.remaining.clear();
        {
            let started = &self.state.started;
            scratch.remaining.extend(
                scratch
                    .window_idx
                    .iter()
                    .copied()
                    .filter(|i| !started.contains(*i) && Some(*i) != blocked_head),
            );
        }
        if !scratch.remaining.is_empty() {
            scratch.sel_demands.clear();
            scratch.sel_demands.extend(scratch.remaining.iter().map(|&i| self.state.demands[i]));
            let selection = self.policy.select(&scratch.sel_demands, &policy_avail, invocation);
            debug_assert!(
                bbsched_policies::selection_is_feasible(
                    &scratch.sel_demands,
                    &policy_avail,
                    &selection
                ),
                "policy {} returned an infeasible selection",
                self.policy.name()
            );
            for &s in &selection {
                self.state.start_job(scratch.remaining[s], now, StartReason::Policy);
            }
        }

        // --- (5) backfilling, behind the strategy object ---
        scratch.waiting.clear();
        match self.cfg.backfill {
            BackfillScope::Window => {
                let started = &self.state.started;
                scratch
                    .waiting
                    .extend(scratch.window_idx.iter().copied().filter(|i| !started.contains(*i)));
            }
            BackfillScope::Queue => {
                let started = &self.state.started;
                let jobs = &self.state.jobs;
                let completed = &self.completed_ids;
                scratch.waiting.extend(self.queue.as_slice().iter().copied().filter(|i| {
                    !started.contains(*i) && jobs[*i].deps.iter().all(|d| completed.contains(d))
                }));
            }
        }
        self.state.backfill_credit = 0;
        // O(1) unchanged-prefix witness for the strategy's memo replay:
        // under queue scope with nothing started this invocation and no
        // dependency filtering anywhere in the queue, `waiting` *is* the
        // queue slice, so the kinetic index's sealed stable prefix
        // certifies that many leading candidates unchanged since the
        // previous invocation. Report `0` (prove nothing) otherwise —
        // strategies fall back to comparing.
        let stable_prefix = if matches!(self.cfg.backfill, BackfillScope::Queue)
            && self.state.started.is_empty()
            && self.queued_with_deps == 0
        {
            self.queue.stable_prefix()
        } else {
            0
        };
        let mut ctx = BackfillCtx {
            now,
            waiting: &scratch.waiting,
            blocked_head,
            max_scan: self.cfg.max_backfill_scan,
            stable_prefix,
            core: &mut self.state,
        };
        self.backfill.pass(&mut ctx);
        let credited = self.state.backfill_credit;
        let algorithm = self.backfill.name();
        self.state.notify(|o| o.on_backfill_pass(now, algorithm, credited));

        // --- (6) starvation bookkeeping & queue cleanup ---
        // A pass only counts against the bound when the job was
        // *bypassed*: some other job started while it sat in the window.
        // Idle invocations (nothing startable) are not bypasses — counting
        // them would make the bound fire on event frequency rather than on
        // actual priority inversion.
        if !self.state.started.is_empty() {
            scratch.started_ids.clear();
            {
                let started = &self.state.started;
                let jobs = &self.state.jobs;
                scratch.started_ids.extend(
                    scratch
                        .window_idx
                        .iter()
                        .filter(|i| started.contains(**i))
                        .map(|&i| jobs[i].id),
                );
            }
            self.tracker.observe(&scratch.window_ids, &scratch.started_ids);
            for i in self.state.started.iter() {
                self.tracker.forget(self.state.jobs[i].id);
            }
        }
        if self.queued_with_deps > 0 {
            for i in self.state.started.iter() {
                if !self.state.jobs[i].deps.is_empty() {
                    self.queued_with_deps -= 1;
                }
            }
        }
        self.queue.remove_started(&self.state.started);
        let started_count = self.state.started.len();
        self.state.notify(|o| o.on_invocation_end(now, started_count));
        self.scratch = scratch;
        &self.state.decisions
    }

    /// Signals the end of the event stream: raises
    /// [`SchedObserver::on_sim_end`] with the final makespan. The core
    /// remains usable (a driver may keep feeding events), but a finished
    /// run should call this exactly once.
    pub fn end_of_stream(&mut self, makespan: f64) {
        let invocations = self.invocations;
        self.state.notify(|o| o.on_sim_end(makespan, invocations));
    }

    /// The job at dense submission index `idx`.
    pub fn job(&self, idx: usize) -> &Job {
        &self.state.jobs[idx]
    }

    /// The capacity-clamped demand of job `idx`.
    pub fn demand(&self, idx: usize) -> JobDemand {
        self.state.demands[idx]
    }

    /// Jobs submitted so far.
    pub fn jobs_submitted(&self) -> usize {
        self.state.jobs.len()
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Scheduling invocations run so far (empty-queue no-ops excluded).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Read access to the allocation ledger (free state, running set,
    /// conservation checks).
    pub fn ledger(&self) -> &AllocLedger {
        &self.state.ledger
    }

    /// Name of the selection policy the core runs.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Asserts every allocation was freed (see
    /// [`AllocLedger::assert_drained`]). Drivers that run a stream to
    /// completion call this at the end; an online driver with jobs still
    /// running must not.
    pub fn assert_drained(&self) {
        self.state.ledger.assert_drained();
    }

    /// Extracts the core's complete cross-invocation state as one owned
    /// [`CoreSnapshot`] (see [`crate::state`] for the contract and for
    /// what a snapshot deliberately does *not* capture). Only meaningful
    /// *between* invocations — never call it from an observer callback.
    pub fn snapshot(&self) -> CoreSnapshot {
        let mut completed: Vec<u64> = self.completed_ids.iter().copied().collect();
        completed.sort_unstable();
        CoreSnapshot {
            schema_version: CoreSnapshot::SCHEMA_VERSION,
            config: self.cfg.clone(),
            jobs: self.state.jobs.clone(),
            demands: self.state.demands.clone(),
            queue: self.queue.snapshot(),
            ledger: self.state.ledger.snapshot(),
            backfill: self.backfill.snapshot_state(),
            starvation: self.tracker.entries(),
            completed,
            invocations: self.invocations,
            clock: self.state.now,
            policy: PolicySnapshot {
                name: self.policy.name().to_string(),
                state: self.policy.snapshot_state(),
            },
        }
    }

    /// Rebuilds a core from an extracted [`CoreSnapshot`], continuing
    /// byte-identically where the snapshotted core left off.
    ///
    /// The policy and observers are supplied fresh: observers are
    /// driver-owned borrows a snapshot cannot capture, and the policy is
    /// a trait object the caller rebuilds (or *replaces* — restoring
    /// under a different policy is the what-if fork primitive). Policy
    /// state recorded in the snapshot is injected only when the supplied
    /// policy has the same name; a same-name policy that rejects the
    /// state makes the snapshot [`SchedError::CorruptSnapshot`].
    ///
    /// Every structural invariant of the snapshot is validated up front —
    /// schema version, config, id uniqueness, queue/ledger consistency —
    /// so a corrupt snapshot is a typed error, never a later panic.
    pub fn restore(
        snapshot: CoreSnapshot,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, SchedError> {
        if snapshot.schema_version != CoreSnapshot::SCHEMA_VERSION {
            return Err(SchedError::SnapshotVersion {
                found: snapshot.schema_version,
                expected: CoreSnapshot::SCHEMA_VERSION,
            });
        }
        snapshot.config.validate()?;
        if snapshot.jobs.len() != snapshot.demands.len() {
            return Err(SchedError::CorruptSnapshot(format!(
                "{} jobs but {} demands",
                snapshot.jobs.len(),
                snapshot.demands.len()
            )));
        }
        let mut id_to_idx: HashMap<u64, usize, BuildIdHasher> = HashMap::default();
        for (idx, job) in snapshot.jobs.iter().enumerate() {
            if id_to_idx.insert(job.id, idx).is_some() {
                return Err(SchedError::CorruptSnapshot(format!("duplicate job id {}", job.id)));
            }
        }
        if snapshot.queue.base != snapshot.config.base {
            return Err(SchedError::CorruptSnapshot(format!(
                "queue discipline {:?} disagrees with configured base {:?}",
                snapshot.queue.base, snapshot.config.base
            )));
        }
        let ledger = AllocLedger::restore(snapshot.ledger)?;
        for (idx, _) in ledger.release_order() {
            if idx >= snapshot.jobs.len() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "running job index {idx} out of range ({} jobs)",
                    snapshot.jobs.len()
                )));
            }
        }
        for &idx in &snapshot.queue.queue {
            if idx >= snapshot.jobs.len() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "queued job index {idx} out of range ({} jobs)",
                    snapshot.jobs.len()
                )));
            }
            if ledger.get(idx).is_some() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "queued job index {idx} is also running"
                )));
            }
        }
        let mut backfill = snapshot.config.backfill_algorithm.strategy();
        if let Some(state) = &snapshot.backfill {
            backfill.restore_state(state, &ledger)?;
        }
        let mut policy = policy;
        if let Some(state) = &snapshot.policy.state {
            if policy.name() == snapshot.policy.name {
                policy.restore_state(state).map_err(SchedError::CorruptSnapshot)?;
            }
        }
        let queued_with_deps =
            snapshot.queue.queue.iter().filter(|&&i| !snapshot.jobs[i].deps.is_empty()).count();
        Ok(Self {
            state: CoreState {
                jobs: snapshot.jobs,
                demands: snapshot.demands,
                ledger,
                observers,
                started: JobSet::new(),
                backfill_credit: 0,
                decisions: Vec::new(),
                now: snapshot.clock,
            },
            cfg: snapshot.config,
            policy,
            queue: crate::queue::QueueManager::restore(snapshot.queue),
            backfill,
            completed_ids: snapshot.completed.iter().copied().collect(),
            id_to_idx,
            tracker: StarvationTracker::from_entries(&snapshot.starvation),
            invocations: snapshot.invocations,
            queued_with_deps,
            scratch: Scratch::default(),
        })
    }

    /// Branches the live core: an independent copy that continues from
    /// the current state under the supplied `policy` and `observers`
    /// (what-if forking — same state, possibly a different policy).
    /// Equivalent to `SchedCore::restore(self.snapshot(), …)`, which is
    /// exactly how it is implemented, so fork and checkpoint/resume can
    /// never diverge.
    pub fn fork<'n>(
        &self,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'n mut dyn SchedObserver>,
    ) -> Result<SchedCore<'n>, SchedError> {
        SchedCore::restore(self.snapshot(), policy, observers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsched_policies::{GaParams, PolicyKind};

    fn system(nodes: u32) -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn core(nodes: u32) -> SchedCore<'static> {
        SchedCore::new(
            &system(nodes),
            SchedConfig::default(),
            PolicyKind::Baseline.build(GaParams::default()),
            Vec::new(),
        )
        .unwrap()
    }

    fn job(id: u64, submit: f64, nodes: u32, runtime: f64) -> (Job, JobDemand) {
        (Job::new(id, submit, nodes, runtime, runtime * 2.0), JobDemand::cpu_bb(nodes, 0.0))
    }

    #[test]
    fn empty_queue_invocation_is_a_silent_noop() {
        let mut c = core(4);
        assert!(c.invoke(0.0).is_empty());
        assert_eq!(c.invocations(), 0, "empty invocations are not counted");
    }

    #[test]
    fn submit_invoke_finish_lifecycle() {
        let mut c = core(4);
        let (j, d) = job(7, 0.0, 2, 10.0);
        c.submit(j, d).unwrap();
        let decisions = c.invoke(0.0).to_vec();
        assert_eq!(decisions.len(), 1);
        match decisions[0] {
            Decision::Start { id, reason, est_end, .. } => {
                assert_eq!(id, 7);
                assert_eq!(reason, StartReason::Policy, "Baseline selects the fitting head");
                assert_eq!(est_end, 20.0);
            }
            other => panic!("expected a start, got {other:?}"),
        }
        assert_eq!(c.queue_len(), 0);
        c.job_finished(7, 10.0).unwrap();
        c.assert_drained();
    }

    #[test]
    fn duplicate_and_unknown_ids_are_typed_errors() {
        let mut c = core(4);
        let (j, d) = job(1, 0.0, 1, 5.0);
        c.submit(j.clone(), d).unwrap();
        assert!(matches!(c.submit(j, d), Err(SchedError::DuplicateJob(1))));
        assert!(matches!(c.job_finished(99, 1.0), Err(SchedError::UnknownJob(99))));
        // Submitted but not started → also not running.
        assert!(matches!(c.job_finished(1, 1.0), Err(SchedError::UnknownJob(1))));
    }

    #[test]
    fn blocked_head_produces_a_reserve_decision() {
        let mut c = core(4);
        let (a, da) = job(0, 0.0, 4, 100.0);
        let (b, db) = job(1, 0.0, 4, 10.0);
        c.submit(a, da).unwrap();
        c.submit(b, db).unwrap();
        let decisions = c.invoke(0.0).to_vec();
        // Job 0 starts; job 1 cannot and becomes the EASY shadow head.
        assert!(decisions.iter().any(|d| matches!(d, Decision::Start { id: 0, .. })));
        let reserve = decisions
            .iter()
            .find_map(|d| match d {
                Decision::Reserve { id, at, .. } => Some((*id, *at)),
                _ => None,
            })
            .expect("blocked head must yield a reservation");
        assert_eq!(reserve.0, 1);
        assert_eq!(reserve.1, 200.0, "shadow at job 0's walltime estimate");
    }

    #[test]
    fn decision_json_lines_are_canonical() {
        let start = Decision::Start { idx: 0, id: 3, reason: StartReason::Policy, est_end: 52.5 };
        assert_eq!(
            start.json_line(2.0),
            r#"{"t":2.0,"decision":"start","job":3,"reason":"policy","est_end":52.5}"#
        );
        let reserve = Decision::Reserve { idx: 1, id: 4, at: 100.0 };
        assert_eq!(reserve.json_line(2.5), r#"{"t":2.5,"decision":"reserve","job":4,"at":100.0}"#);
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        for algorithm in
            [crate::config::BackfillAlgorithm::Easy, crate::config::BackfillAlgorithm::Conservative]
        {
            let cfg = SchedConfig { backfill_algorithm: algorithm, ..SchedConfig::default() };
            let mut c = SchedCore::new(
                &system(8),
                cfg,
                PolicyKind::Baseline.build(GaParams::default()),
                Vec::new(),
            )
            .unwrap();
            for i in 0..6u64 {
                let (j, d) = job(i, i as f64, 2 + (i % 3) as u32 * 2, 30.0 + i as f64);
                c.submit(j, d).unwrap();
            }
            let first = c.invoke(5.0).to_vec();
            let started: Vec<u64> = first
                .iter()
                .filter_map(|d| match d {
                    Decision::Start { id, .. } => Some(*id),
                    _ => None,
                })
                .collect();
            assert!(!started.is_empty());

            let snap = c.snapshot();
            let wire = snap.to_json();
            let decoded = crate::state::CoreSnapshot::from_json(&wire).unwrap();
            assert_eq!(decoded, snap, "wire encoding round-trips");
            let mut r = SchedCore::restore(
                decoded,
                PolicyKind::Baseline.build(GaParams::default()),
                Vec::new(),
            )
            .unwrap();
            assert_eq!(r.snapshot(), snap, "restore is a fixed point of snapshot");

            // Identical event feed → byte-identical decision streams.
            for (k, &id) in started.iter().enumerate() {
                let t = 40.0 + k as f64;
                c.job_finished(id, t).unwrap();
                r.job_finished(id, t).unwrap();
                let a: Vec<String> = c.invoke(t).iter().map(|d| d.json_line(t)).collect();
                let b: Vec<String> = r.invoke(t).iter().map(|d| d.json_line(t)).collect();
                assert_eq!(a, b, "{algorithm:?} diverged after restore");
            }
            assert_eq!(c.snapshot(), r.snapshot(), "{algorithm:?} end states diverged");
        }
    }

    #[test]
    fn fork_under_a_different_policy_starts_fresh() {
        let mut c = core(8);
        for i in 0..4u64 {
            let (j, d) = job(i, 0.0, 4, 20.0);
            c.submit(j, d).unwrap();
        }
        c.invoke(0.0);
        // What-if branch: same state, a different policy. Policy state
        // from the snapshot (none here, but names differ anyway) is not
        // injected into the replacement.
        let f = c
            .fork(PolicyKind::BbSched.build(GaParams::default()), Vec::new())
            .expect("fork under a different policy");
        assert_eq!(f.policy_name(), "BBSched");
        assert_eq!(f.invocations(), c.invocations());
        assert_eq!(f.queue_len(), c.queue_len());
    }

    #[test]
    fn corrupt_snapshots_fail_restore_with_typed_errors() {
        let mut c = core(4);
        let (a, da) = job(0, 0.0, 3, 50.0);
        let (b, db) = job(1, 0.0, 3, 10.0); // blocked behind job 0
        c.submit(a, da).unwrap();
        c.submit(b, db).unwrap();
        c.invoke(0.0);
        let good = c.snapshot();
        let build = || PolicyKind::Baseline.build(GaParams::default());

        let mut bad = good.clone();
        bad.schema_version = 2;
        assert!(matches!(
            SchedCore::restore(bad, build(), Vec::new()),
            Err(SchedError::SnapshotVersion { found: 2, expected: 1 })
        ));

        let mut bad = good.clone();
        bad.queue.queue = vec![7]; // out of range
        assert!(matches!(
            SchedCore::restore(bad, build(), Vec::new()),
            Err(SchedError::CorruptSnapshot(_))
        ));

        let mut bad = good.clone();
        bad.queue.base = crate::base_sched::BaseScheduler::Wfp; // disagrees with config
        assert!(matches!(
            SchedCore::restore(bad, build(), Vec::new()),
            Err(SchedError::CorruptSnapshot(_))
        ));

        let mut bad = good.clone();
        bad.demands.pop(); // jobs/demands misaligned
        assert!(matches!(
            SchedCore::restore(bad, build(), Vec::new()),
            Err(SchedError::CorruptSnapshot(_))
        ));

        // The untouched snapshot still restores.
        assert!(SchedCore::restore(good, build(), Vec::new()).is_ok());
    }

    #[test]
    fn out_of_order_submits_within_a_tick_are_equivalent() {
        // Same three jobs, submitted in different orders before a single
        // invocation: identical decision streams on the wire (the dense
        // submission `idx` legitimately differs with submission order and
        // is deliberately absent from the canonical encoding).
        let jobs = [job(0, 0.0, 2, 10.0), job(1, 1.0, 2, 20.0), job(2, 2.0, 2, 30.0)];
        let run = |order: [usize; 3]| {
            let mut c = core(4);
            for &i in &order {
                let (j, d) = jobs[i].clone();
                c.submit(j, d).unwrap();
            }
            c.invoke(2.0).iter().map(|d| d.json_line(2.0)).collect::<Vec<_>>()
        };
        let a = run([0, 1, 2]);
        let b = run([2, 0, 1]);
        assert_eq!(a, b);
    }
}
