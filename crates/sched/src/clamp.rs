//! Capacity clamping of job demands.
//!
//! A job whose demand can never fit the machine makes the queue head
//! unschedulable and would deadlock any non-backfilling path. Every
//! driver therefore runs submissions through [`clamp_demand`] before
//! handing them to the core: the simulator clamps a whole trace up front
//! (or rejects it, per its `clamp_impossible` knob), and the online replay
//! driver clamps each submit event as it streams in. Keeping the rule in
//! one place is what makes the two drivers produce identical schedules.

use bbsched_core::problem::JobDemand;
use bbsched_core::resource::MAX_EXTRA;
use bbsched_workloads::{Job, SystemConfig};

/// Derives the demand the core will allocate for `job` on `system`,
/// clamped to total machine capacity. Returns the demand and whether any
/// component had to be clamped.
pub fn clamp_demand(system: &SystemConfig, job: &Job) -> (JobDemand, bool) {
    let usable_bb = system.bb_usable_gb();
    let mut d = JobDemand {
        nodes: job.nodes,
        bb_gb: job.bb_gb,
        ssd_gb_per_node: if system.has_local_ssd() { job.ssd_gb_per_node } else { 0.0 },
        ..JobDemand::default()
    };
    let mut clamped = false;
    if d.nodes > system.nodes {
        d.nodes = system.nodes;
        clamped = true;
    }
    if d.bb_gb > usable_bb {
        d.bb_gb = usable_bb;
        clamped = true;
    }
    if d.ssd_gb_per_node > 256.0 {
        d.ssd_gb_per_node = 256.0;
        clamped = true;
    }
    if d.ssd_gb_per_node > 128.0 && d.nodes > system.nodes_256 {
        // More >128 GB/node-SSD nodes requested than 256 GB nodes
        // exist: downgrade the request so the job stays schedulable.
        d.ssd_gb_per_node = 128.0;
        clamped = true;
    }
    for (i, extra) in system.extra_resources.iter().take(MAX_EXTRA).enumerate() {
        d.extra[i] = job.extra_demand(i);
        if d.extra[i] > extra.amount {
            d.extra[i] = extra.amount;
            clamped = true;
        }
    }
    (d, clamped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(nodes: u32, bb_gb: f64) -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes,
            bb_gb,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    #[test]
    fn fitting_job_is_untouched() {
        let sys = system(10, 1_000.0);
        let job = Job::new(0, 0.0, 4, 10.0, 20.0).with_bb(500.0);
        let (d, clamped) = clamp_demand(&sys, &job);
        assert!(!clamped);
        assert_eq!(d.nodes, 4);
        assert_eq!(d.bb_gb, 500.0);
    }

    #[test]
    fn oversized_demands_are_clamped() {
        let sys = system(10, 1_000.0);
        let job = Job::new(0, 0.0, 100, 10.0, 20.0).with_bb(9_999.0);
        let (d, clamped) = clamp_demand(&sys, &job);
        assert!(clamped);
        assert_eq!(d.nodes, 10);
        assert_eq!(d.bb_gb, 1_000.0);
    }

    #[test]
    fn ssd_requests_ignore_non_ssd_systems_and_downgrade() {
        let sys = system(10, 1_000.0);
        let job = Job::new(0, 0.0, 2, 10.0, 20.0).with_ssd(200.0);
        let (d, clamped) = clamp_demand(&sys, &job);
        assert_eq!(d.ssd_gb_per_node, 0.0, "non-SSD system drops the request");
        assert!(!clamped);

        let ssd_sys = SystemConfig { nodes_128: 8, nodes_256: 2, ..system(10, 1_000.0) };
        let wide = Job::new(1, 0.0, 4, 10.0, 20.0).with_ssd(300.0);
        let (d, clamped) = clamp_demand(&ssd_sys, &wide);
        // 300 → 256 (cap), then → 128 (only two 256 GB nodes exist).
        assert_eq!(d.ssd_gb_per_node, 128.0);
        assert!(clamped);
    }
}
