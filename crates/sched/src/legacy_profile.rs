//! Frozen pre-incremental conservative-backfill machinery.
//!
//! This module preserves, verbatim, the rebuild-per-pass availability
//! profile and conservative strategy that shipped before the persistent
//! profile landed (DESIGN.md §10): [`LegacyProfile`] rebuilds from the
//! full release schedule on every construction and scans every segment
//! from index 0 in its queries, and [`RebuildPerPassConservative`]
//! constructs a fresh profile each backfill pass.
//!
//! It exists for two reasons and must not be "improved":
//!
//! 1. **Equivalence oracle** — the golden-equivalence suite and the
//!    profile property tests prove the incremental
//!    [`crate::ConservativeBackfill`] produces bit-identical schedules and
//!    profiles to this reference.
//! 2. **Benchmark reference** — the `simulate_large` bench family runs the
//!    same 20k-job trace through both paths
//!    ([`crate::BackfillAlgorithm::ConservativeRebuild`] selects this one)
//!    to measure the speedup.

use crate::backfill::{BackfillCtx, BackfillStrategy, TIME_EPS};
use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;

/// The pre-incremental [`crate::AvailabilityProfile`]: same piecewise
/// representation and semantics, but every query scans from segment 0 and
/// there is no persistence across passes. Kept verbatim as the reference
/// implementation.
#[derive(Clone, Debug)]
pub struct LegacyProfile {
    times: Vec<f64>,
    states: Vec<PoolState>,
}

impl LegacyProfile {
    /// Builds the profile from the current free state and the estimated
    /// completion times of running jobs. `releases` is a list of
    /// `(est_end, demand, assignment)` tuples; order does not matter.
    pub fn new(
        now: f64,
        pool: PoolState,
        releases: impl IntoIterator<Item = (f64, JobDemand, NodeAssignment)>,
    ) -> Self {
        let mut rel: Vec<(f64, JobDemand, NodeAssignment)> =
            releases.into_iter().map(|(t, d, asn)| (t.max(now), d, asn)).collect();
        rel.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut times = vec![now];
        let mut states = vec![pool];
        for (t, d, asn) in rel {
            let last = *states.last().expect("profile never empty");
            let mut next = last;
            next.free(&d, asn);
            if (t - *times.last().unwrap()).abs() < 1e-12 {
                *states.last_mut().unwrap() = next;
            } else {
                times.push(t);
                states.push(next);
            }
        }
        Self { times, states }
    }

    /// Number of segments (diagnostic).
    pub fn segments(&self) -> usize {
        self.times.len()
    }

    /// The boundary times (for equivalence tests against the indexed
    /// profile).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The per-segment states (for equivalence tests).
    pub fn states(&self) -> &[PoolState] {
        &self.states
    }

    /// Free state at time `t` (clamped to the profile's origin).
    pub fn state_at(&self, t: f64) -> PoolState {
        let idx = match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.states[idx]
    }

    /// Whether `d` fits everywhere on `[start, start + duration)`.
    pub fn fits_interval(&self, d: &JobDemand, start: f64, duration: f64) -> bool {
        let end = start + duration;
        // Check the segment containing `start` and every boundary in range.
        if !self.state_at(start).fits(d) {
            return false;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > start && t < end && !self.states[i].fits(d) {
                return false;
            }
        }
        true
    }

    /// Earliest time `>= from` at which `d` fits for `duration`; tries
    /// `from` and then every breakpoint. Returns `f64::INFINITY` if it
    /// never fits.
    pub fn earliest_start(&self, d: &JobDemand, from: f64, duration: f64) -> f64 {
        if self.fits_interval(d, from, duration) {
            return from;
        }
        for (i, &t) in self.times.iter().enumerate() {
            if t > from && self.states[i].fits(d) && self.fits_interval(d, t, duration) {
                return t;
            }
        }
        f64::INFINITY
    }

    /// Carves a reservation for `d` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics (debug) if the demand does not fit the interval.
    pub fn reserve(&mut self, d: &JobDemand, start: f64, duration: f64) {
        debug_assert!(self.fits_interval(d, start, duration), "reserve without fit check");
        let end = start + duration;
        self.split_at(start);
        self.split_at(end);
        for i in 0..self.times.len() {
            let seg_start = self.times[i];
            if seg_start >= end {
                break;
            }
            let seg_end = self.times.get(i + 1).copied().unwrap_or(f64::INFINITY);
            if seg_end <= start {
                continue;
            }
            // Segment overlaps the reservation: subtract.
            let state = &mut self.states[i];
            debug_assert!(state.fits(d));
            let _ = state.alloc(d);
        }
    }

    /// Ensures `t` is a breakpoint (no-op if it already is or precedes the
    /// origin; infinite times are ignored).
    fn split_at(&mut self, t: f64) {
        if !t.is_finite() || t <= self.times[0] {
            return;
        }
        match self.times.binary_search_by(|x| x.total_cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                let state = self.states[i - 1];
                self.times.insert(i, t);
                self.states.insert(i, state);
            }
        }
    }
}

/// The pre-incremental conservative backfill: builds a fresh
/// [`LegacyProfile`] from the full release schedule on every pass.
/// Schedules are bit-identical to [`crate::ConservativeBackfill`]; only
/// the per-pass cost differs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RebuildPerPassConservative;

impl BackfillStrategy for RebuildPerPassConservative {
    fn name(&self) -> &'static str {
        "conservative-rebuild"
    }

    fn pass(&mut self, ctx: &mut BackfillCtx<'_, '_>) {
        let mut profile = LegacyProfile::new(ctx.now(), *ctx.pool(), ctx.release_schedule());
        // Reservations for everyone; the starved blocked job (if any)
        // reserves first.
        let mut ordered: Vec<usize> = Vec::with_capacity(ctx.waiting().len() + 1);
        if let Some(b) = ctx.blocked_head() {
            ordered.push(b);
        }
        ordered.extend(ctx.waiting().iter().copied().filter(|&i| Some(i) != ctx.blocked_head()));
        for (scanned, idx) in ordered.into_iter().enumerate() {
            if scanned >= ctx.max_scan() {
                break;
            }
            if ctx.is_started(idx) {
                continue;
            }
            let d = ctx.demand(idx);
            let walltime = ctx.walltime(idx).max(1.0);
            let t = profile.earliest_start(&d, ctx.now(), walltime);
            if t <= ctx.now() + TIME_EPS && ctx.pool().fits(&d) {
                ctx.start(idx, true);
                // Consume from the profile's "now" segments too.
                profile.reserve(&d, t, walltime);
            } else if t.is_finite() {
                profile.reserve(&d, t, walltime);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AvailabilityProfile;

    fn d(nodes: u32, bb: f64) -> JobDemand {
        JobDemand::cpu_bb(nodes, bb)
    }

    fn release(t: f64, nodes: u32, bb: f64) -> (f64, JobDemand, NodeAssignment) {
        (t, d(nodes, bb), NodeAssignment::two_tier(0, nodes))
    }

    #[test]
    fn legacy_and_indexed_profiles_agree_after_reservations() {
        let rel = vec![release(10.0, 4, 20.0), release(20.0, 2, 0.0), release(20.0, 1, 5.0)];
        let mut legacy = LegacyProfile::new(0.0, PoolState::cpu_bb(4, 50.0), rel.clone());
        let mut indexed = AvailabilityProfile::new(0.0, PoolState::cpu_bb(4, 50.0), rel);
        for (dem, start, dur) in
            [(d(3, 10.0), 0.0, 12.0), (d(4, 0.0), 10.0, 15.0), (d(1, 1.0), 26.0, 100.0)]
        {
            let t_l = legacy.earliest_start(&dem, start, dur);
            let t_i = indexed.earliest_start(&dem, start, dur);
            assert_eq!(t_l, t_i);
            if t_l.is_finite() {
                legacy.reserve(&dem, t_l, dur);
                indexed.reserve(&dem, t_i, dur);
            }
            assert_eq!(legacy.times(), indexed.times());
            assert_eq!(legacy.states(), indexed.states());
        }
    }
}
