//! The allocation ledger: resource accounting with conservation checks.
//!
//! Wraps [`PoolState`] with the bookkeeping the engine needs around it —
//! which jobs hold allocations, their capacity-clamped demands and node
//! assignments, and their estimated completion times — and asserts the
//! conservation laws the monolithic loop used to rely on implicitly:
//! every allocation is eventually freed, free capacity never goes
//! negative, and never exceeds total capacity.
//!
//! The ledger also maintains the running set **incrementally sorted by
//! `(est_end, index)`**. The EASY shadow computation and the conservative
//! availability profile both need the running jobs in estimated-completion
//! order; the old loop rebuilt and re-sorted that list from a `HashMap` on
//! every use, which [`crate::backfill`] now avoids by iterating
//! [`AllocLedger::release_order`] directly.

use crate::error::SchedError;
use crate::idhash::BuildIdHasher;
use bbsched_core::pools::{NodeAssignment, PoolState};
use bbsched_core::problem::JobDemand;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Slack tolerated in floating-point conservation checks (GB / nodes).
const CONSERVE_EPS: f64 = 1e-6;

/// Start/finish deltas retained for incremental consumers (see
/// [`AllocLedger::deltas_since`]). 4096 entries cover every realistic gap
/// between two backfill passes; a consumer that falls further behind
/// resynchronizes from [`AllocLedger::release_order`] instead.
const DELTA_LOG_CAP: usize = 4_096;

/// One mutation of the running set, as replayed by incremental consumers
/// (the conservative-backfill availability profile keeps a sorted mirror
/// of the release order up to date by applying these).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LedgerDelta {
    /// Job `idx` started and holds `entry`.
    Start {
        /// Index into the engine's job table.
        idx: usize,
        /// The new ledger entry.
        entry: RunningJob,
    },
    /// Job `idx` (whose entry recorded `est_end`) finished and freed its
    /// allocation.
    Finish {
        /// Index into the engine's job table.
        idx: usize,
        /// The estimated completion the entry was keyed under.
        est_end: f64,
    },
}

/// One running job's ledger entry.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// Estimated completion (`start + walltime`) — what a production
    /// scheduler would plan with.
    pub est_end: f64,
    /// Allocated (clamped) demand.
    pub demand: JobDemand,
    /// Node split across per-node flavour pools.
    pub assignment: NodeAssignment,
}

/// `f64` ordered by `total_cmp` so it can key a [`BTreeSet`].
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdTime(f64);

impl Eq for OrdTime {}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Resource accounting for the engine: a [`PoolState`] plus the running
/// set, with alloc/free conservation asserted at every transition.
#[derive(Clone, Debug)]
pub struct AllocLedger {
    pool: PoolState,
    capacity: PoolState,
    running: HashMap<usize, RunningJob, BuildIdHasher>,
    /// Running jobs keyed by `(est_end, index)` — the release order.
    by_est_end: BTreeSet<(OrdTime, usize)>,
    allocs: u64,
    frees: u64,
    /// Monotone mutation counter (`allocs + frees`): the "time" axis of
    /// the delta log below.
    generation: u64,
    /// Recent start/finish deltas; `log_floor` is the generation just
    /// before the front entry was applied.
    log: VecDeque<LedgerDelta>,
    log_floor: u64,
}

impl AllocLedger {
    /// A ledger over a fully free pool.
    pub fn new(pool: PoolState) -> Self {
        Self {
            pool,
            capacity: pool,
            running: HashMap::default(),
            by_est_end: BTreeSet::new(),
            allocs: 0,
            frees: 0,
            generation: 0,
            log: VecDeque::new(),
            log_floor: 0,
        }
    }

    /// The mutation generation: increments on every start and finish.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The start/finish deltas applied after generation `since`, oldest
    /// first, or `None` if the log no longer reaches back that far (or
    /// `since` is from the future) — the caller must then resynchronize
    /// from [`AllocLedger::release_order`].
    pub fn deltas_since(&self, since: u64) -> Option<impl Iterator<Item = &LedgerDelta> + '_> {
        if since < self.log_floor || since > self.generation {
            return None;
        }
        Some(self.log.range((since - self.log_floor) as usize..))
    }

    fn push_delta(&mut self, delta: LedgerDelta) {
        if self.log.len() == DELTA_LOG_CAP {
            self.log.pop_front();
            self.log_floor += 1;
        }
        self.log.push_back(delta);
        self.generation += 1;
    }

    /// The current free state (for fit queries and policy availability).
    pub fn pool(&self) -> &PoolState {
        &self.pool
    }

    /// Whether `d` fits the free state right now.
    pub fn fits(&self, d: &JobDemand) -> bool {
        self.pool.fits(d)
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Whether nothing is running.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty()
    }

    /// The ledger entry of running job `idx`.
    pub fn get(&self, idx: usize) -> Option<&RunningJob> {
        self.running.get(&idx)
    }

    /// Total allocations and frees performed (diagnostic; a drained ledger
    /// has equal counts).
    pub fn churn(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }

    /// Allocates `demand` for job `idx`, recording `est_end` as its
    /// estimated completion. Returns the node assignment.
    ///
    /// # Panics
    /// Panics if the demand does not fit (callers must check
    /// [`AllocLedger::fits`] first — the engine never speculates) or if
    /// `idx` is already running.
    pub fn start(&mut self, idx: usize, demand: JobDemand, est_end: f64) -> NodeAssignment {
        assert!(self.pool.fits(&demand), "allocation without a fit check (job index {idx})");
        let assignment = self.pool.alloc(&demand);
        let entry = RunningJob { est_end, demand, assignment };
        let prev = self.running.insert(idx, entry);
        assert!(prev.is_none(), "job index {idx} started twice");
        self.by_est_end.insert((OrdTime(est_end), idx));
        self.allocs += 1;
        self.push_delta(LedgerDelta::Start { idx, entry });
        self.debug_check();
        assignment
    }

    /// Frees job `idx`'s allocation, returning its ledger entry.
    ///
    /// # Panics
    /// Panics if `idx` is not running (a finish event for a job the ledger
    /// never started would silently corrupt the pool otherwise). Restore
    /// paths, where "not running" means a corrupt snapshot rather than a
    /// driver bug, use [`AllocLedger::try_finish`] instead.
    pub fn finish(&mut self, idx: usize) -> RunningJob {
        self.try_finish(idx).expect("finish for job not running")
    }

    /// Frees job `idx`'s allocation, returning its ledger entry, or a
    /// [`SchedError::CorruptSnapshot`] when `idx` is not running — the
    /// fallible twin of [`AllocLedger::finish`] for paths fed by
    /// deserialized state instead of a live driver.
    pub fn try_finish(&mut self, idx: usize) -> Result<RunningJob, SchedError> {
        let entry = self.running.remove(&idx).ok_or_else(|| {
            SchedError::CorruptSnapshot(format!("finish for job index {idx}, which is not running"))
        })?;
        self.by_est_end.remove(&(OrdTime(entry.est_end), idx));
        self.pool.free(&entry.demand, entry.assignment);
        self.frees += 1;
        self.push_delta(LedgerDelta::Finish { idx, est_end: entry.est_end });
        self.debug_check();
        Ok(entry)
    }

    /// Running jobs in `(est_end, index)` order — the deterministic
    /// release schedule the backfill phase plans against. No sorting
    /// happens here; the order is maintained incrementally.
    pub fn release_order(&self) -> impl Iterator<Item = (usize, &RunningJob)> + '_ {
        self.by_est_end.iter().map(move |&(_, idx)| {
            (idx, self.running.get(&idx).expect("release order desynchronized"))
        })
    }

    /// The release schedule as `(est_end, demand, assignment)` tuples, the
    /// shape [`crate::AvailabilityProfile::new`] consumes.
    pub fn release_schedule(&self) -> Vec<(f64, JobDemand, NodeAssignment)> {
        self.release_order().map(|(_, r)| (r.est_end, r.demand, r.assignment)).collect()
    }

    /// Asserts the conservation invariants (always, not just in debug):
    /// free capacity of every resource is within `[0, capacity]`.
    pub fn assert_conserved(&self) {
        for r in 0..self.pool.num_resources() {
            let free = self.pool.free_of(r);
            let cap = self.capacity.free_of(r);
            assert!(
                free >= -CONSERVE_EPS && free <= cap + CONSERVE_EPS,
                "resource {r} free {free} outside [0, {cap}]"
            );
        }
    }

    /// Asserts the ledger drained cleanly: no job still holds resources
    /// and the pool is back to full capacity (every allocation was freed).
    pub fn assert_drained(&self) {
        assert!(self.running.is_empty(), "{} jobs never finished", self.running.len());
        assert!(self.by_est_end.is_empty(), "release order desynchronized at drain");
        assert_eq!(self.allocs, self.frees, "alloc/free counts diverge");
        for r in 0..self.pool.num_resources() {
            let free = self.pool.free_of(r);
            let cap = self.capacity.free_of(r);
            assert!(
                (free - cap).abs() <= CONSERVE_EPS,
                "resource {r} leaked: free {free} != capacity {cap}"
            );
        }
    }

    fn debug_check(&self) {
        debug_assert_eq!(self.running.len(), self.by_est_end.len());
        #[cfg(debug_assertions)]
        self.assert_conserved();
    }

    /// Extracts the ledger's owned state: the free pool **bit-exact** (it
    /// is serialized, not recomputed, so a restored run continues with the
    /// same floating-point values the interrupted run held), capacity,
    /// the running set in release order, the churn counters, and the
    /// delta log with its generation window.
    pub fn snapshot(&self) -> LedgerState {
        LedgerState {
            pool: self.pool,
            capacity: self.capacity,
            running: self.release_order().map(|(idx, r)| (idx, *r)).collect(),
            allocs: self.allocs,
            frees: self.frees,
            generation: self.generation,
            log: self.log.iter().copied().collect(),
            log_floor: self.log_floor,
        }
    }

    /// Rebuilds a ledger from extracted state, validating internal
    /// consistency: duplicate running indices, conservation violations,
    /// and a delta log that disagrees with its generation window all fail
    /// with a typed [`SchedError::CorruptSnapshot`] instead of corrupting
    /// the pool or panicking later.
    pub fn restore(state: LedgerState) -> Result<Self, SchedError> {
        let mut running: HashMap<usize, RunningJob, BuildIdHasher> = HashMap::default();
        let mut by_est_end = BTreeSet::new();
        for &(idx, entry) in &state.running {
            if running.insert(idx, entry).is_some() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "job index {idx} appears twice in the running set"
                )));
            }
            by_est_end.insert((OrdTime(entry.est_end), idx));
        }
        if state.log.len() as u64 != state.generation.wrapping_sub(state.log_floor) {
            return Err(SchedError::CorruptSnapshot(format!(
                "delta log holds {} entries but generations {}..{} are claimed",
                state.log.len(),
                state.log_floor,
                state.generation
            )));
        }
        let ledger = Self {
            pool: state.pool,
            capacity: state.capacity,
            running,
            by_est_end,
            allocs: state.allocs,
            frees: state.frees,
            generation: state.generation,
            log: state.log.into(),
            log_floor: state.log_floor,
        };
        for r in 0..ledger.pool.num_resources() {
            let free = ledger.pool.free_of(r);
            let cap = ledger.capacity.free_of(r);
            if !(free >= -CONSERVE_EPS && free <= cap + CONSERVE_EPS) {
                return Err(SchedError::CorruptSnapshot(format!(
                    "resource {r} free {free} outside [0, {cap}]"
                )));
            }
        }
        Ok(ledger)
    }
}

/// Owned state of an [`AllocLedger`] (see [`AllocLedger::snapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LedgerState {
    /// The free pool, bit-exact as held at snapshot time.
    pub pool: PoolState,
    /// Full machine capacity (the conservation bound).
    pub capacity: PoolState,
    /// Running entries as `(job index, entry)` in release order.
    pub running: Vec<(usize, RunningJob)>,
    /// Total allocations performed.
    pub allocs: u64,
    /// Total frees performed.
    pub frees: u64,
    /// Mutation generation at snapshot time.
    pub generation: u64,
    /// Retained delta log, oldest first.
    pub log: Vec<LedgerDelta>,
    /// Generation just before the front log entry was applied.
    pub log_floor: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_finish_roundtrip_conserves() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        let d = JobDemand::cpu_bb(4, 30.0);
        let asn = ledger.start(7, d, 50.0);
        assert_eq!(ledger.pool().nodes(), 6);
        assert_eq!(ledger.pool().bb_gb(), 70.0);
        assert_eq!(ledger.running_count(), 1);
        ledger.assert_conserved();
        let entry = ledger.finish(7);
        assert_eq!(entry.assignment, asn);
        assert_eq!(entry.demand, d);
        ledger.assert_drained();
    }

    #[test]
    fn release_order_is_est_end_then_index() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(100, 0.0));
        let d = JobDemand::cpu_bb(1, 0.0);
        ledger.start(5, d, 30.0);
        ledger.start(2, d, 10.0);
        ledger.start(9, d, 10.0);
        ledger.start(1, d, 20.0);
        let order: Vec<usize> = ledger.release_order().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 9, 1, 5]);
        ledger.finish(9);
        let order: Vec<usize> = ledger.release_order().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 5]);
    }

    #[test]
    #[should_panic(expected = "fit check")]
    fn oversubscription_panics() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(2, 0.0));
        ledger.start(0, JobDemand::cpu_bb(3, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn double_free_panics() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(2, 0.0));
        ledger.start(0, JobDemand::cpu_bb(1, 0.0), 1.0);
        ledger.finish(0);
        ledger.finish(0);
    }

    #[test]
    #[should_panic(expected = "never finished")]
    fn leak_detected_at_drain() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(2, 0.0));
        ledger.start(0, JobDemand::cpu_bb(1, 0.0), 1.0);
        ledger.assert_drained();
    }

    #[test]
    fn delta_log_replays_mutations_in_order() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 0.0));
        let g0 = ledger.generation();
        let d = JobDemand::cpu_bb(1, 0.0);
        ledger.start(3, d, 30.0);
        ledger.start(1, d, 10.0);
        ledger.finish(3);
        let deltas: Vec<LedgerDelta> = ledger.deltas_since(g0).unwrap().copied().collect();
        assert_eq!(deltas.len(), 3);
        assert!(matches!(deltas[0], LedgerDelta::Start { idx: 3, .. }));
        assert!(matches!(deltas[1], LedgerDelta::Start { idx: 1, .. }));
        assert_eq!(deltas[2], LedgerDelta::Finish { idx: 3, est_end: 30.0 });
        // Syncing to the current generation yields nothing further.
        assert_eq!(ledger.deltas_since(ledger.generation()).unwrap().count(), 0);
        // A future generation is a caller bug -> resync.
        assert!(ledger.deltas_since(ledger.generation() + 1).is_none());
    }

    #[test]
    fn delta_log_truncates_to_resync() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(4, 0.0));
        let g0 = ledger.generation();
        let d = JobDemand::cpu_bb(1, 0.0);
        for round in 0..(super::DELTA_LOG_CAP as u64) {
            ledger.start(0, d, round as f64 + 1.0);
            ledger.finish(0);
        }
        // 2 * CAP mutations: generation g0 fell off the log.
        assert!(ledger.deltas_since(g0).is_none(), "ancient generation must force a resync");
        let recent = ledger.generation() - 8;
        assert_eq!(ledger.deltas_since(recent).unwrap().count(), 8);
    }

    #[test]
    fn snapshot_restore_roundtrips_and_continues() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        let d = JobDemand::cpu_bb(2, 10.0);
        ledger.start(3, d, 30.0);
        ledger.start(1, d, 10.0);
        ledger.finish(1);

        let state = ledger.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: LedgerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = AllocLedger::restore(back).unwrap();

        assert_eq!(restored.generation(), ledger.generation());
        assert_eq!(restored.churn(), ledger.churn());
        assert_eq!(restored.release_schedule(), ledger.release_schedule());
        assert_eq!(restored.pool().nodes(), ledger.pool().nodes());
        assert_eq!(restored.pool().bb_gb().to_bits(), ledger.pool().bb_gb().to_bits());
        // Continues exactly like the original.
        restored.finish(3);
        ledger.finish(3);
        restored.assert_drained();
        ledger.assert_drained();
    }

    #[test]
    fn corrupt_snapshots_fail_typed() {
        let mut ledger = AllocLedger::new(PoolState::cpu_bb(10, 100.0));
        ledger.start(0, JobDemand::cpu_bb(2, 10.0), 5.0);
        let good = ledger.snapshot();

        let mut dup = good.clone();
        dup.running.push(dup.running[0]);
        assert!(matches!(AllocLedger::restore(dup), Err(SchedError::CorruptSnapshot(_))));

        let mut torn_log = good.clone();
        torn_log.log_floor += 1;
        assert!(matches!(AllocLedger::restore(torn_log), Err(SchedError::CorruptSnapshot(_))));

        let mut leaked = good.clone();
        leaked.pool.set_free_nodes(99);
        assert!(matches!(AllocLedger::restore(leaked), Err(SchedError::CorruptSnapshot(_))));

        // And try_finish on a job that is not running is a typed error.
        let mut restored = AllocLedger::restore(good).unwrap();
        assert!(matches!(restored.try_finish(7), Err(SchedError::CorruptSnapshot(_))));
        assert!(restored.try_finish(0).is_ok());
    }

    #[test]
    fn ssd_flavour_pools_conserve() {
        let mut ledger = AllocLedger::new(PoolState::with_ssd(4, 4, 1_000.0));
        let d = JobDemand::cpu_bb_ssd(2, 100.0, 200.0);
        ledger.start(0, d, 5.0);
        assert_eq!(ledger.pool().nodes_256(), 2);
        ledger.assert_conserved();
        ledger.finish(0);
        ledger.assert_drained();
    }
}
