//! Hierarchical index over an availability profile's segments.
//!
//! [`ProfileTree`] is a balanced (AVL-by-rank) binary tree whose in-order
//! sequence mirrors the profile's packed per-segment free-state vector.
//! Every node carries one aggregate: the component-wise **minimum**
//! ([`PoolState::free_component_min`]) over its subtree's segments — the
//! generalization of the previous suffix-minima skyline to arbitrary
//! ranges. If a demand fits a subtree's minimum, it fits *every* segment
//! in the subtree, so whole fitting runs are skipped in O(log S) where
//! the linear walk paid one visit per segment.
//!
//! Unlike the skyline, the index survives reservations: a carving
//! refreshes the aggregates over the mutated rank range in O(K + log S)
//! ([`ProfileTree::refresh_range`]) and a segment split is an O(log S)
//! balanced insert ([`ProfileTree::insert`]), where the skyline could
//! only invalidate a prefix and degrade queries back to linear scans.
//!
//! Two deliberate economies keep the constant factor small (profiles are
//! refolded every pass, so the index is rebuilt hot):
//!
//! * nodes do **not** duplicate their segment's state — the profile's
//!   packed vector is the single source of truth, ranks map one-to-one
//!   to flat indices, and every operation takes the packed slice (plus
//!   the machine template that interprets it) as an argument;
//! * the full `earliest_start` search runs as **one** in-order traversal
//!   ([`ProfileTree::find_earliest`]) with an explicit stack, visiting
//!   every tree node at most once per query. A per-candidate restart
//!   from the root would pay the O(log S) descent once per blocking
//!   cluster — measured at ~21 clusters per query on the 20 k workloads,
//!   that re-descent cost exceeded the linear walk it replaced.
//!
//! The tree is an **acceleration index, not state** (DESIGN.md §10, §12):
//! it is rebuilt from the packed vector on every fold and on snapshot
//! restore, and never appears on the snapshot wire format. Ranks — not
//! timestamps — key the tree, so it needs no float comparisons; callers
//! translate times to ranks by binary search on the flat boundary vector.
//!
//! Determinism: plain AVL rebalancing, no randomization; the same
//! operation sequence always yields the same structure.

use bbsched_core::pools::{FreeState, PoolState};
use bbsched_core::problem::JobDemand;

/// Sentinel child index ("no child").
const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Component-wise minimum over the whole subtree's segment states.
    min: FreeState,
    /// Component-wise maximum over the whole subtree's segment states —
    /// the pruning dual: a demand that fails the max fails *every*
    /// segment ([`PoolState::free_fits`] is monotone in each component),
    /// so whole all-blocking runs are skipped when seeking the next fit.
    max: FreeState,
    left: u32,
    right: u32,
    /// Subtree node count (ranks are derived from it during descent).
    size: u32,
    /// AVL height of the subtree rooted here.
    height: u8,
}

/// Balanced rank-keyed tree over segment states with min subtree
/// aggregates; see the module docs for the role it plays.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProfileTree {
    nodes: Vec<Node>,
    root: u32,
}

/// One pending step of the in-order traversal in
/// [`ProfileTree::find_earliest`].
#[derive(Clone, Copy)]
enum Frame {
    /// A whole subtree, first rank `base`, not yet examined.
    Whole { node: u32, base: u32 },
    /// A node whose left subtree is done: its own rank and right subtree
    /// are pending.
    OwnAndRight { node: u32, base: u32 },
}

impl ProfileTree {
    /// Number of segments indexed.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index is currently built (profiles below the size
    /// threshold leave it empty and stay on the linear walk).
    pub(crate) fn is_active(&self) -> bool {
        self.root != NIL && !self.nodes.is_empty()
    }

    /// Drops the index (the profile fell below the size threshold).
    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
    }

    /// Rebuilds the index from the profile's packed segment states in
    /// O(S): a perfectly balanced recursive build, aggregates computed
    /// bottom-up. Reuses the node arena's capacity.
    pub(crate) fn rebuild(&mut self, machine: &PoolState, frees: &[FreeState]) {
        self.nodes.clear();
        self.root = if frees.is_empty() { NIL } else { self.build(machine, frees) };
    }

    /// Builds the subtree for `frees`, returning its root.
    fn build(&mut self, machine: &PoolState, frees: &[FreeState]) -> u32 {
        let mid = frees.len() / 2;
        let idx = self.push(frees[mid]);
        let mut min = frees[mid];
        let mut max = frees[mid];
        let (mut left, mut right) = (NIL, NIL);
        if mid > 0 {
            left = self.build(machine, &frees[..mid]);
            min = machine.free_component_min(&min, &self.nodes[left as usize].min);
            max = machine.free_component_max(&max, &self.nodes[left as usize].max);
        }
        if mid + 1 < frees.len() {
            right = self.build(machine, &frees[mid + 1..]);
            min = machine.free_component_min(&min, &self.nodes[right as usize].min);
            max = machine.free_component_max(&max, &self.nodes[right as usize].max);
        }
        let height = 1 + self.height(left).max(self.height(right));
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.min = min;
        node.max = max;
        node.size = u32::try_from(frees.len()).expect("profile segment count fits u32");
        node.height = height;
        idx
    }

    fn push(&mut self, state: FreeState) -> u32 {
        let idx = u32::try_from(self.nodes.len()).expect("profile segment count fits u32");
        self.nodes.push(Node { min: state, max: state, left: NIL, right: NIL, size: 1, height: 1 });
        idx
    }

    #[inline]
    fn size(&self, n: u32) -> usize {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size as usize
        }
    }

    #[inline]
    fn height(&self, n: u32) -> u8 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].height
        }
    }

    /// Recomputes `size`, `height` and the min aggregate of `n` — whose
    /// subtree starts at flat rank `base` — from its own segment state
    /// and its children's aggregates.
    fn pull_up(&mut self, n: u32, base: usize, machine: &PoolState, frees: &[FreeState]) {
        let node = self.nodes[n as usize];
        let rank = base + self.size(node.left);
        let mut size = 1usize;
        let mut height = 0u8;
        let mut min = frees[rank];
        let mut max = frees[rank];
        for child in [node.left, node.right] {
            if child != NIL {
                let c = &self.nodes[child as usize];
                size += c.size as usize;
                height = height.max(c.height);
                min = machine.free_component_min(&min, &c.min);
                max = machine.free_component_max(&max, &c.max);
            }
        }
        let node = &mut self.nodes[n as usize];
        node.size = u32::try_from(size).expect("profile segment count fits u32");
        node.height = height + 1;
        node.min = min;
        node.max = max;
    }

    /// Inserts the segment at rank `pos` (O(log S) AVL insert); `frees`
    /// is the packed vector *after* the matching `Vec::insert`, so
    /// `frees[pos]` is the new segment's state.
    pub(crate) fn insert(&mut self, pos: usize, machine: &PoolState, frees: &[FreeState]) {
        debug_assert_eq!(self.size(self.root) + 1, frees.len());
        debug_assert!(pos < frees.len());
        let fresh = self.push(frees[pos]);
        self.root = self.insert_at(self.root, 0, pos, fresh, machine, frees);
    }

    fn insert_at(
        &mut self,
        n: u32,
        base: usize,
        pos: usize,
        fresh: u32,
        machine: &PoolState,
        frees: &[FreeState],
    ) -> u32 {
        if n == NIL {
            return fresh;
        }
        let lsize = self.size(self.nodes[n as usize].left);
        if pos <= base + lsize {
            let child =
                self.insert_at(self.nodes[n as usize].left, base, pos, fresh, machine, frees);
            self.nodes[n as usize].left = child;
        } else {
            let child = self.insert_at(
                self.nodes[n as usize].right,
                base + lsize + 1,
                pos,
                fresh,
                machine,
                frees,
            );
            self.nodes[n as usize].right = child;
        }
        self.rebalance(n, base, machine, frees)
    }

    /// Height difference `left - right`.
    fn balance(&self, n: u32) -> i16 {
        let node = &self.nodes[n as usize];
        i16::from(self.height(node.left)) - i16::from(self.height(node.right))
    }

    /// Standard AVL repair of `n` (subtree base rank `base`) after a
    /// child insert; returns the new subtree root.
    fn rebalance(&mut self, n: u32, base: usize, machine: &PoolState, frees: &[FreeState]) -> u32 {
        self.pull_up(n, base, machine, frees);
        let b = self.balance(n);
        if b > 1 {
            let left = self.nodes[n as usize].left;
            if self.balance(left) < 0 {
                let rotated = self.rotate_left(left, base, machine, frees);
                self.nodes[n as usize].left = rotated;
            }
            self.rotate_right(n, base, machine, frees)
        } else if b < -1 {
            let right = self.nodes[n as usize].right;
            if self.balance(right) > 0 {
                let lsize = self.size(self.nodes[n as usize].left);
                let rotated = self.rotate_right(right, base + lsize + 1, machine, frees);
                self.nodes[n as usize].right = rotated;
            }
            self.rotate_left(n, base, machine, frees)
        } else {
            n
        }
    }

    /// Rotates `n`'s right child up; `base` is the subtree's first flat
    /// rank (unchanged by the rotation). Returns the new subtree root.
    fn rotate_left(
        &mut self,
        n: u32,
        base: usize,
        machine: &PoolState,
        frees: &[FreeState],
    ) -> u32 {
        let r = self.nodes[n as usize].right;
        self.nodes[n as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = n;
        self.pull_up(n, base, machine, frees);
        self.pull_up(r, base, machine, frees);
        r
    }

    /// Rotates `n`'s left child up; `base` is the subtree's first flat
    /// rank (unchanged by the rotation). Returns the new subtree root.
    fn rotate_right(
        &mut self,
        n: u32,
        base: usize,
        machine: &PoolState,
        frees: &[FreeState],
    ) -> u32 {
        let l = self.nodes[n as usize].left;
        self.nodes[n as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = n;
        // After the rotation `n` heads the subtree of everything right of
        // `l`, whose first rank is `base` + (l's left size) + 1 — sizes
        // read *after* surgery, before pull_up, are still consistent for
        // the unmoved left spine of `l`.
        let n_base = base + self.size(self.nodes[l as usize].left) + 1;
        self.pull_up(n, n_base, machine, frees);
        self.pull_up(l, base, machine, frees);
        l
    }

    /// Refreshes the aggregates after the packed states in rank range
    /// `[lo, hi)` were mutated in place (a reservation carving):
    /// recomputes the min of every subtree overlapping the range, bottom
    /// up, in O(K + log S) for K mutated segments.
    pub(crate) fn refresh_range(
        &mut self,
        lo: usize,
        hi: usize,
        machine: &PoolState,
        frees: &[FreeState],
    ) {
        debug_assert_eq!(self.size(self.root), frees.len());
        if lo < hi {
            self.refresh(self.root, 0, lo, hi, machine, frees);
        }
    }

    fn refresh(
        &mut self,
        n: u32,
        base: usize,
        lo: usize,
        hi: usize,
        machine: &PoolState,
        frees: &[FreeState],
    ) {
        if n == NIL {
            return;
        }
        let node = self.nodes[n as usize];
        if base + node.size as usize <= lo || base >= hi {
            return;
        }
        let rank = base + self.size(node.left);
        self.refresh(node.left, base, lo, hi, machine, frees);
        self.refresh(node.right, rank + 1, lo, hi, machine, frees);
        self.pull_up(n, base, machine, frees);
    }

    /// Smallest rank `>= from` whose segment does **not** fit `d`, or
    /// `None`. Subtrees whose min aggregate fits are skipped whole (min
    /// fits ⟹ every segment in the subtree fits ⟹ no blocker inside);
    /// per-resource minima can be *conservative* — for flavoured
    /// resources a min that fails to fit does not guarantee a blocker —
    /// so a descent may probe subtrees that turn out clean, but it never
    /// reports a wrong rank: actual blocker checks read the exact packed
    /// state. Scalar resources (nodes, burst buffer) prune exactly.
    pub(crate) fn first_blocking_at_or_after(
        &self,
        from: usize,
        d: &JobDemand,
        machine: &PoolState,
        frees: &[FreeState],
    ) -> Option<usize> {
        debug_assert_eq!(self.size(self.root), frees.len());
        self.first_blocking(self.root, 0, from, d, machine, frees)
    }

    fn first_blocking(
        &self,
        n: u32,
        base: usize,
        from: usize,
        d: &JobDemand,
        machine: &PoolState,
        frees: &[FreeState],
    ) -> Option<usize> {
        if n == NIL {
            return None;
        }
        let node = &self.nodes[n as usize];
        if base + node.size as usize <= from || machine.free_fits(&node.min, d) {
            return None;
        }
        if !machine.free_fits(&node.max, d) {
            // The whole subtree blocks: its first in-range rank answers.
            return Some(from.max(base));
        }
        let rank = base + self.size(node.left);
        if let Some(r) = self.first_blocking(node.left, base, from, d, machine, frees) {
            return Some(r);
        }
        if rank >= from && !machine.free_fits(&frees[rank], d) {
            return Some(rank);
        }
        self.first_blocking(node.right, rank + 1, from, d, machine, frees)
    }

    /// The earliest start `>= from` at which `d` fits every segment of
    /// `[start, start + duration)` — the full `earliest_start` search as
    /// **one** pruned in-order traversal, answer-identical to the linear
    /// walk (`AvailabilityProfile::earliest_start_linear`).
    ///
    /// The traversal keeps an explicit stack and alternates between two
    /// modes, exactly mirroring the walk's two loops:
    ///
    /// * **seeking a blocker** for the current candidate: subtrees whose
    ///   min fits hold no blocker and are skipped whole (the walk visited
    ///   each of their segments); a skipped or scanned boundary at or past
    ///   the candidate's end accepts the candidate;
    /// * **seeking the next fitting segment** after a blocker: a subtree
    ///   whose min fits starts with a fitting segment, so its first rank
    ///   is the next candidate without descending.
    ///
    /// Every node enters the stack at most once, so a query costs
    /// O(S) worst case and O(B · log S) for B blocking clusters in the
    /// common case — the walk paid O(S) *per candidate window* in dense
    /// profiles.
    pub(crate) fn find_earliest(
        &self,
        machine: &PoolState,
        times: &[f64],
        frees: &[FreeState],
        d: &JobDemand,
        from: f64,
        duration: f64,
    ) -> f64 {
        let n = frees.len();
        debug_assert_eq!(self.size(self.root), n);
        let mut cand = from;
        // First boundary strictly after the candidate.
        let start = times.partition_point(|t| *t <= from);
        let mut seeking_fit = false;
        if !machine.free_fits(&frees[start.saturating_sub(1)], d) {
            // `from` fails in its own segment: the next candidate is the
            // first fitting breakpoint.
            seeking_fit = true;
        }
        let mut end = cand + duration;
        let mut stack: Vec<Frame> = Vec::with_capacity(2 * usize::from(self.height(self.root)) + 2);
        // Seed the stack with the in-order suffix starting at `start`:
        // descending pushes ancestors root-first, so the deepest (lowest
        // pending rank) pops first — left subtrees entirely below `start`
        // are never entered.
        {
            let mut node = self.root;
            let mut base = 0usize;
            while node != NIL {
                let nd = &self.nodes[node as usize];
                let rank = base + self.size(nd.left);
                if start <= rank {
                    stack.push(Frame::OwnAndRight { node, base: base as u32 });
                    node = nd.left;
                } else {
                    node = nd.right;
                    base = rank + 1;
                }
            }
        }
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::OwnAndRight { node, base } => {
                    let nd = &self.nodes[node as usize];
                    let rank = base as usize + self.size(nd.left);
                    // Right subtree is examined after the own rank.
                    if nd.right != NIL {
                        stack.push(Frame::Whole { node: nd.right, base: (rank + 1) as u32 });
                    }
                    if rank < start {
                        continue;
                    }
                    if seeking_fit {
                        if machine.free_fits(&frees[rank], d) {
                            cand = times[rank];
                            end = cand + duration;
                            seeking_fit = false;
                        }
                    } else {
                        if times[rank] >= end {
                            return cand;
                        }
                        if !machine.free_fits(&frees[rank], d) {
                            seeking_fit = true;
                        }
                    }
                }
                Frame::Whole { node, base } => {
                    let nd = &self.nodes[node as usize];
                    let base = base as usize;
                    let last = base + nd.size as usize - 1;
                    if machine.free_fits(&nd.min, d) {
                        // Every segment in the subtree fits.
                        if seeking_fit {
                            // Its first rank is the next candidate; the
                            // rest of the run holds no blocker either.
                            cand = times[base];
                            end = cand + duration;
                            seeking_fit = false;
                            if last > base && times[last] >= end {
                                return cand;
                            }
                        } else if times[last] >= end {
                            // The walk reaches a boundary at or past the
                            // candidate's end inside this fitting run.
                            return cand;
                        }
                        // Otherwise skip the subtree whole.
                    } else if !machine.free_fits(&nd.max, d) {
                        // Every segment in the subtree blocks (the demand
                        // fails even the component-wise upper envelope):
                        // skip it whole. When a candidate was live, its
                        // window either closed at the subtree's first
                        // boundary or is blocked by it.
                        if !seeking_fit {
                            if times[base] >= end {
                                return cand;
                            }
                            seeking_fit = true;
                        }
                    } else {
                        // Mixed subtree: descend its left spine — pushed
                        // root-first, popped leftmost-first, and every
                        // node on the spine shares the subtree's base.
                        let mut cur = node;
                        while cur != NIL {
                            stack.push(Frame::OwnAndRight { node: cur, base: base as u32 });
                            cur = self.nodes[cur as usize].left;
                        }
                    }
                }
            }
        }
        if seeking_fit {
            f64::INFINITY
        } else {
            cand
        }
    }

    /// Debug-only structural check: ranks map onto `frees`, AVL balance
    /// holds, and every aggregate is the min-fold of its subtree.
    #[cfg(test)]
    fn check_invariants(&self, machine: &PoolState, frees: &[FreeState]) {
        assert_eq!(self.size(self.root), frees.len());
        let mut rank = 0usize;
        self.check(self.root, machine, frees, &mut rank);
        assert_eq!(rank, frees.len());
    }

    #[cfg(test)]
    fn check(
        &self,
        n: u32,
        machine: &PoolState,
        frees: &[FreeState],
        rank: &mut usize,
    ) -> Option<(FreeState, FreeState)> {
        if n == NIL {
            return None;
        }
        let node = &self.nodes[n as usize];
        assert!(self.balance(n).abs() <= 1, "AVL balance violated");
        assert_eq!(
            usize::from(node.height),
            usize::from(self.height(node.left).max(self.height(node.right))) + 1
        );
        let left = self.check(node.left, machine, frees, rank);
        let my_rank = *rank;
        *rank += 1;
        let right = self.check(node.right, machine, frees, rank);
        let mut min = frees[my_rank];
        let mut max = frees[my_rank];
        for (lo, hi) in [left, right].into_iter().flatten() {
            min = machine.free_component_min(&min, &lo);
            max = machine.free_component_max(&max, &hi);
        }
        assert_eq!(node.min, min, "min aggregate at rank {my_rank}");
        assert_eq!(node.max, max, "max aggregate at rank {my_rank}");
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> PoolState {
        PoolState::cpu_bb(64, 1000.0)
    }

    fn free(nodes: u32, bb: f64) -> FreeState {
        let mut p = machine();
        let _ = p.alloc(&JobDemand::cpu_bb(64 - nodes, 1000.0 - bb));
        p.free_state()
    }

    fn frees(spec: &[(u32, f64)]) -> Vec<FreeState> {
        spec.iter().map(|&(n, b)| free(n, b)).collect()
    }

    /// Reference for `find_earliest`: the pre-index linear walk.
    fn linear_earliest(
        m: &PoolState,
        times: &[f64],
        frees: &[FreeState],
        d: &JobDemand,
        from: f64,
        duration: f64,
    ) -> f64 {
        let n = times.len();
        let mut cand = from;
        let mut i = times.partition_point(|t| *t <= from);
        if !m.free_fits(&frees[i.saturating_sub(1)], d) {
            while i < n && !m.free_fits(&frees[i], d) {
                i += 1;
            }
            if i == n {
                return f64::INFINITY;
            }
            cand = times[i];
            i += 1;
        }
        'candidate: loop {
            let end = cand + duration;
            while i < n && times[i] < end {
                if !m.free_fits(&frees[i], d) {
                    i += 1;
                    while i < n && !m.free_fits(&frees[i], d) {
                        i += 1;
                    }
                    if i == n {
                        return f64::INFINITY;
                    }
                    cand = times[i];
                    i += 1;
                    continue 'candidate;
                }
                i += 1;
            }
            return cand;
        }
    }

    #[test]
    fn rebuild_orders_and_aggregates() {
        let m = machine();
        let s = frees(&[(4, 50.0), (1, 10.0), (8, 200.0), (2, 5.0), (6, 100.0)]);
        let mut t = ProfileTree::default();
        t.rebuild(&m, &s);
        t.check_invariants(&m, &s);
        assert_eq!(t.len(), 5);
        assert!(t.is_active());
        t.clear();
        assert!(!t.is_active());
    }

    #[test]
    fn first_blocking_matches_linear_scan() {
        let m = machine();
        let s = frees(&[(4, 50.0), (1, 10.0), (8, 200.0), (2, 5.0), (6, 100.0), (0, 0.0)]);
        let mut t = ProfileTree::default();
        t.rebuild(&m, &s);
        for nodes in [0u32, 1, 2, 5, 7, 9] {
            for bb in [0.0, 8.0, 60.0, 150.0, 500.0] {
                let d = JobDemand::cpu_bb(nodes, bb);
                for from in 0..=s.len() {
                    let lin = (from..s.len()).find(|&i| !m.free_fits(&s[i], &d));
                    assert_eq!(t.first_blocking_at_or_after(from, &d, &m, &s), lin);
                }
            }
        }
    }

    #[test]
    fn insert_and_refresh_track_flat_updates() {
        let m = machine();
        let mut s = frees(&[(8, 100.0); 7]);
        let mut t = ProfileTree::default();
        t.rebuild(&m, &s);
        // Split: duplicate segment 3 at rank 4 (as split_at does).
        s.insert(4, s[3]);
        t.insert(4, &m, &s);
        t.check_invariants(&m, &s);
        // Carve a reservation over ranks [2, 6) in the packed vector,
        // then refresh the index over the same range.
        let d = JobDemand::cpu_bb(3, 40.0);
        for state in &mut s[2..6] {
            let _ = m.free_alloc(state, &d);
        }
        t.refresh_range(2, 6, &m, &s);
        t.check_invariants(&m, &s);
        let probe = JobDemand::cpu_bb(6, 0.0);
        assert_eq!(t.first_blocking_at_or_after(0, &probe, &m, &s), Some(2));
        assert_eq!(t.first_blocking_at_or_after(6, &probe, &m, &s), None);
    }

    #[test]
    fn repeated_inserts_stay_balanced() {
        let m = machine();
        let mut s: Vec<FreeState> = Vec::new();
        let mut t = ProfileTree::default();
        t.rebuild(&m, &s);
        // Ascending-rank inserts are the worst case for a naive BST.
        for i in 0..200u32 {
            s.push(free(i % 16, f64::from(i)));
            t.insert(s.len() - 1, &m, &s);
        }
        t.check_invariants(&m, &s);
        // Height must be logarithmic: AVL guarantees <= 1.44 log2(n+2).
        assert!(t.height(t.root) <= 12, "height {} for 200 nodes", t.height(t.root));
        // And front inserts too.
        for i in 0..100u32 {
            s.insert(0, free(i % 9, 3.0 * f64::from(i)));
            t.insert(0, &m, &s);
        }
        t.check_invariants(&m, &s);
        // Mid inserts at a repeating rank.
        for i in 0..100u32 {
            s.insert(150, free(i % 5, 7.0 * f64::from(i)));
            t.insert(150, &m, &s);
        }
        t.check_invariants(&m, &s);
    }

    #[test]
    fn find_earliest_matches_linear_walk() {
        let m = machine();
        // A profile with alternating tight and roomy segments at varied
        // boundary gaps.
        let spec: Vec<(u32, f64)> = (0..37)
            .map(|i| match i % 5 {
                0 => (2, 30.0),
                1 => (10, 400.0),
                2 => (0, 0.0),
                3 => (64, 1000.0),
                _ => (5, 120.0),
            })
            .collect();
        let s = frees(&spec);
        let times: Vec<f64> = (0..37).map(|i| f64::from(i) * 60.0 + f64::from(i % 3)).collect();
        let mut t = ProfileTree::default();
        t.rebuild(&m, &s);
        for nodes in [0u32, 1, 3, 6, 11, 64] {
            for bb in [0.0, 25.0, 130.0, 500.0] {
                let d = JobDemand::cpu_bb(nodes, bb);
                for from in [0.0, 1.0, 59.0, 60.0, 61.5, 600.0, 2100.0, 2160.0, 5000.0] {
                    for duration in [1.0, 30.0, 60.0, 240.0, 3600.0, 1e6] {
                        assert_eq!(
                            t.find_earliest(&m, &times, &s, &d, from, duration).to_bits(),
                            linear_earliest(&m, &times, &s, &d, from, duration).to_bits(),
                            "d={d:?} from={from} duration={duration}"
                        );
                    }
                }
            }
        }
    }
}
