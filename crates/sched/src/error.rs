//! Typed errors for scheduler-core construction and event feeding.

use bbsched_workloads::SystemConfigError;

/// Everything that can go wrong configuring or feeding a
/// [`crate::SchedCore`] (drivers re-export this; the simulator calls it
/// `SimError` for compatibility).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// The system configuration failed validation.
    System(SystemConfigError),
    /// The window configuration failed validation.
    InvalidWindow(String),
    /// The dynamic-window configuration failed validation (e.g. `min`
    /// exceeding `max`, which used to panic mid-simulation inside
    /// `clamp`).
    InvalidDynamicWindow(String),
    /// A job can never fit the machine and the driver declined to clamp
    /// its demand (the simulator's `clamp_impossible` knob).
    ImpossibleJob {
        /// Trace job id.
        id: u64,
        /// Name of the system the job cannot fit.
        system: String,
        /// Requested compute nodes.
        nodes: u32,
        /// Requested shared burst buffer (GB).
        bb_gb: f64,
        /// Requested local SSD per node (GB).
        ssd_gb_per_node: f64,
    },
    /// A job with this id was already submitted
    /// ([`crate::SchedCore::submit`] keys running state on the id).
    DuplicateJob(u64),
    /// [`crate::SchedCore::job_finished`] named a job that was never
    /// submitted or is not currently running.
    UnknownJob(u64),
    /// A snapshot failed validation while being restored: internally
    /// inconsistent state (a running job the ledger never saw, a mirror
    /// release for no running job, demands exceeding machine capacity, …).
    /// The message names the first inconsistency found.
    CorruptSnapshot(String),
    /// A snapshot was written by an incompatible wire-schema version.
    ///
    /// There is no migration path by policy: a snapshot is a
    /// continuation token consumed by a build with the same schema
    /// version (today, exactly v1), not an archival format. Regenerate
    /// the snapshot from its producer rather than patching it — see
    /// DESIGN.md §12 ("resume requires `schema_version: 1`").
    SnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::System(e) => write!(f, "{e}"),
            SchedError::InvalidWindow(msg) => write!(f, "{msg}"),
            SchedError::InvalidDynamicWindow(msg) => write!(f, "invalid dynamic window: {msg}"),
            SchedError::ImpossibleJob { id, system, nodes, bb_gb, ssd_gb_per_node } => write!(
                f,
                "job {id} can never fit system '{system}' (nodes {nodes}, bb {bb_gb} GB, ssd {ssd_gb_per_node} GB/node)"
            ),
            SchedError::DuplicateJob(id) => write!(f, "job {id} was already submitted"),
            SchedError::UnknownJob(id) => {
                write!(f, "job {id} is not running (never submitted, never started, or already finished)")
            }
            SchedError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            SchedError::SnapshotVersion { found, expected } => {
                write!(f, "snapshot schema version {found} is not supported (expected {expected})")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemConfigError> for SchedError {
    fn from(e: SystemConfigError) -> Self {
        SchedError::System(e)
    }
}
