//! The online replay driver: step a [`SchedCore`] through a stream of
//! job events.
//!
//! Where the discrete-event simulator *generates* completions from job
//! runtimes, this driver consumes them: a newline-delimited JSON stream
//! of submit/finish events (a production scheduler's feed, a recorded
//! log, or a file synthesized from a simulation) drives the same core,
//! one invocation per event instant. Feeding a simulation's own event
//! stream back through [`Replayer`] reproduces the simulator's decision
//! sequence byte for byte — the driver-equivalence suites prove it —
//! which is what makes the core an embeddable service rather than a
//! simulator internal.
//!
//! ## Event wire format
//!
//! One JSON object per line:
//!
//! ```json
//! {"type":"submit","job":{"id":0,"submit":0.0,"nodes":4,"runtime":100.0,"walltime":200.0,"bb_gb":0.0,"ssd_gb_per_node":0.0,"deps":[],"extra":[]}}
//! {"type":"finish","id":0,"time":100.0}
//! ```
//!
//! Events must be non-decreasing in time across *instants*; events
//! sharing an instant may arrive in any order (submits are applied
//! before finishes, then one invocation runs — exactly the simulator's
//! same-instant batch drain, so within-tick order never changes the
//! schedule). Demands are capacity-clamped on submission with the same
//! [`crate::clamp_demand`] rule the simulator applies to traces.
//!
//! Decisions flow out through the attached [`SchedObserver`]s (attach a
//! [`crate::DecisionLog`] to collect them, or a streaming observer to
//! print them as they happen).

use crate::clamp::clamp_demand;
use crate::config::SchedConfig;
use crate::error::SchedError;
use crate::observer::SchedObserver;
use crate::service::SchedCore;
use bbsched_policies::SelectionPolicy;
use bbsched_workloads::{Job, SystemConfig};
use serde::{Deserialize, Serialize, Value};

/// One job event on the replay wire.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// A job entered the system.
    Submit(Job),
    /// A running job completed.
    Finish {
        /// Id of the finishing job.
        id: u64,
        /// Completion time (s).
        time: f64,
    },
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(f) => Some(f),
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) if n >= 0 => Some(n as u64),
        _ => None,
    }
}

impl JobEvent {
    /// The event's instant (a submit's `job.submit`, a finish's `time`).
    pub fn time(&self) -> f64 {
        match self {
            JobEvent::Submit(job) => job.submit,
            JobEvent::Finish { time, .. } => *time,
        }
    }

    /// Parses one wire line (see the module docs for the format).
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = serde_json::value_from_slice(line.as_bytes()).map_err(|e| e.to_string())?;
        let map = v.as_map().ok_or("event line is not a JSON object")?;
        let ty = get(map, "type")
            .and_then(Value::as_str)
            .ok_or("event is missing the string field `type`")?;
        match ty {
            "submit" => {
                let job_v = get(map, "job").ok_or("submit event is missing `job`")?;
                let job = Job::from_value(job_v).map_err(|e| format!("bad `job`: {e}"))?;
                Ok(JobEvent::Submit(job))
            }
            "finish" => {
                let id = get(map, "id")
                    .and_then(as_u64)
                    .ok_or("finish event is missing the integer field `id`")?;
                let time = get(map, "time")
                    .and_then(as_f64)
                    .ok_or("finish event is missing the number field `time`")?;
                Ok(JobEvent::Finish { id, time })
            }
            other => Err(format!("unknown event type `{other}` (expected submit|finish)")),
        }
    }

    /// Renders the event as one wire line (the exact encoding
    /// [`JobEvent::parse`] accepts; floats round-trip bit-exactly).
    pub fn to_json_line(&self) -> String {
        let map = match self {
            JobEvent::Submit(job) => vec![
                ("type".to_string(), Value::Str("submit".to_string())),
                ("job".to_string(), job.to_value()),
            ],
            JobEvent::Finish { id, time } => vec![
                ("type".to_string(), Value::Str("finish".to_string())),
                ("id".to_string(), Value::U64(*id)),
                ("time".to_string(), Value::F64(*time)),
            ],
        };
        serde_json::to_string(&crate::service::RawValue(Value::Map(map)))
            .expect("event maps always serialize")
    }
}

/// What can go wrong replaying an event stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The core rejected an event (duplicate submit, unknown finish, …).
    Sched(SchedError),
    /// An event's instant precedes an instant already replayed.
    TimeRegression {
        /// The offending event's time.
        time: f64,
        /// The instant the stream had already reached.
        reached: f64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Sched(e) => write!(f, "{e}"),
            ReplayError::TimeRegression { time, reached } => {
                write!(f, "event at t={time} regresses behind already-replayed instant t={reached}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SchedError> for ReplayError {
    fn from(e: SchedError) -> Self {
        ReplayError::Sched(e)
    }
}

/// End-of-stream accounting from [`Replayer::finish`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplaySummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Finish events applied.
    pub finishes: usize,
    /// Submitted jobs whose demand had to be capacity-clamped.
    pub clamped_jobs: usize,
    /// Scheduling invocations run (one per event instant with a
    /// non-empty queue).
    pub invocations: u64,
    /// Latest finish instant seen (0 when nothing finished).
    pub makespan: f64,
    /// Jobs still waiting in the queue when the stream ended.
    pub left_waiting: usize,
    /// Jobs still running when the stream ended.
    pub left_running: usize,
}

/// The streaming step-driver: feed [`JobEvent`]s in time order, get
/// scheduling invocations at every instant.
///
/// Events sharing an instant are batched; the batch is applied (submits,
/// then finishes) followed by exactly one [`SchedCore::invoke`] when the
/// next instant begins — mirroring the simulator's same-instant batch
/// drain, so within-tick event order is immaterial.
pub struct Replayer<'o> {
    core: SchedCore<'o>,
    system: SystemConfig,
    /// Submits and finishes pending at `batch_time`, split so the flush
    /// applies submits first regardless of arrival interleaving.
    pending_submits: Vec<Job>,
    pending_finishes: Vec<u64>,
    batch_time: Option<f64>,
    /// The latest instant already flushed (−∞ before the first flush);
    /// later batches must not regress behind it.
    last_flushed: f64,
    makespan: f64,
    finishes: usize,
    clamped: usize,
}

impl<'o> Replayer<'o> {
    /// A replayer over `system` with the given configuration, policy,
    /// and observers.
    pub fn new(
        system: &SystemConfig,
        cfg: SchedConfig,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, SchedError> {
        Ok(Self {
            core: SchedCore::new(system, cfg, policy, observers)?,
            system: system.clone(),
            pending_submits: Vec::new(),
            pending_finishes: Vec::new(),
            batch_time: None,
            last_flushed: f64::NEG_INFINITY,
            makespan: 0.0,
            finishes: 0,
            clamped: 0,
        })
    }

    /// Feeds one event. Flushes the pending batch (running a scheduling
    /// invocation) whenever the event opens a later instant.
    pub fn feed(&mut self, event: JobEvent) -> Result<(), ReplayError> {
        let t = event.time();
        if !t.is_finite() {
            return Err(ReplayError::TimeRegression { time: t, reached: self.reached() });
        }
        match self.batch_time {
            Some(bt) if t == bt => {}
            Some(bt) if t > bt => self.flush()?,
            Some(bt) => return Err(ReplayError::TimeRegression { time: t, reached: bt }),
            None => {
                if t < self.reached() {
                    return Err(ReplayError::TimeRegression { time: t, reached: self.reached() });
                }
            }
        }
        self.batch_time = Some(t);
        match event {
            JobEvent::Submit(job) => self.pending_submits.push(job),
            JobEvent::Finish { id, .. } => self.pending_finishes.push(id),
        }
        Ok(())
    }

    /// Ends the stream: flushes the final batch, raises
    /// [`SchedObserver::on_sim_end`], and returns the accounting.
    pub fn finish(mut self) -> Result<ReplaySummary, ReplayError> {
        self.flush()?;
        self.core.end_of_stream(self.makespan);
        Ok(ReplaySummary {
            jobs: self.core.jobs_submitted(),
            finishes: self.finishes,
            clamped_jobs: self.clamped,
            invocations: self.core.invocations(),
            makespan: self.makespan,
            left_waiting: self.core.queue_len(),
            left_running: self.core.ledger().running_count(),
        })
    }

    /// The latest instant already replayed (−∞ before the first flush).
    fn reached(&self) -> f64 {
        self.last_flushed
    }

    /// Applies the pending batch and runs one scheduling invocation.
    fn flush(&mut self) -> Result<(), ReplayError> {
        let Some(now) = self.batch_time.take() else { return Ok(()) };
        for job in self.pending_submits.drain(..) {
            let (demand, was_clamped) = clamp_demand(&self.system, &job);
            if was_clamped {
                self.clamped += 1;
            }
            self.core.submit(job, demand)?;
        }
        for id in self.pending_finishes.drain(..) {
            self.core.job_finished(id, now)?;
            self.finishes += 1;
            self.makespan = self.makespan.max(now);
        }
        self.core.invoke(now);
        self.last_flushed = now;
        Ok(())
    }
}
