//! The online replay driver: step a [`SchedCore`] through a stream of
//! job events.
//!
//! Where the discrete-event simulator *generates* completions from job
//! runtimes, this driver consumes them: a newline-delimited JSON stream
//! of submit/finish events (a production scheduler's feed, a recorded
//! log, or a file synthesized from a simulation) drives the same core,
//! one invocation per event instant. Feeding a simulation's own event
//! stream back through [`Replayer`] reproduces the simulator's decision
//! sequence byte for byte — the driver-equivalence suites prove it —
//! which is what makes the core an embeddable service rather than a
//! simulator internal.
//!
//! ## Event wire format
//!
//! One JSON object per line:
//!
//! ```json
//! {"type":"submit","job":{"id":0,"submit":0.0,"nodes":4,"runtime":100.0,"walltime":200.0,"bb_gb":0.0,"ssd_gb_per_node":0.0,"deps":[],"extra":[]}}
//! {"type":"finish","id":0,"time":100.0}
//! ```
//!
//! Events must be non-decreasing in time across *instants*; events
//! sharing an instant may arrive in any order (submits are applied
//! before finishes, then one invocation runs — exactly the simulator's
//! same-instant batch drain, so within-tick order never changes the
//! schedule). Demands are capacity-clamped on submission with the same
//! [`crate::clamp_demand`] rule the simulator applies to traces.
//!
//! Decisions flow out through the attached [`SchedObserver`]s (attach a
//! [`crate::DecisionLog`] to collect them, or a streaming observer to
//! print them as they happen).

use crate::clamp::clamp_demand;
use crate::config::SchedConfig;
use crate::error::SchedError;
use crate::observer::SchedObserver;
use crate::service::SchedCore;
use bbsched_policies::SelectionPolicy;
use bbsched_workloads::{Job, SystemConfig};
use serde::{Deserialize, Serialize, Value};

/// One job event on the replay wire.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// A job entered the system.
    Submit(Job),
    /// A running job completed.
    Finish {
        /// Id of the finishing job.
        id: u64,
        /// Completion time (s).
        time: f64,
    },
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::F64(f) => Some(f),
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(n) => Some(n),
        Value::I64(n) if n >= 0 => Some(n as u64),
        _ => None,
    }
}

impl JobEvent {
    /// The event's instant (a submit's `job.submit`, a finish's `time`).
    pub fn time(&self) -> f64 {
        match self {
            JobEvent::Submit(job) => job.submit,
            JobEvent::Finish { time, .. } => *time,
        }
    }

    /// Parses one wire line (see the module docs for the format).
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = serde_json::value_from_slice(line.as_bytes()).map_err(|e| e.to_string())?;
        let map = v.as_map().ok_or("event line is not a JSON object")?;
        let ty = get(map, "type")
            .and_then(Value::as_str)
            .ok_or("event is missing the string field `type`")?;
        match ty {
            "submit" => {
                let job_v = get(map, "job").ok_or("submit event is missing `job`")?;
                let job = Job::from_value(job_v).map_err(|e| format!("bad `job`: {e}"))?;
                Ok(JobEvent::Submit(job))
            }
            "finish" => {
                let id = get(map, "id")
                    .and_then(as_u64)
                    .ok_or("finish event is missing the integer field `id`")?;
                let time = get(map, "time")
                    .and_then(as_f64)
                    .ok_or("finish event is missing the number field `time`")?;
                Ok(JobEvent::Finish { id, time })
            }
            other => Err(format!("unknown event type `{other}` (expected submit|finish)")),
        }
    }

    /// Renders the event as one wire line (the exact encoding
    /// [`JobEvent::parse`] accepts; floats round-trip bit-exactly).
    pub fn to_json_line(&self) -> String {
        let map = match self {
            JobEvent::Submit(job) => vec![
                ("type".to_string(), Value::Str("submit".to_string())),
                ("job".to_string(), job.to_value()),
            ],
            JobEvent::Finish { id, time } => vec![
                ("type".to_string(), Value::Str("finish".to_string())),
                ("id".to_string(), Value::U64(*id)),
                ("time".to_string(), Value::F64(*time)),
            ],
        };
        serde_json::to_string(&crate::service::RawValue(Value::Map(map)))
            .expect("event maps always serialize")
    }
}

/// What can go wrong replaying an event stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The core rejected an event (duplicate submit, unknown finish, …).
    Sched(SchedError),
    /// An event's instant precedes an instant already replayed.
    TimeRegression {
        /// The offending event's time.
        time: f64,
        /// The instant the stream had already reached.
        reached: f64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Sched(e) => write!(f, "{e}"),
            ReplayError::TimeRegression { time, reached } => {
                write!(f, "event at t={time} regresses behind already-replayed instant t={reached}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SchedError> for ReplayError {
    fn from(e: SchedError) -> Self {
        ReplayError::Sched(e)
    }
}

/// End-of-stream accounting from [`Replayer::finish`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplaySummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Finish events applied.
    pub finishes: usize,
    /// Submitted jobs whose demand had to be capacity-clamped.
    pub clamped_jobs: usize,
    /// Scheduling invocations run (one per event instant with a
    /// non-empty queue).
    pub invocations: u64,
    /// Latest finish instant seen (0 when nothing finished).
    pub makespan: f64,
    /// Jobs still waiting in the queue when the stream ended.
    pub left_waiting: usize,
    /// Jobs still running when the stream ended.
    pub left_running: usize,
}

/// A checkpoint of a [`Replayer`] mid-stream: the core's complete
/// [`crate::CoreSnapshot`] plus the driver's own position in the event stream.
/// Serializes through the same versioned JSON conventions (the nested
/// core snapshot carries the schema version); `cli replay` writes one
/// with `--checkpoint` and resumes from one — in a fresh process — with
/// `--resume`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplaySnapshot {
    /// The scheduler core's complete cross-invocation state.
    pub core: crate::state::CoreSnapshot,
    /// The system whose capacities submits are clamped against.
    pub system: SystemConfig,
    /// Submits pending in the open same-instant batch.
    pub pending_submits: Vec<Job>,
    /// Finish ids pending in the open same-instant batch.
    pub pending_finishes: Vec<u64>,
    /// The open batch's instant (`None` when no batch is open).
    pub batch_time: Option<f64>,
    /// Latest flushed instant; `None` encodes "nothing flushed yet"
    /// (−∞ in the live driver, which JSON cannot carry as a number).
    pub last_flushed: Option<f64>,
    /// Latest finish instant seen.
    pub makespan: f64,
    /// Finish events applied.
    pub finishes: usize,
    /// Submitted jobs whose demand had to be capacity-clamped.
    pub clamped: usize,
    /// Events accepted by [`Replayer::feed`] when the checkpoint was
    /// taken: a resuming process skips exactly this many stream events.
    pub events_fed: u64,
}

/// The streaming step-driver: feed [`JobEvent`]s in time order, get
/// scheduling invocations at every instant.
///
/// Events sharing an instant are batched; the batch is applied (submits,
/// then finishes) followed by exactly one [`SchedCore::invoke`] when the
/// next instant begins — mirroring the simulator's same-instant batch
/// drain, so within-tick event order is immaterial.
pub struct Replayer<'o> {
    core: SchedCore<'o>,
    system: SystemConfig,
    /// Submits and finishes pending at `batch_time`, split so the flush
    /// applies submits first regardless of arrival interleaving.
    pending_submits: Vec<Job>,
    pending_finishes: Vec<u64>,
    batch_time: Option<f64>,
    /// The latest instant already flushed (−∞ before the first flush);
    /// later batches must not regress behind it.
    last_flushed: f64,
    makespan: f64,
    finishes: usize,
    clamped: usize,
    /// Events accepted by [`Replayer::feed`] so far. Recorded in
    /// checkpoints so a resuming process knows how many stream events to
    /// skip before continuing.
    events_fed: u64,
}

impl<'o> Replayer<'o> {
    /// A replayer over `system` with the given configuration, policy,
    /// and observers.
    pub fn new(
        system: &SystemConfig,
        cfg: SchedConfig,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, SchedError> {
        Ok(Self {
            core: SchedCore::new(system, cfg, policy, observers)?,
            system: system.clone(),
            pending_submits: Vec::new(),
            pending_finishes: Vec::new(),
            batch_time: None,
            last_flushed: f64::NEG_INFINITY,
            makespan: 0.0,
            finishes: 0,
            clamped: 0,
            events_fed: 0,
        })
    }

    /// Events accepted by [`Replayer::feed`] so far (see
    /// [`ReplaySnapshot::events_fed`]).
    pub fn events_fed(&self) -> u64 {
        self.events_fed
    }

    /// Extracts the replayer's complete state — the core's
    /// [`crate::CoreSnapshot`] plus the driver's own stream position: the
    /// pending same-instant batch, the flushed-instant watermark, and the
    /// running accounting. Valid at *any* event boundary, including
    /// mid-batch.
    pub fn snapshot(&self) -> ReplaySnapshot {
        ReplaySnapshot {
            core: self.core.snapshot(),
            system: self.system.clone(),
            pending_submits: self.pending_submits.clone(),
            pending_finishes: self.pending_finishes.clone(),
            batch_time: self.batch_time,
            last_flushed: if self.last_flushed.is_finite() {
                Some(self.last_flushed)
            } else {
                None
            },
            makespan: self.makespan,
            finishes: self.finishes,
            clamped: self.clamped,
            events_fed: self.events_fed,
        }
    }

    /// Rebuilds a replayer from a checkpoint — in a fresh process, with a
    /// fresh policy and observer set — and continues the event stream
    /// byte-identically to the uninterrupted run. The caller skips the
    /// first [`ReplaySnapshot::events_fed`] events of the stream and
    /// feeds the rest.
    pub fn restore(
        snapshot: ReplaySnapshot,
        policy: Box<dyn SelectionPolicy>,
        observers: Vec<&'o mut dyn SchedObserver>,
    ) -> Result<Self, SchedError> {
        snapshot.system.validate()?;
        if let Some(bt) = snapshot.batch_time {
            if !bt.is_finite() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "non-finite pending batch time {bt}"
                )));
            }
        }
        if let Some(lf) = snapshot.last_flushed {
            if !lf.is_finite() {
                return Err(SchedError::CorruptSnapshot(format!(
                    "non-finite flushed-instant watermark {lf}"
                )));
            }
        }
        Ok(Self {
            core: SchedCore::restore(snapshot.core, policy, observers)?,
            system: snapshot.system,
            pending_submits: snapshot.pending_submits,
            pending_finishes: snapshot.pending_finishes,
            batch_time: snapshot.batch_time,
            last_flushed: snapshot.last_flushed.unwrap_or(f64::NEG_INFINITY),
            makespan: snapshot.makespan,
            finishes: snapshot.finishes,
            clamped: snapshot.clamped,
            events_fed: snapshot.events_fed,
        })
    }

    /// Feeds one event. Flushes the pending batch (running a scheduling
    /// invocation) whenever the event opens a later instant.
    pub fn feed(&mut self, event: JobEvent) -> Result<(), ReplayError> {
        let t = event.time();
        if !t.is_finite() {
            return Err(ReplayError::TimeRegression { time: t, reached: self.reached() });
        }
        match self.batch_time {
            Some(bt) if t == bt => {}
            Some(bt) if t > bt => self.flush()?,
            Some(bt) => return Err(ReplayError::TimeRegression { time: t, reached: bt }),
            None => {
                if t < self.reached() {
                    return Err(ReplayError::TimeRegression { time: t, reached: self.reached() });
                }
            }
        }
        self.batch_time = Some(t);
        match event {
            JobEvent::Submit(job) => self.pending_submits.push(job),
            JobEvent::Finish { id, .. } => self.pending_finishes.push(id),
        }
        self.events_fed += 1;
        Ok(())
    }

    /// Ends the stream: flushes the final batch, raises
    /// [`SchedObserver::on_sim_end`], and returns the accounting.
    pub fn finish(mut self) -> Result<ReplaySummary, ReplayError> {
        self.flush()?;
        self.core.end_of_stream(self.makespan);
        Ok(ReplaySummary {
            jobs: self.core.jobs_submitted(),
            finishes: self.finishes,
            clamped_jobs: self.clamped,
            invocations: self.core.invocations(),
            makespan: self.makespan,
            left_waiting: self.core.queue_len(),
            left_running: self.core.ledger().running_count(),
        })
    }

    /// The latest instant already replayed (−∞ before the first flush).
    fn reached(&self) -> f64 {
        self.last_flushed
    }

    /// Applies the pending batch and runs one scheduling invocation.
    fn flush(&mut self) -> Result<(), ReplayError> {
        let Some(now) = self.batch_time.take() else { return Ok(()) };
        for job in self.pending_submits.drain(..) {
            let (demand, was_clamped) = clamp_demand(&self.system, &job);
            if was_clamped {
                self.clamped += 1;
            }
            self.core.submit(job, demand)?;
        }
        for id in self.pending_finishes.drain(..) {
            self.core.job_finished(id, now)?;
            self.finishes += 1;
            self.makespan = self.makespan.max(now);
        }
        self.core.invoke(now);
        self.last_flushed = now;
        Ok(())
    }
}

impl crate::durability::Driver for Replayer<'_> {
    type Snapshot = ReplaySnapshot;

    fn snapshot(&self) -> ReplaySnapshot {
        Replayer::snapshot(self)
    }

    /// Position in the event stream = events fed: a checkpoint at
    /// position N resumes by skipping the stream's first N events.
    fn position(&self) -> u64 {
        self.events_fed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::DecisionLog;
    use bbsched_policies::{GaParams, PolicyKind};

    fn system() -> SystemConfig {
        SystemConfig {
            name: "t".into(),
            nodes: 8,
            bb_gb: 1_000.0,
            bb_reserved_gb: 0.0,
            nodes_128: 0,
            nodes_256: 0,
            extra_resources: Vec::new(),
        }
    }

    fn events() -> Vec<JobEvent> {
        let mut ev = Vec::new();
        for i in 0..6u64 {
            ev.push(JobEvent::Submit(Job::new(
                i,
                i as f64,
                2 + (i % 3) as u32 * 2,
                30.0 + i as f64,
                60.0 + 2.0 * i as f64,
            )));
        }
        ev.push(JobEvent::Finish { id: 0, time: 35.0 });
        ev.push(JobEvent::Finish { id: 1, time: 36.0 });
        ev.push(JobEvent::Submit(Job::new(10, 36.0, 4, 20.0, 40.0)));
        ev.push(JobEvent::Finish { id: 3, time: 40.0 });
        ev
    }

    fn policy() -> Box<dyn bbsched_policies::SelectionPolicy> {
        PolicyKind::Baseline.build(GaParams::default())
    }

    /// Checkpoint at *every* event boundary: the split run's concatenated
    /// decision stream must equal the uninterrupted run's, byte for byte.
    #[test]
    fn checkpoint_resume_is_byte_identical_at_every_boundary() {
        let sys = system();
        let stream = events();
        let mut full_log = DecisionLog::new();
        {
            let mut r =
                Replayer::new(&sys, SchedConfig::default(), policy(), vec![&mut full_log]).unwrap();
            for e in &stream {
                r.feed(e.clone()).unwrap();
            }
            r.finish().unwrap();
        }
        let full = full_log.lines().to_vec();

        for cut in 0..=stream.len() {
            let mut head_log = DecisionLog::new();
            let mut r =
                Replayer::new(&sys, SchedConfig::default(), policy(), vec![&mut head_log]).unwrap();
            for e in &stream[..cut] {
                r.feed(e.clone()).unwrap();
            }
            let wire = serde_json::to_string(&r.snapshot()).unwrap();
            drop(r);

            let snap: ReplaySnapshot = serde_json::from_str(&wire).unwrap();
            assert_eq!(snap.events_fed, cut as u64);
            let mut tail_log = DecisionLog::new();
            let mut r = Replayer::restore(snap, policy(), vec![&mut tail_log]).unwrap();
            for e in &stream[cut..] {
                r.feed(e.clone()).unwrap();
            }
            let summary = r.finish().unwrap();
            assert_eq!(summary.jobs, 7);

            let mut joined = head_log.into_lines();
            joined.extend(tail_log.into_lines());
            assert_eq!(joined, full, "decision stream diverged at checkpoint boundary {cut}");
        }
    }

    #[test]
    fn snapshot_is_a_fixed_point_of_restore() {
        let sys = system();
        let mut r = Replayer::new(&sys, SchedConfig::default(), policy(), Vec::new()).unwrap();
        for e in events().into_iter().take(7) {
            r.feed(e).unwrap();
        }
        let snap = r.snapshot();
        let restored = Replayer::restore(snap.clone(), policy(), Vec::new()).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.events_fed(), 7);
    }
}
