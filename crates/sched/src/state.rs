//! Explicit, versioned state for the scheduler-service core.
//!
//! Every stateful component behind [`crate::SchedCore`] exposes an owned
//! state type and a uniform extract/inject contract (`snapshot()` /
//! `restore(state)`): the queue ([`crate::queue::QueueState`]), the
//! allocation ledger ([`crate::alloc::LedgerState`], including the
//! delta-log generation and the release order), the backfill strategy
//! (conservative: [`crate::backfill::ConservativeState`] = release
//! mirror plus persistent availability profile and skyline watermark),
//! the starvation tracker, and any policy with cross-invocation state
//! ([`bbsched_policies::SelectionPolicy::snapshot_state`]).
//!
//! [`CoreSnapshot`] aggregates them all into one owned, serializable
//! value: the *complete* cross-invocation state of a core between two
//! invocations. [`crate::SchedCore::snapshot`] extracts it,
//! [`crate::SchedCore::restore`] rebuilds a core from it, and
//! [`crate::SchedCore::fork`] branches a live core — the what-if
//! primitive `cli compare --fork-at` builds on.
//!
//! ## Wire encoding and versioning
//!
//! [`CoreSnapshot::to_json`] / [`CoreSnapshot::from_json`] define the
//! wire encoding: one JSON object whose first field is
//! `schema_version`. The schema is append-only — adding a field bumps
//! [`CoreSnapshot::SCHEMA_VERSION`] and decoding rejects any other
//! version with [`SchedError::SnapshotVersion`] *before* attempting the
//! full decode, so a future snapshot fails with a version diagnosis, not
//! a confusing missing-field error. Any structurally invalid payload is a
//! typed [`SchedError::CorruptSnapshot`], never a panic.
//!
//! The schema is deliberately insulated from performance work: the
//! availability profile's query indexes (column scan, segment tree,
//! skyline) and the conservative strategy's replay memo are
//! acceleration state, rebuilt from the flat representation on restore
//! and never serialized. [`crate::backfill::ConservativeState`] today
//! captures exactly what it captured when v1 was introduced — the raw
//! release mirror, the flat profile, and the skyline watermark — which
//! is why the indexed profile needed no schema bump and the v1 golden
//! snapshot is byte-unchanged. Resume requires `schema_version: 1`; no
//! migration path exists by policy (DESIGN.md §12).
//!
//! ## What a snapshot does NOT capture
//!
//! * **Observers.** They are borrowed, driver-owned views of the event
//!   stream, not core state; [`crate::SchedCore::restore`] takes a fresh
//!   observer set. Drivers that need continuous metrics across a
//!   checkpoint merge per-segment recorder output (see the
//!   driver-equivalence tests).
//! * **Per-invocation scratch.** Selection buffers, the started bitset,
//!   and decision buffers are rebuilt from scratch each invocation;
//!   snapshots are only meaningful *between* invocations.

use crate::config::SchedConfig;
use crate::error::SchedError;
use crate::queue::QueueState;
use bbsched_core::problem::JobDemand;
use bbsched_workloads::Job;
use serde::{Deserialize, Serialize, Value};

/// The complete cross-invocation state of a [`crate::SchedCore`], as one
/// owned, serializable value (see the module docs for the contract).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreSnapshot {
    /// Wire-format version; see [`CoreSnapshot::SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The core's full configuration (base scheduler, window and
    /// starvation bounds, backfill algorithm and scope, dynamic window).
    pub config: SchedConfig,
    /// Every job ever submitted, in dense submission-index order.
    pub jobs: Vec<Job>,
    /// The capacity-clamped demand of each job, aligned with `jobs`.
    pub demands: Vec<JobDemand>,
    /// The waiting queue: discipline and held order.
    pub queue: QueueState,
    /// The allocation ledger: bit-exact free pool, running set in release
    /// order, delta log and generation counters.
    pub ledger: crate::alloc::LedgerState,
    /// Backfill-strategy state, if the strategy carries any across
    /// invocations (conservative: mirror + profile + skyline watermark;
    /// EASY: `None` — it replans from the ledger every pass).
    pub backfill: Option<Value>,
    /// Starvation-tracker entries as sorted `(job id, bypass count)`
    /// pairs.
    pub starvation: Vec<(u64, u32)>,
    /// Ids of finished jobs (dependency bookkeeping), sorted ascending.
    pub completed: Vec<u64>,
    /// Scheduling invocations run so far (empty-queue no-ops excluded).
    pub invocations: u64,
    /// The most recent invocation time fed to the core (0 before any).
    pub clock: f64,
    /// The selection policy the snapshot was taken under.
    pub policy: PolicySnapshot,
}

/// The policy identity and cross-invocation state recorded in a
/// [`CoreSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// [`bbsched_policies::SelectionPolicy::name`] of the policy in use.
    pub name: String,
    /// Its cross-invocation state, if it carries any (most policies are
    /// stateless per invocation and record `None`).
    pub state: Option<Value>,
}

impl CoreSnapshot {
    /// Current wire-format version. Bumped whenever the snapshot schema
    /// changes shape; [`CoreSnapshot::from_json`] rejects every other
    /// version with [`SchedError::SnapshotVersion`].
    pub const SCHEMA_VERSION: u32 = 1;

    /// Encodes the snapshot as one compact JSON object (the wire
    /// encoding; stable field order, shortest-round-trip floats).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshots always serialize")
    }

    /// Decodes a snapshot from its JSON wire encoding. The
    /// `schema_version` field is checked *first*, so a snapshot from a
    /// different schema fails with [`SchedError::SnapshotVersion`]; any
    /// other structural problem is [`SchedError::CorruptSnapshot`].
    pub fn from_json(text: &str) -> Result<Self, SchedError> {
        let value = serde_json::value_from_slice(text.as_bytes())
            .map_err(|e| SchedError::CorruptSnapshot(format!("invalid JSON: {e}")))?;
        let map = value
            .as_map()
            .ok_or_else(|| SchedError::CorruptSnapshot("snapshot must be a JSON object".into()))?;
        let version = map
            .iter()
            .find(|(k, _)| k == "schema_version")
            .map(|(_, v)| v)
            .ok_or_else(|| SchedError::CorruptSnapshot("missing `schema_version`".into()))?;
        let found = u32::from_value(version)
            .map_err(|e| SchedError::CorruptSnapshot(format!("schema_version: {e}")))?;
        if found != Self::SCHEMA_VERSION {
            return Err(SchedError::SnapshotVersion { found, expected: Self::SCHEMA_VERSION });
        }
        Self::from_value(&value).map_err(|e| SchedError::CorruptSnapshot(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_checked_before_shape() {
        // A payload that is *only* a wrong version — no other fields —
        // must fail with the version diagnosis, not a missing-field error.
        let err = CoreSnapshot::from_json(r#"{"schema_version":99}"#).unwrap_err();
        assert!(matches!(err, SchedError::SnapshotVersion { found: 99, expected: 1 }), "got {err}");
    }

    #[test]
    fn garbage_is_a_typed_corrupt_snapshot() {
        for text in ["not json", "[]", "{}", r#"{"schema_version":"one"}"#] {
            let err = CoreSnapshot::from_json(text).unwrap_err();
            assert!(matches!(err, SchedError::CorruptSnapshot(_)), "{text}: got {err}");
        }
    }
}
