//! Shared experiment grid driver with on-disk result caching.

use bbsched_metrics::{MeasurementWindow, MethodSummary};
use bbsched_policies::{GaParams, PolicyKind};
use bbsched_sim::{BaseScheduler, SimConfig, SimResult, Simulator};
use bbsched_workloads::{generate, GeneratorConfig, MachineProfile, Trace, Workload};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The two evaluation systems (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// Cori (NERSC): capacity computing, Slurm, FCFS base.
    Cori,
    /// Theta (ALCF): capability computing, Cobalt, WFP base.
    Theta,
}

impl Machine {
    /// Both machines.
    pub fn both() -> [Machine; 2] {
        [Machine::Cori, Machine::Theta]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Machine::Cori => "Cori",
            Machine::Theta => "Theta",
        }
    }

    /// The paper's base scheduler pairing (§4.3).
    pub fn base(&self) -> BaseScheduler {
        match self {
            Machine::Cori => BaseScheduler::Fcfs,
            Machine::Theta => BaseScheduler::Wfp,
        }
    }

    /// Calibrated generator profile, scaled by `factor`.
    pub fn profile(&self, factor: f64) -> MachineProfile {
        let p = match self {
            Machine::Cori => MachineProfile::cori(),
            Machine::Theta => MachineProfile::theta(),
        };
        if (factor - 1.0).abs() < f64::EPSILON {
            p
        } else {
            p.scaled(factor)
        }
    }
}

/// Experiment scale knobs (see crate docs for the environment variables).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Jobs per generated trace.
    pub n_jobs: usize,
    /// Machine scale factor in (0, 1].
    pub system_factor: f64,
    /// GA generations per scheduling invocation.
    pub generations: usize,
    /// Master seed.
    pub seed: u64,
    /// Target offered load of generated traces.
    pub load_factor: f64,
    /// Window size (paper default 20).
    pub window: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            n_jobs: 5_000,
            system_factor: 0.05,
            generations: 500,
            seed: 7,
            load_factor: 1.15,
            window: 20,
        }
    }
}

impl Scale {
    /// Reads the scale from `BBSCHED_*` environment variables, falling back
    /// to defaults.
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = Self::default();
        Self {
            n_jobs: var("BBSCHED_JOBS", d.n_jobs),
            system_factor: var("BBSCHED_SCALE", d.system_factor),
            generations: var("BBSCHED_GENS", d.generations),
            seed: var("BBSCHED_SEED", d.seed),
            load_factor: var("BBSCHED_LOAD", d.load_factor),
            window: var("BBSCHED_WINDOW", d.window),
        }
    }

    /// GA hyper-parameters implied by this scale.
    pub fn ga(&self) -> GaParams {
        GaParams {
            generations: self.generations,
            base_seed: self.seed ^ 0xbb5c,
            ..GaParams::default()
        }
    }
}

/// Builds the base ("Original") trace for a machine at this scale.
pub fn base_trace(machine: Machine, scale: &Scale) -> Trace {
    let profile = machine.profile(scale.system_factor);
    generate(
        &profile,
        &GeneratorConfig {
            n_jobs: scale.n_jobs,
            seed: scale.seed ^ (machine as u64).wrapping_mul(0x9e37),
            load_factor: scale.load_factor,
            ..GeneratorConfig::default()
        },
    )
}

/// Builds the trace for a workload variant of a machine. The S1–S4 pool
/// thresholds scale with the machine factor.
pub fn workload_trace(machine: Machine, workload: Workload, scale: &Scale) -> Trace {
    let base = base_trace(machine, scale);
    workload.apply_scaled(&base, scale.seed ^ 0x5eed, scale.system_factor)
}

fn cache_dir() -> PathBuf {
    std::env::var("BBSCHED_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/bbsched_cache"))
}

fn cache_key(
    machine: Machine,
    workload: Workload,
    kind: PolicyKind,
    scale: &Scale,
    window_override: Option<usize>,
) -> String {
    format!(
        "{}-{}-{}-j{}-f{}-g{}-s{}-l{}-w{}",
        machine.name(),
        workload.name(),
        kind.name(),
        scale.n_jobs,
        scale.system_factor,
        scale.generations,
        scale.seed,
        scale.load_factor,
        window_override.unwrap_or(scale.window),
    )
}

/// Simulates one `machine × workload × policy` cell, reading/writing the
/// on-disk cache. `window_override` changes the window size (Table 3).
pub fn cell_result_with_window(
    machine: Machine,
    workload: Workload,
    kind: PolicyKind,
    scale: &Scale,
    window_override: Option<usize>,
) -> SimResult {
    cell_result_in(&cache_dir(), machine, workload, kind, scale, window_override)
}

/// Like [`cell_result_with_window`] with an explicit cache directory
/// (avoids process-global environment mutation; used by tests).
pub fn cell_result_in(
    dir: &std::path::Path,
    machine: Machine,
    workload: Workload,
    kind: PolicyKind,
    scale: &Scale,
    window_override: Option<usize>,
) -> SimResult {
    let path =
        dir.join(format!("{}.json", cache_key(machine, workload, kind, scale, window_override)));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(result) = serde_json::from_slice::<SimResult>(&bytes) {
            return result;
        }
    }

    let trace = workload_trace(machine, workload, scale);
    let mut profile = machine.profile(scale.system_factor);
    let ssd_workload = matches!(workload, Workload::S5 | Workload::S6 | Workload::S7);
    if ssd_workload {
        profile.system = profile.system.with_ssd_split();
    }
    let mut window = bbsched_core::window::WindowConfig::default();
    window.size = window_override.unwrap_or(scale.window);
    let cfg = SimConfig { base: machine.base(), window, ..SimConfig::default() };
    let result = Simulator::new(&profile.system, &trace, cfg)
        .expect("simulation setup failed")
        .run(kind.build(scale.ga()));

    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(bytes) = serde_json::to_vec(&result) {
            let _ = std::fs::write(&path, bytes);
        }
    }
    result
}

/// Cached cell simulation at the scale's default window size.
pub fn cell_result(
    machine: Machine,
    workload: Workload,
    kind: PolicyKind,
    scale: &Scale,
) -> SimResult {
    cell_result_with_window(machine, workload, kind, scale, None)
}

/// Cached cell summary (§4.2 metrics with warm-up/cool-down trimming).
pub fn cell_summary(
    machine: Machine,
    workload: Workload,
    kind: PolicyKind,
    scale: &Scale,
) -> MethodSummary {
    MethodSummary::from_result(
        &cell_result(machine, workload, kind, scale),
        MeasurementWindow::default(),
    )
}

/// One `machine × workload × policy` cell of the experiment grid.
pub type GridCell = (Machine, Workload, PolicyKind);

/// Worker threads for grid sweeps: `BBSCHED_THREADS`, default 1 (serial).
pub fn sweep_threads() -> usize {
    std::env::var("BBSCHED_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// Simulates a batch of grid cells on `threads` workers, with an explicit
/// cache directory.
///
/// Whole cells are the parallel grain (see `bbsched_core::parallel`): each
/// cell derives its seeds from the scale and its own coordinates, never
/// from sweep order or thread identity, and [`run_batch`] returns results
/// in input order — so a `threads > 1` sweep is byte-identical to a serial
/// one.
///
/// [`run_batch`]: bbsched_core::parallel::run_batch
pub fn sweep_results_in(
    dir: &std::path::Path,
    cells: &[GridCell],
    scale: &Scale,
    threads: usize,
) -> Vec<SimResult> {
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(machine, workload, kind)| {
            let (dir, scale) = (dir.to_path_buf(), *scale);
            move || cell_result_in(&dir, machine, workload, kind, &scale, None)
        })
        .collect();
    bbsched_core::parallel::run_batch(threads, jobs)
}

/// [`sweep_results_in`] against the shared on-disk cache.
pub fn sweep_results(cells: &[GridCell], scale: &Scale, threads: usize) -> Vec<SimResult> {
    sweep_results_in(&cache_dir(), cells, scale, threads)
}

/// Sweeps the cells and reduces each result to its §4.2 summary, in input
/// order.
pub fn sweep_summaries(cells: &[GridCell], scale: &Scale, threads: usize) -> Vec<MethodSummary> {
    sweep_results(cells, scale, threads)
        .iter()
        .map(|r| MethodSummary::from_result(r, MeasurementWindow::default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n_jobs: 60,
            system_factor: 0.01,
            generations: 20,
            seed: 3,
            load_factor: 1.0,
            window: 10,
        }
    }

    #[test]
    fn machines_pair_with_paper_bases() {
        assert_eq!(Machine::Cori.base(), BaseScheduler::Fcfs);
        assert_eq!(Machine::Theta.base(), BaseScheduler::Wfp);
    }

    #[test]
    fn traces_are_deterministic_per_machine() {
        let s = tiny();
        assert_eq!(base_trace(Machine::Cori, &s), base_trace(Machine::Cori, &s));
        assert_ne!(base_trace(Machine::Cori, &s), base_trace(Machine::Theta, &s));
    }

    fn test_cache(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bbsched_cache_{tag}_{}", std::process::id()))
    }

    #[test]
    fn cell_runs_and_caches() {
        let s = tiny();
        let dir = test_cache("roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let a = cell_result_in(
            &dir,
            Machine::Theta,
            Workload::Original,
            PolicyKind::Baseline,
            &s,
            None,
        );
        assert_eq!(a.records.len(), 60);
        // Second call must hit the cache and agree.
        let b = cell_result_in(
            &dir,
            Machine::Theta,
            Workload::Original,
            PolicyKind::Baseline,
            &s,
            None,
        );
        assert_eq!(a.records, b.records);
        // Determinism: a fresh computation in an empty cache also agrees.
        let dir2 = test_cache("fresh");
        std::fs::remove_dir_all(&dir2).ok();
        let c = cell_result_in(
            &dir2,
            Machine::Theta,
            Workload::Original,
            PolicyKind::Baseline,
            &s,
            None,
        );
        assert_eq!(a.records, c.records);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn summary_has_sane_ranges() {
        let s = tiny();
        let dir = test_cache("summary");
        let r = cell_result_in(&dir, Machine::Cori, Workload::S1, PolicyKind::BinPacking, &s, None);
        let m = bbsched_metrics::MethodSummary::from_result(
            &r,
            bbsched_metrics::MeasurementWindow::default(),
        );
        assert!((0.0..=1.0 + 1e-9).contains(&m.node_usage()), "node usage {}", m.node_usage());
        assert!((0.0..=1.0 + 1e-9).contains(&m.bb_usage()), "bb usage {}", m.bb_usage());
        assert!(m.avg_wait >= 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let s = tiny();
        let cells: Vec<GridCell> = vec![
            (Machine::Theta, Workload::Original, PolicyKind::Baseline),
            (Machine::Theta, Workload::S1, PolicyKind::BinPacking),
            (Machine::Theta, Workload::Original, PolicyKind::BbSched),
            (Machine::Cori, Workload::S2, PolicyKind::Baseline),
            (Machine::Cori, Workload::Original, PolicyKind::BinPacking),
        ];
        let (dir_serial, dir_par) = (test_cache("sweep_serial"), test_cache("sweep_par"));
        std::fs::remove_dir_all(&dir_serial).ok();
        std::fs::remove_dir_all(&dir_par).ok();
        let serial = sweep_results_in(&dir_serial, &cells, &s, 1);
        let par = sweep_results_in(&dir_par, &cells, &s, 4);
        let bytes = |rs: &[SimResult]| -> Vec<Vec<u8>> {
            rs.iter().map(|r| serde_json::to_vec(r).unwrap()).collect()
        };
        assert_eq!(bytes(&serial), bytes(&par), "parallel sweep must match serial byte-for-byte");
        std::fs::remove_dir_all(&dir_serial).ok();
        std::fs::remove_dir_all(&dir_par).ok();
    }

    #[test]
    fn sweep_threads_defaults_to_serial() {
        // The test environment does not set BBSCHED_THREADS.
        if std::env::var("BBSCHED_THREADS").is_err() {
            assert_eq!(sweep_threads(), 1);
        }
    }

    #[test]
    fn ssd_workloads_get_ssd_system() {
        let s = tiny();
        let dir = test_cache("ssd");
        let r = cell_result_in(&dir, Machine::Theta, Workload::S5, PolicyKind::Baseline, &s, None);
        assert!(r.system.has_local_ssd());
        std::fs::remove_dir_all(&dir).ok();
    }
}
