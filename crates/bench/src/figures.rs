//! Shared rendering for the figure binaries.
//!
//! Figures 6, 7, 8, and 12 are the same experiment grid (2 machines ×
//! 5 workloads × 8 policies) viewed through different metrics;
//! [`print_metric_grid`] runs the grid once (via the shared cache) and
//! prints one table per machine with policies as rows and workloads as
//! columns, mirroring the paper's bar-group layout.

use crate::experiments::{cell_summary, Machine, Scale};
use crate::report::Table;
use bbsched_metrics::MethodSummary;
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

/// Prints the standard `machine × workload × policy` grid for one metric.
pub fn print_metric_grid<F>(title: &str, scale: &Scale, metric: F)
where
    F: Fn(&MethodSummary) -> String,
{
    println!("{title}");
    println!("scale: {scale:?}\n");
    for machine in Machine::both() {
        let mut header: Vec<String> = vec!["Method".to_string()];
        header.extend(
            Workload::main_grid().iter().map(|w| format!("{}-{}", machine.name(), w.name())),
        );
        let mut table = Table::new(header);
        for kind in PolicyKind::main_roster() {
            let mut row = vec![kind.name().to_string()];
            for workload in Workload::main_grid() {
                let summary = cell_summary(machine, workload, kind, scale);
                row.push(metric(&summary));
            }
            table.row(row);
        }
        println!("--- {} (base: {}) ---", machine.name(), machine.base().name());
        table.print();
        println!();
    }
}

/// Collects the full grid of summaries for a machine (policy-major order).
pub fn machine_grid(machine: Machine, scale: &Scale) -> Vec<(PolicyKind, Vec<MethodSummary>)> {
    PolicyKind::main_roster()
        .into_iter()
        .map(|kind| {
            let row = Workload::main_grid()
                .into_iter()
                .map(|w| cell_summary(machine, w, kind, scale))
                .collect();
            (kind, row)
        })
        .collect()
}

/// Percentage improvement of `new` over `baseline` where *smaller is
/// better* (wait time, slowdown): positive = improvement.
pub fn reduction_pct(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - new) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(100.0, 59.0), 41.0);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
        assert!(reduction_pct(50.0, 60.0) < 0.0);
    }
}
