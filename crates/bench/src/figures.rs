//! Shared rendering for the figure binaries.
//!
//! Figures 6, 7, 8, and 12 are the same experiment grid (2 machines ×
//! 5 workloads × 8 policies) viewed through different metrics;
//! [`print_metric_grid`] runs the grid once (via the shared cache) and
//! prints one table per machine with policies as rows and workloads as
//! columns, mirroring the paper's bar-group layout.

use crate::experiments::{sweep_summaries, sweep_threads, GridCell, Machine, Scale};
use crate::report::Table;
use bbsched_metrics::MethodSummary;
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

/// Prints the standard `machine × workload × policy` grid for one metric.
///
/// All cells (both machines) are simulated up front through the parallel
/// sweep driver — `BBSCHED_THREADS` workers, serial by default — and then
/// printed in the fixed grid order, so the output never depends on the
/// thread count.
pub fn print_metric_grid<F>(title: &str, scale: &Scale, metric: F)
where
    F: Fn(&MethodSummary) -> String,
{
    println!("{title}");
    println!("scale: {scale:?}\n");
    let cells: Vec<GridCell> = Machine::both()
        .into_iter()
        .flat_map(|machine| {
            PolicyKind::main_roster().into_iter().flat_map(move |kind| {
                Workload::main_grid().into_iter().map(move |w| (machine, w, kind))
            })
        })
        .collect();
    let summaries = sweep_summaries(&cells, scale, sweep_threads());
    let mut next = summaries.iter();
    for machine in Machine::both() {
        let mut header: Vec<String> = vec!["Method".to_string()];
        header.extend(
            Workload::main_grid().iter().map(|w| format!("{}-{}", machine.name(), w.name())),
        );
        let mut table = Table::new(header);
        for kind in PolicyKind::main_roster() {
            let mut row = vec![kind.name().to_string()];
            for _ in Workload::main_grid() {
                row.push(metric(next.next().expect("one summary per cell")));
            }
            table.row(row);
        }
        println!("--- {} (base: {}) ---", machine.name(), machine.base().name());
        table.print();
        println!();
    }
}

/// Collects the full grid of summaries for a machine (policy-major order),
/// simulating the cells through the parallel sweep driver.
pub fn machine_grid(machine: Machine, scale: &Scale) -> Vec<(PolicyKind, Vec<MethodSummary>)> {
    let cells: Vec<GridCell> = PolicyKind::main_roster()
        .into_iter()
        .flat_map(|kind| Workload::main_grid().into_iter().map(move |w| (machine, w, kind)))
        .collect();
    let mut summaries = sweep_summaries(&cells, scale, sweep_threads()).into_iter();
    PolicyKind::main_roster()
        .into_iter()
        .map(|kind| {
            let row = Workload::main_grid().iter().map(|_| summaries.next().unwrap()).collect();
            (kind, row)
        })
        .collect()
}

/// Percentage improvement of `new` over `baseline` where *smaller is
/// better* (wait time, slowdown): positive = improvement.
pub fn reduction_pct(baseline: f64, new: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - new) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert_eq!(reduction_pct(100.0, 59.0), 41.0);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
        assert!(reduction_pct(50.0, 60.0) < 0.0);
    }
}
