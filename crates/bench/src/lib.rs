//! # bbsched-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md §5 for the index) plus Criterion micro-benchmarks.
//!
//! All figure binaries share the grid driver in [`experiments`], which
//! simulates `machine × workload × policy` cells and caches results on disk
//! so that Figs. 6, 7, 8, 12, and 13 — different views of the same grid —
//! only pay for the simulations once.
//!
//! ## Scale
//!
//! The paper's traces hold 70 K – 2.6 M jobs on machines with thousands of
//! nodes; the harness defaults to scaled-down replicas (5 % machine size,
//! 2 000 jobs, `G = 200`) that preserve every demand-to-capacity ratio and
//! finish the full grid in minutes. Environment variables raise fidelity:
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `BBSCHED_JOBS` | 2000 | jobs per trace |
//! | `BBSCHED_SCALE` | 0.05 | machine scale factor |
//! | `BBSCHED_GENS` | 200 | GA generations per invocation |
//! | `BBSCHED_SEED` | 7 | master seed |
//! | `BBSCHED_LOAD` | 1.15 | offered load target |
//! | `BBSCHED_CACHE` | `target/bbsched_cache` | result cache directory |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod figures;
pub mod report;

pub use experiments::{cell_result, cell_summary, Machine, Scale};
pub use report::Table;
