//! Plain-text table rendering for the figure/table binaries.

/// A simple aligned text table: header row plus data rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                let c = &cells[i];
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{c:<w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{c:>w$}", w = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with two decimals ("64.90%").
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats seconds as hours with two decimals.
pub fn hours(seconds: f64) -> String {
    format!("{:.2}h", seconds / 3600.0)
}

/// Formats a float with the given number of decimals.
pub fn fixed(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Method", "Usage"]);
        t.row(vec!["Baseline", "52.10%"]);
        t.row(vec!["BBSched", "64.90%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].contains("Baseline"));
        assert!(lines[3].contains("64.90%"));
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.649), "64.90%");
        assert_eq!(hours(7_200.0), "2.00h");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('x'));
    }
}
