//! Figure 6: node usage of all eight methods across all ten workloads.
//!
//! Paper shape: BBSched yields the best node usage on most workloads and
//! its lead grows with burst-buffer pressure (S3/S4); Constrained_CPU is
//! competitive when burst buffer is abundant; Weighted_BB/Constrained_BB
//! trade node usage away.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig6_node_usage`

use bbsched_bench::experiments::Scale;
use bbsched_bench::figures::print_metric_grid;
use bbsched_bench::report::pct;

fn main() {
    let scale = Scale::from_env();
    print_metric_grid("Figure 6: node usage", &scale, |s| pct(s.node_usage()));
}
