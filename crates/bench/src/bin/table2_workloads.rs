//! Table 2: overview of the Cori and Theta workloads.
//!
//! Prints the calibration statistics of the generated traces next to the
//! paper's published values so deviations are visible at a glance.
//!
//! Run: `cargo run --release -p bbsched-bench --bin table2_workloads`

use bbsched_bench::experiments::{base_trace, Machine, Scale};
use bbsched_bench::report::Table;
use bbsched_workloads::GB_PER_TB;

fn main() {
    let scale = Scale::from_env();
    println!("Table 2: workload overview (generated at scale {:?})\n", scale.system_factor);

    let mut table = Table::new(vec!["", "Cori", "Theta"]);
    let cori = base_trace(Machine::Cori, &scale);
    let theta = base_trace(Machine::Theta, &scale);
    let cs = cori.stats();
    let ts = theta.stats();
    let csys = Machine::Cori.profile(scale.system_factor).system;
    let tsys = Machine::Theta.profile(scale.system_factor).system;

    table.row(vec!["Scheduler (base)".to_string(), "Slurm (FCFS)".into(), "Cobalt (WFP)".into()]);
    table.row(vec![
        "System type".to_string(),
        "Capacity computing".into(),
        "Capability computing".into(),
    ]);
    table.row(vec!["Compute nodes".to_string(), csys.nodes.to_string(), tsys.nodes.to_string()]);
    table.row(vec![
        "Shared burst buffer (TB)".to_string(),
        format!("{:.1}", csys.bb_gb / GB_PER_TB),
        format!("{:.1}", tsys.bb_gb / GB_PER_TB),
    ]);
    table.row(vec![
        "  of which reserved (TB)".to_string(),
        format!("{:.1}", csys.bb_reserved_gb / GB_PER_TB),
        format!("{:.1}", tsys.bb_reserved_gb / GB_PER_TB),
    ]);
    table.row(vec!["Number of jobs".to_string(), cs.n_jobs.to_string(), ts.n_jobs.to_string()]);
    table.row(vec![
        "Jobs requesting BB".to_string(),
        format!("{:.3}% (paper 0.618%)", cs.bb_fraction() * 100.0),
        format!("{:.2}% (paper 17.18%)", ts.bb_fraction() * 100.0),
    ]);
    let range = |r: Option<(f64, f64)>| match r {
        Some((lo, hi)) => format!("[{:.1} GB, {:.1} TB]", lo, hi / GB_PER_TB),
        None => "-".to_string(),
    };
    table.row(vec!["BB request range".to_string(), range(cs.bb_range_gb), range(ts.bb_range_gb)]);
    table.row(vec![
        "Aggregate BB requested (TB)".to_string(),
        format!("{:.1}", cs.total_bb_gb / GB_PER_TB),
        format!("{:.1}", ts.total_bb_gb / GB_PER_TB),
    ]);
    table.row(vec![
        "Trace span (days)".to_string(),
        format!("{:.1}", cs.span_seconds / 86_400.0),
        format!("{:.1}", ts.span_seconds / 86_400.0),
    ]);
    table.row(vec![
        "Offered node load".to_string(),
        format!("{:.2}", cs.offered_load(csys.nodes)),
        format!("{:.2}", ts.offered_load(tsys.nodes)),
    ]);
    table.print();
    println!(
        "\nPaper reference (full scale): Cori 12,076 nodes / 1.8 PB BB / 2.6 M jobs;\n\
         Theta 4,392 nodes / 1.26 PB projected BB / 70.5 K jobs. The generated traces\n\
         reproduce the demand-to-capacity ratios at the configured scale factor."
    );
}
