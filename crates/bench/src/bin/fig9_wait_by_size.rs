//! Figure 9: breakdown of average job wait time by job size (Theta-S4).
//!
//! Paper shape: the optimization methods' biggest wins come from small
//! jobs (BBSched −48.29% on 1–8 node jobs vs −31.59% on the largest
//! class), because joint selection beats EASY backfilling at avoiding
//! multi-resource fragmentation.
//!
//! Job-size bins are expressed as fractions of the machine so the shape is
//! scale-invariant (the paper's 1–8 / ... / 1024–4392 bins assume the full
//! 4,392-node Theta).
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig9_wait_by_size`

use bbsched_bench::experiments::{cell_result, Machine, Scale};
use bbsched_bench::report::{hours, Table};
use bbsched_metrics::{breakdown_by, Bin, MeasurementWindow};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    let nodes = f64::from(Machine::Theta.profile(scale.system_factor).system.nodes);
    let bins = vec![
        Bin::new(0.0, nodes * 0.04, "tiny (<4% of nodes)"),
        Bin::new(nodes * 0.04, nodes * 0.12, "small (4-12%)"),
        Bin::new(nodes * 0.12, nodes * 0.30, "medium (12-30%)"),
        Bin::new(nodes * 0.30, nodes * 0.60, "large (30-60%)"),
        Bin::new(nodes * 0.60, f64::INFINITY, "huge (>60%)"),
    ];

    println!("Figure 9: average wait time by job size on Theta-S4\n");
    let mut table = Table::new(vec![
        "Method",
        &bins[0].label,
        &bins[1].label,
        &bins[2].label,
        &bins[3].label,
        &bins[4].label,
    ]);
    let window = MeasurementWindow::default();
    for kind in PolicyKind::main_roster() {
        let result = cell_result(Machine::Theta, Workload::S4, kind, &scale);
        let (t0, t1) = window.interval(&result.records);
        let measured: Vec<_> =
            result.records.iter().filter(|r| window.contains(r, t0, t1)).cloned().collect();
        let rows = breakdown_by(&measured, &bins, |r| f64::from(r.nodes));
        let mut out = vec![kind.name().to_string()];
        out.extend(rows.iter().map(|(_, avg, n)| format!("{} (n={})", hours(*avg), n)));
        table.row(out);
    }
    table.print();
    println!(
        "\nExpected shape: BBSched's largest relative reduction vs Baseline lands in the\n\
         smallest size class; large jobs improve too but less dramatically."
    );
}
