//! Figure 12: average (filtered) job slowdown of all eight methods across
//! all ten workloads (lower is better).
//!
//! Paper shape: trends mirror wait time (Fig. 8); S4 workloads show the
//! highest slowdowns because burst-buffer contention idles nodes.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig12_slowdown`

use bbsched_bench::experiments::Scale;
use bbsched_bench::figures::print_metric_grid;
use bbsched_bench::report::fixed;

fn main() {
    let scale = Scale::from_env();
    print_metric_grid("Figure 12: average bounded slowdown", &scale, |s| fixed(s.avg_slowdown, 2));
}
