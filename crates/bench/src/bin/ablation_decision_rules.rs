//! Ablation (beyond the paper): how much does the §3.2.4 decision rule's
//! trade-off factor matter, and does the adaptive variant (the paper's
//! §3.2.4 future-work sketch, implemented in
//! `bbsched_policies::AdaptiveBbschedPolicy`) help?
//!
//! Compares BBSched with factors {0 (always max-BB jump), 1, 2 (paper),
//! 4, 1000 (never trade)} and the scarcity-adaptive rule on Theta-S4.
//!
//! Run: `cargo run --release -p bbsched-bench --bin ablation_decision_rules`

use bbsched_bench::experiments::{workload_trace, Machine, Scale};
use bbsched_bench::report::{fixed, pct, Table};
use bbsched_metrics::{MeasurementWindow, MethodSummary};
use bbsched_policies::{AdaptiveBbschedPolicy, BbschedPolicy, SelectionPolicy};
use bbsched_sim::{SimConfig, Simulator};
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    let machine = Machine::Theta;
    let trace = workload_trace(machine, Workload::S4, &scale);
    let profile = machine.profile(scale.system_factor);
    let ga = scale.ga();

    println!(
        "Decision-rule ablation on Theta-S4 (window {}, G={})\n",
        scale.window, scale.generations
    );
    let mut table = Table::new(vec!["Rule", "Node", "BB", "Avg wait (h)", "Slowdown"]);

    let mut run = |label: &str, policy: Box<dyn SelectionPolicy>| {
        let mut cfg = SimConfig { base: machine.base(), ..SimConfig::default() };
        cfg.window.size = scale.window;
        let result = Simulator::new(&profile.system, &trace, cfg).expect("setup").run(policy);
        let m = MethodSummary::from_result(&result, MeasurementWindow::default());
        table.row(vec![
            label.to_string(),
            pct(m.node_usage()),
            pct(m.bb_usage()),
            fixed(m.avg_wait / 3600.0, 2),
            fixed(m.avg_slowdown, 2),
        ]);
    };

    for factor in [0.0, 1.0, 2.0, 4.0, 1_000.0] {
        let label = if factor == 2.0 {
            "factor 2 (paper)".to_string()
        } else if factor >= 1_000.0 {
            "factor inf (never trade)".to_string()
        } else {
            format!("factor {factor}")
        };
        run(&label, Box::new(BbschedPolicy::new(ga).with_tradeoff_factor(factor)));
    }
    run("adaptive (scarcity EWMA)", Box::new(AdaptiveBbschedPolicy::new(ga)));

    table.print();
    println!(
        "\nReading: factor 0 behaves like Constrained_BB (max-BB corner), 'never trade' like\n\
         Constrained_CPU; the paper's 2x sits between, and the adaptive rule should match or\n\
         beat the best static factor by tracking which resource is scarce."
    );
}
