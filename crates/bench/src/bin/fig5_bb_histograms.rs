//! Figure 5: histograms of burst-buffer request distributions for all ten
//! workloads (two systems × {Original, S1–S4}).
//!
//! The paper uses 10 TB bins at full machine scale; bins scale with the
//! configured system factor so the histogram shape is comparable. Each
//! workload's caption carries the aggregated requested volume, as in the
//! paper.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig5_bb_histograms`

use bbsched_bench::experiments::{base_trace, Machine, Scale};
use bbsched_workloads::{Workload, GB_PER_TB};

fn main() {
    let scale = Scale::from_env();
    let bin_gb = 10.0 * GB_PER_TB * scale.system_factor;
    println!(
        "Figure 5: burst-buffer request histograms (bin = {:.1} TB at scale {})\n",
        bin_gb / GB_PER_TB,
        scale.system_factor
    );

    for machine in Machine::both() {
        let base = base_trace(machine, &scale);
        for workload in Workload::main_grid() {
            let trace = workload.apply_scaled(&base, scale.seed ^ 0x5eed, scale.system_factor);
            let stats = trace.stats();
            println!(
                "--- {}-{} (aggregate {:.1} TB requested, {} of {} jobs) ---",
                machine.name(),
                workload.name(),
                stats.total_bb_gb / GB_PER_TB,
                stats.jobs_with_bb,
                stats.n_jobs,
            );
            let hist = trace.bb_histogram(bin_gb);
            let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(1);
            for (lo, count) in &hist {
                let bar_len = (count * 48).div_ceil(max);
                println!("  [{:>7.1} TB) {:>6}  {}", lo / GB_PER_TB, count, "#".repeat(bar_len));
            }
            println!();
        }
    }
    println!(
        "Expected shape: S3/S4 shift mass to larger requests than S1/S2; S2/S4 have more\n\
         requesting jobs than S1/S3; Original has very few requesters (especially Cori)."
    );
}
