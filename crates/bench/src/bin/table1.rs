//! Table 1: the illustrative example of §1.
//!
//! A 100-node system with 100 TB of burst buffer and five queued jobs;
//! each scheduling method makes its decision and we report the resulting
//! node/burst-buffer utilization, alongside the true Pareto set.
//!
//! Run: `cargo run --release -p bbsched-bench --bin table1`

use bbsched_bench::report::{pct, Table};
use bbsched_core::pools::PoolState;
use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
use bbsched_core::resource::ResourceModel;
use bbsched_core::{exhaustive, MooProblem};
use bbsched_policies::{GaParams, PolicyKind};

fn main() {
    let window = vec![
        JobDemand::cpu_bb(80, 20_000.0),
        JobDemand::cpu_bb(10, 85_000.0),
        JobDemand::cpu_bb(40, 5_000.0),
        JobDemand::cpu_bb(10, 0.0),
        JobDemand::cpu_bb(20, 0.0),
    ];
    let nodes = 100u32;
    let bb = 100_000.0f64;

    println!("Table 1(a): job waiting queue (100 nodes, 100 TB burst buffer)\n");
    let mut jobs_table = Table::new(vec!["Job", "Nodes", "Burst Buffer (TB)"]);
    for (i, d) in window.iter().enumerate() {
        jobs_table.row(vec![
            format!("J{}", i + 1),
            d.nodes.to_string(),
            format!("{:.0}", d.bb_gb / 1000.0),
        ]);
    }
    jobs_table.print();

    println!("\nTable 1(b): scheduling decisions\n");
    let avail = PoolState::cpu_bb(nodes, bb);
    let ga = GaParams { generations: 500, base_seed: 4, ..GaParams::default() };
    let mut decisions = Table::new(vec!["Method", "Selected Jobs", "Node Util", "BB Util"]);
    for kind in [
        PolicyKind::Baseline,
        PolicyKind::ConstrainedCpu,
        PolicyKind::WeightedCpu,
        PolicyKind::BinPacking,
        PolicyKind::BbSched,
    ] {
        let mut policy = kind.build(ga);
        let sel = policy.select(&window, &avail, 0);
        let names: Vec<String> = sel.iter().map(|&i| format!("J{}", i + 1)).collect();
        let n: u32 = sel.iter().map(|&i| window[i].nodes).sum();
        let b: f64 = sel.iter().map(|&i| window[i].bb_gb).sum();
        decisions.row(vec![
            kind.name().to_string(),
            names.join(", "),
            pct(f64::from(n) / f64::from(nodes)),
            pct(b / bb),
        ]);
    }
    decisions.print();

    println!("\nTrue Pareto set (exhaustive enumeration):\n");
    let problem = KnapsackMooProblem::new(window.clone(), ResourceModel::cpu_bb(nodes, bb));
    let mut front = exhaustive::solve(&problem).expect("window fits the exhaustive cap");
    front.sort_by_first_objective();
    let mut pareto = Table::new(vec!["Solution", "Selected Jobs", "Node Util", "BB Util"]);
    for (i, s) in front.solutions().iter().enumerate() {
        if s.chromosome.count_ones() == 0 {
            continue;
        }
        let names: Vec<String> = s.chromosome.selected().map(|j| format!("J{}", j + 1)).collect();
        pareto.row(vec![
            (i + 1).to_string(),
            names.join(", "),
            pct(s.objectives[0] / problem.normalizers()[0]),
            pct(s.objectives[1] / problem.normalizers()[1]),
        ]);
    }
    pareto.print();
    println!(
        "\nPaper reference: naive -> J1+J4 (90%/20%); constrained/weighted/bin-packing -> \
         J1+J5 (100%/20%); Pareto set = {{J1+J5, J2..J5}}; BBSched's 2x rule picks J2..J5."
    );
}
