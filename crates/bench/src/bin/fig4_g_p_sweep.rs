//! Figure 4: impact of the number of generations `G` and population size
//! `P` on generational distance (GD) and time-to-solution.
//!
//! "As G increases, GD decreases and time-to-solution increases. For GD,
//! the most significant improvement is between 0 and 500 generations ...
//! setting G=500 and P=20 offers the best tradeoff."
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig4_g_p_sweep`

use bbsched_bench::experiments::{base_trace, Machine, Scale};
use bbsched_bench::report::Table;
use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
use bbsched_core::quality::generational_distance_scaled;
use bbsched_core::resource::ResourceModel;
use bbsched_core::{exhaustive, GaConfig, MooGa};
use std::time::Instant;

const WINDOW: usize = 20;
const CHECKPOINTS: [usize; 7] = [0, 100, 250, 500, 1000, 1500, 2000];

fn main() {
    let scale = Scale::from_env();
    let trace = base_trace(Machine::Theta, &scale);
    let head = trace.head(1_000);
    let jobs = head.jobs();
    let system = Machine::Theta.profile(scale.system_factor).system;
    let avail_nodes = (f64::from(system.nodes) * 0.4) as u32;
    let avail_bb = system.bb_usable_gb() * 0.4;

    // A handful of representative 20-job windows.
    let n_windows = 6usize;
    let problems: Vec<KnapsackMooProblem> = (0..n_windows)
        .map(|k| {
            let from = k * WINDOW;
            let window: Vec<JobDemand> = jobs[from..from + WINDOW]
                .iter()
                .map(|j| JobDemand::cpu_bb(j.nodes, j.bb_gb))
                .collect();
            KnapsackMooProblem::new(window, ResourceModel::cpu_bb(avail_nodes, avail_bb))
        })
        .collect();
    let truths: Vec<_> =
        problems.iter().map(|p| exhaustive::solve(p).expect("w=20 within cap")).collect();
    // GD scale: normalize nodes and GB so both axes contribute equally.
    let gd_scale = [f64::from(avail_nodes).max(1.0), avail_bb.max(1.0)];

    println!(
        "Figure 4: GD and time-to-solution vs G and P (w = {WINDOW}, {n_windows} Theta windows)\n"
    );
    let mut table = Table::new(vec!["P", "G", "GD (normalized)", "Time (ms)"]);
    for population in [10usize, 20, 50] {
        for (ci, &g) in CHECKPOINTS.iter().enumerate() {
            if g == 0 && ci > 0 {
                continue;
            }
            let mut gd_total = 0.0;
            let mut time_total = 0.0;
            for (problem, truth) in problems.iter().zip(&truths) {
                let cfg = GaConfig {
                    population,
                    generations: g,
                    seed: 0xf14 + population as u64,
                    ..GaConfig::default()
                };
                let t = Instant::now();
                let front = MooGa::new(cfg).solve(problem);
                time_total += t.elapsed().as_secs_f64() * 1_000.0;
                gd_total += generational_distance_scaled(&front, truth, &gd_scale);
            }
            table.row(vec![
                population.to_string(),
                g.to_string(),
                format!("{:.4}", gd_total / problems.len() as f64),
                format!("{:.2}", time_total / problems.len() as f64),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: GD falls steeply up to G=500 then flattens; larger P lowers GD\n\
         and raises time. G=500, P=20 is the paper's chosen trade-off (<0.2 s)."
    );
}
