//! Figure 7: burst-buffer usage of all eight methods across all ten
//! workloads.
//!
//! Paper shape: every method except Constrained_CPU improves burst-buffer
//! usage over the baseline; BBSched is best on all workloads (up to
//! +15.46% over baseline in the paper).
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig7_bb_usage`

use bbsched_bench::experiments::Scale;
use bbsched_bench::figures::print_metric_grid;
use bbsched_bench::report::pct;

fn main() {
    let scale = Scale::from_env();
    print_metric_grid("Figure 7: burst buffer usage", &scale, |s| pct(s.bb_usage()));
}
