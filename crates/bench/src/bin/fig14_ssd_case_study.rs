//! Figure 14 / §5: the local-SSD case study.
//!
//! Systems get the §5 hardware split (50% of nodes with 128 GB SSDs, 50%
//! with 256 GB); workloads S5–S7 add per-node SSD requests on top of S2;
//! seven methods compete; the Kiviat gains two extra axes (SSD
//! utilization, 1/wasted-SSD).
//!
//! Paper shape: BBSched has the best overall area; Constrained_CPU and
//! Constrained_SSD do well on node+SSD utilization (they're correlated)
//! but waste SSD; Constrained_BB collapses node/SSD axes; Weighted is
//! balanced but below BBSched.
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig14_ssd_case_study`

use bbsched_bench::experiments::{cell_summary, Machine, Scale};
use bbsched_bench::report::{fixed, pct, Table};
use bbsched_metrics::{kiviat_area, normalize_axes, safe_reciprocal};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Figure 14: SSD case study — six-axis Kiviat areas\n\
         (node, BB, SSD util, 1/SSD-waste, 1/wait, 1/slowdown; larger = better)\n"
    );

    for machine in Machine::both() {
        let roster = PolicyKind::ssd_roster();
        let mut header = vec!["Method".to_string()];
        header.extend(
            Workload::ssd_grid().iter().map(|w| format!("{}-{}", machine.name(), w.name())),
        );
        let mut area_table = Table::new(header);
        let mut detail =
            Table::new(vec!["Method (S6)", "Node", "BB", "SSD util", "SSD wasted", "Wait (h)"]);

        let mut areas = vec![vec![0.0f64; roster.len()]; Workload::ssd_grid().len()];
        for (wi, workload) in Workload::ssd_grid().into_iter().enumerate() {
            let summaries: Vec<_> =
                roster.iter().map(|&k| cell_summary(machine, workload, k, &scale)).collect();
            let node =
                normalize_axes(&summaries.iter().map(|s| s.node_usage()).collect::<Vec<_>>());
            let bb = normalize_axes(&summaries.iter().map(|s| s.bb_usage()).collect::<Vec<_>>());
            let ssd = normalize_axes(&summaries.iter().map(|s| s.ssd_usage()).collect::<Vec<_>>());
            let waste = normalize_axes(
                &summaries.iter().map(|s| safe_reciprocal(s.ssd_wasted())).collect::<Vec<_>>(),
            );
            let wait = normalize_axes(
                &summaries.iter().map(|s| safe_reciprocal(s.avg_wait)).collect::<Vec<_>>(),
            );
            let slow = normalize_axes(
                &summaries.iter().map(|s| safe_reciprocal(s.avg_slowdown)).collect::<Vec<_>>(),
            );
            for pi in 0..roster.len() {
                areas[wi][pi] =
                    kiviat_area(&[node[pi], bb[pi], ssd[pi], waste[pi], wait[pi], slow[pi]]);
            }
            if workload == Workload::S6 {
                for (pi, kind) in roster.iter().enumerate() {
                    detail.row(vec![
                        kind.name().to_string(),
                        pct(summaries[pi].node_usage()),
                        pct(summaries[pi].bb_usage()),
                        pct(summaries[pi].ssd_usage()),
                        pct(summaries[pi].ssd_wasted()),
                        fixed(summaries[pi].avg_wait / 3600.0, 2),
                    ]);
                }
            }
        }
        for (pi, kind) in roster.iter().enumerate() {
            let mut row = vec![kind.name().to_string()];
            for area_row in areas.iter().take(Workload::ssd_grid().len()) {
                row.push(fixed(area_row[pi], 3));
            }
            area_table.row(row);
        }
        println!("--- {} Kiviat areas ---", machine.name());
        area_table.print();
        println!("\n--- {} raw metrics on S6 ---", machine.name());
        detail.print();
        println!();
    }
}
