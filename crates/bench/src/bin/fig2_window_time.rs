//! Figure 2: impact of window size on average solution time.
//!
//! "Figure 2 ... conducted with first 1000 jobs from a Theta workload.
//! Solutions above the red dash line do not meet the time requirement of
//! HPC scheduling." The exhaustive solver's time grows as `2^w`; the GA's
//! stays flat in `w` (it is `O(G × P)`).
//!
//! Run: `cargo run --release -p bbsched-bench --bin fig2_window_time`

use bbsched_bench::experiments::{base_trace, Machine, Scale};
use bbsched_bench::report::Table;
use bbsched_core::problem::{JobDemand, KnapsackMooProblem};
use bbsched_core::resource::ResourceModel;
use bbsched_core::{exhaustive, GaConfig, MooGa};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let trace = base_trace(Machine::Theta, &scale);
    let head = trace.head(1_000);
    let jobs = head.jobs();
    let system = Machine::Theta.profile(scale.system_factor).system;
    // Mid-operation availability: 40% of nodes and burst buffer free.
    let avail_nodes = (f64::from(system.nodes) * 0.4) as u32;
    let avail_bb = system.bb_usable_gb() * 0.4;

    println!("Figure 2: window size vs average solution time (first 1000 Theta jobs)\n");
    let mut table =
        Table::new(vec!["Window", "Exhaustive avg (ms)", "GA avg (ms)", "Search space"]);

    let ga = MooGa::new(GaConfig { generations: 500, population: 20, ..GaConfig::default() });
    for w in [5usize, 10, 14, 18, 20, 22, 24] {
        // Sample disjoint windows of w consecutive jobs.
        let n_windows = if w <= 20 { 10 } else { 4 };
        let mut exhaustive_total = 0.0f64;
        let mut ga_total = 0.0f64;
        let mut sampled = 0usize;
        for k in 0..n_windows {
            let from = k * w;
            if from + w > jobs.len() {
                break;
            }
            let window: Vec<JobDemand> =
                jobs[from..from + w].iter().map(|j| JobDemand::cpu_bb(j.nodes, j.bb_gb)).collect();
            let problem =
                KnapsackMooProblem::new(window, ResourceModel::cpu_bb(avail_nodes, avail_bb));

            let t = Instant::now();
            let front = exhaustive::solve(&problem).expect("w within cap");
            exhaustive_total += t.elapsed().as_secs_f64() * 1_000.0;
            std::hint::black_box(front.len());

            let t = Instant::now();
            let front = ga.solve(&problem);
            ga_total += t.elapsed().as_secs_f64() * 1_000.0;
            std::hint::black_box(front.len());
            sampled += 1;
        }
        table.row(vec![
            w.to_string(),
            format!("{:.2}", exhaustive_total / sampled as f64),
            format!("{:.2}", ga_total / sampled as f64),
            format!("2^{w}"),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: exhaustive time doubles per extra window slot and blows past the\n\
         15-30 s scheduler deadline; the GA (G=500, P=20) stays near-constant milliseconds."
    );
}
