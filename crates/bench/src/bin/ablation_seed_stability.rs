//! Robustness check (beyond the paper): is "BBSched beats the baseline"
//! stable across trace seeds, or a one-seed artifact?
//!
//! Runs Baseline and BBSched on Theta-S4 for several generator seeds and
//! reports the per-seed wait-time reduction plus its mean and spread. A
//! reproduction that only ever ran one seed proves nothing; this is the
//! cheap insurance.
//!
//! Run: `cargo run --release -p bbsched-bench --bin ablation_seed_stability`

use bbsched_bench::experiments::{cell_result, Machine, Scale};
use bbsched_bench::figures::reduction_pct;
use bbsched_bench::report::{fixed, Table};
use bbsched_metrics::{MeasurementWindow, MethodSummary};
use bbsched_policies::PolicyKind;
use bbsched_workloads::Workload;

const SEEDS: [u64; 5] = [7, 11, 23, 42, 1337];

fn main() {
    let base_scale = Scale::from_env();
    println!(
        "Seed stability of the headline result (Theta-S4, {} jobs, G={})\n",
        base_scale.n_jobs, base_scale.generations
    );
    let mut table = Table::new(vec![
        "Seed",
        "Baseline wait (h)",
        "BBSched wait (h)",
        "Reduction",
        "Node delta",
    ]);
    let mut reductions = Vec::new();
    for seed in SEEDS {
        let scale = Scale { seed, ..base_scale };
        let summarize = |kind| {
            MethodSummary::from_result(
                &cell_result(Machine::Theta, Workload::S4, kind, &scale),
                MeasurementWindow::default(),
            )
        };
        let base = summarize(PolicyKind::Baseline);
        let bb = summarize(PolicyKind::BbSched);
        let red = reduction_pct(base.avg_wait, bb.avg_wait);
        reductions.push(red);
        table.row(vec![
            seed.to_string(),
            fixed(base.avg_wait / 3600.0, 2),
            fixed(bb.avg_wait / 3600.0, 2),
            format!("{red:+.2}%"),
            format!("{:+.2}pp", (bb.node_usage() - base.node_usage()) * 100.0),
        ]);
    }
    table.print();

    let n = reductions.len() as f64;
    let mean = reductions.iter().sum::<f64>() / n;
    let var = reductions.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    println!(
        "\nwait-time reduction: mean {mean:+.2}%, std {:.2}pp over {} seeds",
        var.sqrt(),
        SEEDS.len()
    );
    println!(
        "Expected: positive reduction on every (or nearly every) seed; the paper's single\n\
         trace reports up to 41% on Theta."
    );
}
